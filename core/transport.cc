#include "core/transport.h"

namespace tb::core {

Transport::~Transport() = default;
ServerPort::~ServerPort() = default;

size_t
ServerPort::recvReqBatch(std::vector<Request>& out, size_t max)
{
    out.clear();
    if (max == 0)
        return 0;
    Request req;
    if (!recvReq(req))
        return 0;
    out.push_back(std::move(req));
    return 1;
}

void
ServerPort::bindWorker(unsigned)
{
}

void
ServerPort::sendRespBatch(std::vector<Response>& resps)
{
    for (Response& resp : resps)
        sendResp(std::move(resp));
    resps.clear();
}

InProcessTransport::InProcessTransport(const PortOptions& opts)
    : requests_(opts), port_(*this)
{
}

void
InProcessTransport::sendRequest(Request&& req)
{
    requests_.push(std::move(req));
}

bool
InProcessTransport::recvResponse(Response& out)
{
    if (rx_head_ >= rx_.size()) {
        rx_head_ = 0;
        if (responses_.popAll(rx_) == 0)
            return false;
    }
    out = std::move(rx_[rx_head_]);
    rx_head_++;
    return true;
}

void
InProcessTransport::finishSend()
{
    requests_.close();
}

bool
InProcessTransport::Port::recvReq(Request& out)
{
    return owner_.requests_.pop(out);
}

size_t
InProcessTransport::Port::recvReqBatch(std::vector<Request>& out,
                                       size_t max)
{
    return owner_.requests_.popBatch(out, max);
}

void
InProcessTransport::Port::bindWorker(unsigned worker)
{
    owner_.requests_.bind(worker);
}

void
InProcessTransport::Port::sendResp(Response&& resp)
{
    owner_.responses_.push(std::move(resp));
}

void
InProcessTransport::Port::sendRespBatch(std::vector<Response>& resps)
{
    owner_.responses_.pushBatch(resps);
}

void
InProcessTransport::Port::closeResponses()
{
    owner_.responses_.close();
}

}  // namespace tb::core
