#!/usr/bin/env bash
# Lint runner behind `cmake --build build --target lint` (and the CI
# lint job): tier 2 (clang-tidy over compile_commands.json) + tier 3
# (scripts/tb_lint.py). Tier 1, the -Wthread-safety build, is a
# compiler flag, not a lint pass — see TAILBENCH_THREAD_SAFETY.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
#
# clang-tidy is skipped with a notice when not installed, so the
# target stays runnable in minimal containers; tb_lint.py needs only
# python3 and always runs.
set -u

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO/build}"
status=0

if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "lint: $BUILD_DIR/compile_commands.json missing —" \
             "configure first (CMAKE_EXPORT_COMPILE_COMMANDS is on" \
             "by default)" >&2
        exit 2
    fi
    # First-party translation units only; third-party code (none
    # today) and generated files are not ours to fix.
    files=$(cd "$REPO" &&
            ls apps/common/*.cc bench/*.cc core/*.cc net/*.cc \
               queueing/*.cc sim/*.cc util/*.cc tests/*.cc \
               2>/dev/null)
    echo "lint: clang-tidy ($(echo "$files" | wc -w) files)"
    # shellcheck disable=SC2086
    (cd "$REPO" && clang-tidy -p "$BUILD_DIR" --quiet $files) \
        || status=1
else
    echo "lint: clang-tidy not found; skipping tier 2" \
         "(tb_lint still runs)"
fi

echo "lint: tb_lint.py"
python3 "$REPO/scripts/tb_lint.py" || status=1

exit $status
