#ifndef TAILBENCH_CORE_SHARDED_PORT_H_
#define TAILBENCH_CORE_SHARDED_PORT_H_

/**
 * @file
 * The sharded server side of the transport seam: per-worker request
 * shards instead of one shared queue all workers contend on.
 *
 * The single shared BlockingQueue is two scalability artifacts at
 * once: every worker wake fights the same mutex, and every pop pays a
 * wake/lock round-trip for one request. The RequestPool here keeps
 * the push/pop contract but shards it per worker:
 *
 *   placement   ctx == 0  -> round-robin across shards (in-process
 *                            client; no routing identity to honor)
 *               ctx != 0  -> ctx % shards (a TCP connection's serial,
 *                            so one connection's requests stay on one
 *                            worker — cache affinity, per-connection
 *                            FIFO preserved)
 *   pop         each worker owns one shard (SPSC-ish: one consumer,
 *               any producer); kShardedSteal lets a dry worker take
 *               from a sibling's shard instead of idling
 *   batching    popBatch moves up to batchMax requests under one lock
 *               acquisition, amortizing the wake cost at load
 *
 * Policy kSingleQueue degenerates to exactly the old behavior (one
 * shard, scalar pop, every worker on it) and stays selectable as the
 * measured baseline — fig9_port_scaling sweeps the three policies
 * against each other.
 *
 * Any transport sits on this through the ServerPort interface
 * (core/transport.h): both InProcessTransport and net/ TcpServer
 * delegate their request side here, which is what makes the sharding
 * land in the integrated, loopback and networked configurations at
 * once.
 *
 * Concurrency shape (the machine-checked part lives inside
 * BlockingQueue's annotations): the pool itself holds no mutex —
 * shards_ is immutable after construction (enforced below: the
 * vector member is const), rr_ is atomic, and the per-worker binding
 * is thread-local. Every blocking/guarded access happens inside the
 * per-shard BlockingQueue, whose queue_/closed_ are TB_GUARDED_BY
 * its mutex. The steal-mode exit proof (finishedAfterClose) needs no
 * lock of its own: close() happens only after producers are done, so
 * per-shard sizes are monotonically non-increasing from then on and
 * an observed-empty sibling stays empty.
 */

#include <atomic>
#include <memory>
#include <vector>

#include "core/request_queue.h"

namespace tb::core {

enum class QueuePolicy {
    kSingleQueue,   // one shared queue, scalar pop (the baseline)
    kSharded,       // per-worker shards, batched pop
    kShardedSteal,  // kSharded + work stealing when a shard runs dry
};

/** "single", "sharded", "sharded+steal" — for driver tables/logs. */
const char* queuePolicyName(QueuePolicy policy);

struct PortOptions;

/**
 * The shards/workers invariant, applied by every RequestPool owner
 * (IntegratedHarness, TcpServer): shards == 0 resolves to one per
 * worker, and more shards than workers are clamped down — without
 * stealing, a shard no worker owns would be drained by nobody and its
 * requests silently dropped.
 */
PortOptions resolveShards(PortOptions opts, unsigned workers);

/** Server-side request-queue configuration, threaded through
 * InProcessTransport / TcpServer to the RequestPool. */
struct PortOptions {
    QueuePolicy policy = QueuePolicy::kSingleQueue;
    /** Shard count; 0 = one per service worker. The harnesses and
     * TcpServer, which know the worker count, resolve 0 and clamp
     * larger values down to it: without stealing, a shard no worker
     * owns would be drained by nobody and its requests silently
     * dropped. Ignored (forced to 1) under kSingleQueue. */
    unsigned shards = 0;
    /** Max requests one recvReqBatch may return — the one batch-size
     * knob (the ServiceLoop passes only a sanity bound). Forced to 1
     * under kSingleQueue — the baseline keeps its scalar pop. */
    size_t batchMax = 16;
};

/**
 * The sharded (or single, per policy) request dispatch structure.
 * push may be called from any producer thread; pop/popBatch from the
 * service workers, each of which must bind() its worker index first
 * (unbound threads use shard 0). close() ends the stream: pops drain
 * the backlog, then return false/0.
 */
class RequestPool {
  public:
    explicit RequestPool(const PortOptions& opts);

    RequestPool(const RequestPool&) = delete;
    RequestPool& operator=(const RequestPool&) = delete;

    /** Binds the calling thread to @p worker's shard (thread-local;
     * cheap, idempotent). */
    void bind(unsigned worker);

    /** Places one request: ctx % shards when ctx != 0, round-robin
     * otherwise. Never blocks (shards are unbounded). */
    void push(Request&& req);

    /**
     * Places a batch, grouping contiguous same-shard runs so each run
     * costs one lock acquisition and at most one notify. The payoff
     * case is the reactor read path: every frame of one read event
     * comes from one connection, whose ctx-affine placement makes the
     * whole batch a single run. @p reqs is emptied (capacity kept).
     */
    void pushBatch(std::vector<Request>& reqs);

    /** Blocking scalar pop from the bound shard (stealing from
     * siblings under kShardedSteal). False when closed and — for the
     * bound shard, plus all shards under steal — drained. */
    bool pop(Request& out);

    /**
     * Blocking batched pop: up to min(max, batchMax) requests in one
     * lock acquisition, preferring the bound shard. Returns the count;
     * 0 only when the stream is finished (same condition as pop).
     */
    size_t popBatch(std::vector<Request>& out, size_t max);

    /** After close(), pops drain then report end of stream. Must not
     * race push: producers are done before anyone closes. */
    void close();

    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    QueuePolicy policy() const { return policy_; }
    size_t batchMax() const { return batch_max_; }

    /** Total backlog across shards (approximate under concurrency). */
    size_t size() const;

  private:
    unsigned boundShard() const;
    unsigned placeShard(const Request& req, unsigned shards);
    bool stealFrom(unsigned thief, Request& out);
    size_t stealBatchFrom(unsigned thief, std::vector<Request>& out,
                          size_t max);
    bool finishedAfterClose(unsigned shard) const;

    /** Builds the shard set once; assigning it to a const member
     * makes "no shard is ever added, dropped or reseated after
     * construction" — the premise of the lock-free pop/steal paths —
     * a compiler-checked fact. */
    static std::vector<std::unique_ptr<BlockingQueue<Request>>>
    makeShards(QueuePolicy policy, unsigned shards);

    const QueuePolicy policy_;
    const bool steal_;
    const size_t batch_max_;
    const std::vector<std::unique_ptr<BlockingQueue<Request>>> shards_;
    std::atomic<uint64_t> rr_{0};
};

}  // namespace tb::core

#endif  // TAILBENCH_CORE_SHARDED_PORT_H_
