#include "sim/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace tb::sim {

namespace {

/** 4-byte instructions: 16 per line, so the hot loop re-fetches each
 * code line 16 times before moving on. */
constexpr uint64_t kInstrPerLine = 16;

/** Disjoint virtual address regions (nothing aliases across them:
 * bases are far apart and extents are tiny by comparison). */
constexpr uint64_t kHotCodeBase = 0x1ull << 33;
constexpr uint64_t kColdCodeBase = 0x2ull << 33;
constexpr uint64_t kHotDataBase = 0x3ull << 33;
constexpr uint64_t kL2DataBase = 0x4ull << 33;
constexpr uint64_t kL3DataBase = 0x8ull << 33;
constexpr uint64_t kMemDataBase = 0x10ull << 33;

/** Calibration loop bounds. */
constexpr int kMaxIters = 10;
constexpr uint64_t kCalWarmKiCap = 500;
constexpr uint64_t kCalMeasKiCap = 1500;

/** Tolerance: a level is converged when measured MPKI is within 10%
 * of target, or within 0.1 MPKI absolute (sub-0.1 targets are noise
 * at any realistic trace length). */
constexpr double kRelTol = 0.10;
constexpr double kAbsTol = 0.1;

/** Rates live in accesses per kilo-instruction. */
constexpr double kMaxRatePerKi = 2000.0;
constexpr double kEps = 1e-9;

bool
withinTol(double target, double measured)
{
    const double err = std::fabs(measured - target);
    return err <= kAbsTol || err <= kRelTol * std::fabs(target);
}

/** One fixed-point step: rescale @p rate by target/measured, clamped
 * to [1/4, 4] per iteration so one noisy window cannot explode the
 * trajectory; grow geometrically when the knob produced nothing. */
double
rescale(double rate, double target, double measured)
{
    if (target < kEps)
        return 0.0;
    if (measured < kEps)
        return std::min(std::max(rate * 2.0, 0.5), kMaxRatePerKi);
    const double f =
        std::min(4.0, std::max(0.25, target / measured));
    return std::min(rate * f, kMaxRatePerKi);
}

/** Largest step below the golden fraction of @p lines that is
 * coprime with it — a full-period low-discrepancy walk. */
uint64_t
goldenStride(uint64_t lines)
{
    if (lines <= 1)
        return 1;
    uint64_t stride = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(lines) * 0.618));
    while (std::gcd(stride, lines) != 1)
        stride--;
    return stride;
}

}  // namespace

TraceParams
TraceParams::fromProfile(const apps::AppProfile& p)
{
    // Nominal per-region miss probabilities: the chase regions miss
    // their target level ~always (reuse distance = whole region);
    // the uniform l2 region misses L1D about half the time.
    const double d1 = std::max(0.0, p.l1dMpki - p.l2Mpki);
    const double d2 = std::max(0.0, p.l2Mpki - p.l3MpkiFull);
    const double d3 =
        std::max(0.0, std::min(p.l3MpkiFull, p.l2Mpki));
    TraceParams t;
    t.ifetchColdPerKi = std::min(p.l1iMpki, kMaxRatePerKi);
    t.l2RegionPerKi = std::min(2.0 * d1, kMaxRatePerKi);
    t.l3RegionPerKi = std::min(d2, kMaxRatePerKi);
    t.memRegionPerKi = std::min(d3, kMaxRatePerKi);
    return t;
}

TraceGenerator::TraceGenerator(const TraceParams& params, uint64_t seed,
                               const HierarchyConfig& geo,
                               unsigned stream)
    : params_(params), stream_(stream),
      ifetch_rng_(util::mix64(seed, 0xf17c4 + stream)),
      data_rng_(util::mix64(seed, 0xda7a0 + stream)),
      pos_rng_(util::mix64(seed, 0x90500 + stream))
{
    hot_code_lines_ = std::max<uint64_t>(1, geo.l1i.lines() / 4);
    hot_data_lines_ = std::max<uint64_t>(1, geo.l1d.lines() / 4);
    l2_lines_ = std::max<uint64_t>(2, geo.l2.lines() / 4);
    // Cold code: 16 L1I sets, twice the ways per set — every touch
    // misses L1I (per-set reuse distance 2*ways > ways) while the
    // whole region (16 * 2 * ways lines) trivially fits in L2.
    cold_cols_ = std::min<uint64_t>(16, geo.l1i.sets);
    cold_rows_ = 2 * geo.l1i.ways;
    cold_row_stride_ = geo.l1i.sets;
    // L3 region: 16 L2 sets, four times the ways — misses L1D and L2
    // on every touch; its lines spread over distinct L3 sets (row
    // stride = L2 set count << L3 set count) and stay resident there.
    l3_cols_ = std::min<uint64_t>(16, geo.l2.sets);
    l3_rows_ = 4 * geo.l2.ways;
    l3_row_stride_ = geo.l2.sets;
    mem_lines_ = std::max<uint64_t>(2, uint64_t{16} * geo.l3.lines());
    mem_stride_ = goldenStride(mem_lines_);
}

TraceStats
TraceGenerator::run(CacheHierarchy& h, uint64_t kiloInstr)
{
    TraceStats st;
    const uint64_t n = kiloInstr * 1000;
    st.instructions = n;

    const double r_hot = params_.hotDataPerKi;
    const double r_l2 = params_.l2RegionPerKi;
    const double r_l3 = params_.l3RegionPerKi;
    const double r_mem = params_.memRegionPerKi;
    const double data_per_instr =
        (r_hot + r_l2 + r_l3 + r_mem) / 1000.0;
    const double total = r_hot + r_l2 + r_l3 + r_mem;

    for (uint64_t i = 0; i < n; i++) {
        // Instruction fetch: hot loop, or a cold conflict-region
        // step (column-major per row so consecutive steps hit
        // different sets, revisiting each set only after all its
        // rows).
        uint64_t addr;
        if (ifetch_rng_.nextDouble() * 1000.0 <
            params_.ifetchColdPerKi) {
            cold_idx_++;
            if (cold_idx_ >= cold_cols_ * cold_rows_)
                cold_idx_ = 0;
            const uint64_t col = cold_idx_ % cold_cols_;
            const uint64_t row = cold_idx_ / cold_cols_;
            addr = kColdCodeBase +
                (col + row * cold_row_stride_) * kCacheLineBytes;
        } else {
            hot_pc_++;
            if (hot_pc_ >= hot_code_lines_ * kInstrPerLine)
                hot_pc_ = 0;
            addr = kHotCodeBase +
                (hot_pc_ / kInstrPerLine) * kCacheLineBytes;
        }
        st.ifetchAtLevel[h.access(addr, AccessKind::kIfetch,
                                  stream_)]++;

        // Data accesses at the summed rate; region picked by weight.
        data_carry_ += data_per_instr;
        while (data_carry_ >= 1.0) {
            data_carry_ -= 1.0;
            if (total < kEps)
                continue;
            const double pick = data_rng_.nextDouble() * total;
            uint64_t daddr;
            if (pick < r_hot) {
                daddr = kHotDataBase +
                    pos_rng_.nextInt(hot_data_lines_) *
                        kCacheLineBytes;
            } else if (pick < r_hot + r_l2) {
                daddr = kL2DataBase +
                    pos_rng_.nextInt(l2_lines_) * kCacheLineBytes;
            } else if (pick < r_hot + r_l2 + r_l3) {
                l3_idx_++;
                if (l3_idx_ >= l3_cols_ * l3_rows_)
                    l3_idx_ = 0;
                const uint64_t col = l3_idx_ % l3_cols_;
                const uint64_t row = l3_idx_ / l3_cols_;
                daddr = kL3DataBase +
                    (col + row * l3_row_stride_) * kCacheLineBytes;
            } else {
                mem_pos_ = (mem_pos_ + mem_stride_) % mem_lines_;
                daddr = kMemDataBase + mem_pos_ * kCacheLineBytes;
            }
            st.dataAtLevel[h.access(daddr, AccessKind::kData,
                                    stream_)]++;
        }
    }
    return st;
}

MeasuredMpki
measureTraceMpki(const apps::AppProfile& profile, uint64_t seed,
                 uint64_t warmupKi, uint64_t measuredKi)
{
    const HierarchyConfig geo =
        HierarchyConfig::fromMachine(MachineConfig{});
    const double t1i = profile.l1iMpki;
    const double t1d = profile.l1dMpki;
    const double t2 = profile.l2Mpki;
    const double t3 = profile.l3MpkiFull;

    TraceParams params = TraceParams::fromProfile(profile);
    MeasuredMpki out;

    const bool all_zero = t1i + t1d + t2 + t3 < kEps;
    if (all_zero) {
        TB_LOG_WARN("trace_gen: all-zero MPKI targets; skipping "
                    "calibration (hot-only trace)");
    }
    if (t3 > t2 + kEps || t2 > t1d + t1i + kEps) {
        // An L2 miss is an L1 miss that went deeper, an L3 miss an
        // L2 miss that went deeper: a profile with L3 > L2 (or L2
        // beyond every L1 miss) is unreachable. Calibrate to the
        // feasible projection instead of chasing it forever.
        TB_LOG_WARN("trace_gen: non-monotone MPKI chain "
                    "(l1i=%.2f l1d=%.2f l2=%.2f l3=%.2f); "
                    "calibrating to the feasible projection",
                    t1i, t1d, t2, t3);
    }

    // Fixed-point calibration on short windows.
    const uint64_t cal_warm = std::min(warmupKi, kCalWarmKiCap);
    const uint64_t cal_meas = std::min(measuredKi, kCalMeasKiCap);
    int iters = 0;
    if (!all_zero && cal_meas > 0) {
        for (iters = 1; iters <= kMaxIters; iters++) {
            CacheHierarchy h(geo);
            TraceGenerator g(params, seed, geo);
            g.run(h, cal_warm);
            const TraceStats st = g.run(h, cal_meas);
            const double m1i = st.l1iMpki();
            const double m1d = st.l1dMpki();
            const double m2 = st.l2Mpki();
            const double m3 = st.l3Mpki();
            if (withinTol(t1i, m1i) && withinTol(t1d, m1d) &&
                withinTol(t2, m2) && withinTol(t3, m3))
                break;
            // Per-knob measured effect vs the increment it targets.
            const double d3 = std::max(0.0, std::min(t3, t2));
            const double d2 = std::max(0.0, t2 - t3);
            const double d1 = std::max(0.0, t1d - t2);
            const double e3 = m3;
            const double e2 = std::max(0.0, m2 - m3);
            const double e1 =
                std::max(0.0, m1d - st.l2DataMpki());
            params.memRegionPerKi =
                rescale(params.memRegionPerKi, d3, e3);
            params.l3RegionPerKi =
                rescale(params.l3RegionPerKi, d2, e2);
            params.l2RegionPerKi =
                rescale(params.l2RegionPerKi, d1, e1);
            params.ifetchColdPerKi =
                rescale(params.ifetchColdPerKi, t1i, m1i);
        }
        iters = std::min(iters, kMaxIters);
    }

    // Fresh warmup + measured run at the calibrated parameters.
    CacheHierarchy h(geo);
    TraceGenerator g(params, seed, geo);
    g.run(h, warmupKi);
    h.resetCounters();
    const TraceStats st = g.run(h, measuredKi);
    out.l1i = st.l1iMpki();
    out.l1d = st.l1dMpki();
    out.l2 = st.l2Mpki();
    out.l3 = st.l3Mpki();
    out.instructions = st.instructions;
    out.iterations = iters;
    out.converged = withinTol(t1i, out.l1i) &&
        withinTol(t1d, out.l1d) && withinTol(t2, out.l2) &&
        withinTol(t3, out.l3);
    if (!out.converged) {
        TB_LOG_WARN("trace_gen: calibration off target after %d "
                    "iteration(s): l1i %.2f/%.2f l1d %.2f/%.2f "
                    "l2 %.2f/%.2f l3 %.2f/%.2f (measured/target)",
                    iters, out.l1i, t1i, out.l1d, t1d, out.l2, t2,
                    out.l3, t3);
    }
    return out;
}

}  // namespace tb::sim
