/** Unit tests: core/integrated_harness.cc open-loop behavior and
 * core/methodology.cc saturation estimation. */

#include "core/integrated_harness.h"

#include <string>

#include "core/methodology.h"

#include "tests/test_util.h"

using tb::apps::AppConfig;
using tb::apps::makeApp;
using tb::core::HarnessConfig;
using tb::core::IntegratedHarness;
using tb::core::RequestTiming;
using tb::core::RunResult;

namespace {

std::unique_ptr<tb::apps::App>
makeTestApp(const std::string& name)
{
    auto app = makeApp(name);
    AppConfig cfg;
    cfg.seed = 42;
    cfg.sizeFactor = 0.05;  // img-dnn mean service ~25 us
    app->init(cfg);
    return app;
}

}  // namespace

int
main()
{
    auto app = makeTestApp("img-dnn");
    IntegratedHarness harness;
    CHECK(harness.configName() == std::string("integrated"));

    // Degenerate configs return an empty result instead of hanging.
    {
        HarnessConfig cfg;
        cfg.measuredRequests = 0;
        cfg.warmupRequests = 0;
        const RunResult r = harness.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(0));
        CHECK_EQ(r.achievedQps, 0.0);
    }

    // Saturation estimate: positive and within a plausible band of
    // the model's 1/E[S] (~40k qps for a 25 us mean on an idle core;
    // generous bounds absorb shared-host noise).
    const double sat = tb::core::estimateSaturationQps(
        harness, *app, 1, 42, 200);
    CHECK(sat > 1000.0);
    CHECK(sat < 1e7);

    // Low-load run: achieved QPS tracks offered QPS (the open-loop
    // generator neither throttles nor bursts), and every request
    // satisfies the timestamp invariants.
    {
        const double offered = 0.10 * sat;
        HarnessConfig cfg;
        cfg.qps = offered;
        cfg.workerThreads = 1;
        cfg.warmupRequests = 50;
        cfg.measuredRequests = 500;
        cfg.seed = 42;
        cfg.keepSamples = true;
        const RunResult r = harness.run(*app, cfg);

        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(500));
        CHECK_EQ(r.samples.size(), static_cast<size_t>(500));
        CHECK_NEAR(r.achievedQps, offered, 0.20);

        for (const RequestTiming& t : r.samples) {
            // Workers cannot start before the scheduled arrival...
            CHECK(t.startNs >= t.genNs);
            // ...so sojourn >= service and sojourn >= queueing, and
            // all components are non-negative.
            CHECK(t.serviceNs() > 0);
            CHECK(t.queueNs() >= 0);
            CHECK(t.sojournNs() >= t.serviceNs());
            CHECK(t.sojournNs() >= t.queueNs());
        }

        // Summaries are internally consistent.
        CHECK(r.latency.sojourn.p95Ns >= r.latency.sojourn.p50Ns);
        CHECK(r.latency.sojourn.p99Ns >= r.latency.sojourn.p95Ns);
        CHECK(static_cast<double>(r.latency.sojourn.p95Ns) >=
              r.latency.service.meanNs * 0.5);
        CHECK(r.latency.sojourn.meanNs >= r.latency.service.meanNs);
    }

    // Overload run: achieved QPS is capped by capacity, well below
    // the absurd offered rate, and the queue drains fully (every
    // measured request completes).
    {
        HarnessConfig cfg;
        cfg.qps = 50.0 * sat;
        cfg.workerThreads = 1;
        cfg.warmupRequests = 20;
        cfg.measuredRequests = 200;
        cfg.seed = 43;
        const RunResult r = harness.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(200));
        CHECK(r.achievedQps < 5.0 * sat);
        // At 50x saturation the generator cannot hold its own
        // schedule either; the lag tracker must report that.
        CHECK(r.maxGenLagNs > 0);
        // Under overload, sojourn is dominated by queueing.
        CHECK(r.latency.sojourn.meanNs >
              4.0 * r.latency.service.meanNs);
    }

    // Warmup separation: only measured requests are reported.
    {
        HarnessConfig cfg;
        cfg.qps = 0.2 * sat;
        cfg.warmupRequests = 100;
        cfg.measuredRequests = 150;
        cfg.seed = 44;
        cfg.keepSamples = true;
        const RunResult r = harness.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(150));
        CHECK_EQ(r.samples.size(), static_cast<size_t>(150));
    }

    // Multi-worker run completes and keeps the invariants.
    {
        HarnessConfig cfg;
        cfg.qps = 0.3 * sat;
        cfg.workerThreads = 2;
        cfg.warmupRequests = 30;
        cfg.measuredRequests = 300;
        cfg.seed = 45;
        cfg.keepSamples = true;
        const RunResult r = harness.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(300));
        for (const RequestTiming& t : r.samples)
            CHECK(t.sojournNs() >= t.serviceNs());
    }

    return TEST_MAIN_RESULT();
}
