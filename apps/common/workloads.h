#ifndef TAILBENCH_APPS_COMMON_WORKLOADS_H_
#define TAILBENCH_APPS_COMMON_WORKLOADS_H_

/**
 * @file
 * Internal factory for the in-process synthetic TailBench kernels.
 * External code goes through apps::makeApp() (app.h); this header
 * exists so the registry and the kernel implementations can live in
 * separate translation units.
 */

#include <memory>
#include <string>

#include "apps/common/app.h"

namespace tb::apps {

/** Returns nullptr for an unknown name. */
std::unique_ptr<App> makeSyntheticApp(const std::string& name);

/** Names of all synthetic workloads, Table I order. */
const std::vector<std::string>& syntheticAppNames();

}  // namespace tb::apps

#endif  // TAILBENCH_APPS_COMMON_WORKLOADS_H_
