/** Unit tests: sim/cache.{h,cc} — hand-built access sequences with
 * known LRU/SRRIP/BRRIP outcomes, counter exactness, hierarchy fill
 * paths, inclusion back-invalidation, and multi-stream L3
 * contention. */

#include "sim/cache.h"

#include "util/rng.h"

#include "tests/test_util.h"

using tb::sim::AccessKind;
using tb::sim::CacheGeometry;
using tb::sim::CacheHierarchy;
using tb::sim::HierarchyConfig;
using tb::sim::ReplPolicy;
using tb::sim::SetAssocCache;

namespace {

/** Miss-then-fill helper matching the hierarchy's demand-fill use. */
bool
touch(SetAssocCache& c, uint64_t key)
{
    if (c.lookup(key))
        return true;
    c.insert(key, nullptr);
    return false;
}

void
testLruExact()
{
    SetAssocCache c(CacheGeometry{1, 2}, ReplPolicy::kLru);
    CHECK(!touch(c, 1));  // miss, fill
    CHECK(touch(c, 1));   // hit
    CHECK(!touch(c, 2));  // miss, fill; set = {1, 2}
    CHECK(touch(c, 1));   // hit — 2 is now LRU
    uint64_t evicted = 0;
    CHECK(!c.lookup(3));
    CHECK(c.insert(3, &evicted));  // victim must be the LRU line
    CHECK_EQ(evicted, 2);
    CHECK(c.contains(1));
    CHECK(!c.contains(2));
    CHECK(c.contains(3));
    // Counter exactness: 5 lookups, 3 misses; contains() counts
    // nothing.
    CHECK_EQ(c.counters().accesses, 5u);
    CHECK_EQ(c.counters().misses, 3u);
    c.resetCounters();
    CHECK_EQ(c.counters().accesses, 0u);
}

void
testLruVictimIsOldest()
{
    // 4-way set: fill 4, re-touch in a known order, 5th insert must
    // evict the least recently used.
    SetAssocCache c(CacheGeometry{1, 4}, ReplPolicy::kLru);
    for (uint64_t k = 1; k <= 4; k++)
        touch(c, k);
    // Recency order now 1 < 2 < 3 < 4; touch 1 and 2 again.
    CHECK(touch(c, 1));
    CHECK(touch(c, 2));
    uint64_t evicted = 0;
    CHECK(!c.lookup(5));
    CHECK(c.insert(5, &evicted));
    CHECK_EQ(evicted, 3);
}

void
testSrripAgingAndScanResistance()
{
    SetAssocCache c(CacheGeometry{1, 2}, ReplPolicy::kSrrip);
    touch(c, 1);         // inserted at long RRPV (2)
    touch(c, 2);         // inserted at long RRPV (2)
    CHECK(touch(c, 1));  // hit promotes 1 to RRPV 0
    // Victim search ages both (1 -> 1, 2 -> 3) and evicts 2.
    uint64_t evicted = 0;
    CHECK(!c.lookup(3));
    CHECK(c.insert(3, &evicted));
    CHECK_EQ(evicted, 2);
    CHECK(c.contains(1));
    CHECK(c.contains(3));
}

void
testBrripThrashResistance()
{
    // BRRIP inserts at distant RRPV (except every 32nd fill), so a
    // reused line survives a long stream of one-shot fills — the
    // property that makes it win on thrash patterns.
    SetAssocCache c(CacheGeometry{1, 4}, ReplPolicy::kBrrip);
    for (uint64_t k = 1; k <= 4; k++)
        touch(c, k);
    CHECK(touch(c, 1));  // protect line 1 (RRPV 0)
    for (uint64_t k = 10; k < 30; k++)
        touch(c, k);  // 20 one-shot fills
    CHECK(c.contains(1));
    CHECK(touch(c, 1));
}

void
testDrripDeterminism()
{
    // DRRIP's dueling state (PSEL, BRRIP counter) is deterministic:
    // two caches fed the identical sequence end bit-identical.
    SetAssocCache a(CacheGeometry{128, 4}, ReplPolicy::kDrrip);
    SetAssocCache b(CacheGeometry{128, 4}, ReplPolicy::kDrrip);
    tb::util::Rng rng(7);
    for (int i = 0; i < 20000; i++) {
        const uint64_t key = rng.nextInt(2048);
        touch(a, key);
        touch(b, key);
    }
    CHECK_EQ(a.counters().accesses, b.counters().accesses);
    CHECK_EQ(a.counters().misses, b.counters().misses);
    CHECK(a.counters().misses > 0);
    CHECK(a.counters().misses < a.counters().accesses);
}

HierarchyConfig
toyConfig()
{
    HierarchyConfig cfg;
    cfg.l1i = CacheGeometry{1, 1};
    cfg.l1d = CacheGeometry{1, 1};
    cfg.l2 = CacheGeometry{1, 2};
    cfg.l3 = CacheGeometry{1, 2};
    cfg.l3Policy = ReplPolicy::kLru;
    return cfg;
}

void
testHierarchyFillPath()
{
    CacheHierarchy h(toyConfig());
    const uint64_t a = 0x1000;
    // Cold access goes to memory and fills every level.
    CHECK_EQ(h.access(a, AccessKind::kData), 4);
    CHECK_EQ(h.access(a, AccessKind::kData), 1);
    CHECK_EQ(h.l1d().accesses, 2u);
    CHECK_EQ(h.l1d().misses, 1u);
    CHECK_EQ(h.l2().accesses, 1u);
    CHECK_EQ(h.l2().misses, 1u);
    CHECK_EQ(h.l3().accesses, 1u);
    CHECK_EQ(h.l3().misses, 1u);
    // Ifetch uses the split L1I; the L1D state is untouched by it.
    const uint64_t code = 0x2000;
    CHECK_EQ(h.access(code, AccessKind::kIfetch), 4);
    CHECK_EQ(h.access(code, AccessKind::kIfetch), 1);
    CHECK_EQ(h.l1i().accesses, 2u);
    CHECK_EQ(h.l1i().misses, 1u);
    CHECK_EQ(h.l1d().accesses, 2u);
}

void
testInclusionBackInvalidation()
{
    CacheHierarchy h(toyConfig());
    const uint64_t a = 0x10000;
    const uint64_t b = 0x20000;
    const uint64_t c = 0x30000;
    CHECK_EQ(h.access(a, AccessKind::kData), 4);  // L3 = {A}
    CHECK_EQ(h.access(b, AccessKind::kData), 4);  // L3 = {A, B}
    // A fell out of the 1-line L1D but still lives in L2.
    CHECK_EQ(h.access(a, AccessKind::kData), 2);
    CHECK_EQ(h.backInvalidations(), 0u);
    // C misses everywhere; the inclusive L3 evicts its LRU line (A —
    // the L2 hit above never touched L3 recency) and must
    // back-invalidate A out of the private levels.
    CHECK_EQ(h.access(c, AccessKind::kData), 4);
    CHECK_EQ(h.backInvalidations(), 1u);
    // A is gone from the whole hierarchy, not just L3.
    CHECK_EQ(h.access(a, AccessKind::kData), 4);
}

void
testMultiStreamContention()
{
    // Two streams, shared 2-line L3: the same address from different
    // streams is two distinct lines fighting for the same set.
    HierarchyConfig cfg = toyConfig();
    CacheHierarchy h(cfg, 2);
    CHECK_EQ(h.streams(), 2u);
    const uint64_t x = 0x40000;
    CHECK_EQ(h.access(x, AccessKind::kData, 0), 4);
    CHECK_EQ(h.access(x, AccessKind::kData, 1), 4);  // no cross-hit
    // Stream 1's copy is private: hits its own L1D.
    CHECK_EQ(h.access(x, AccessKind::kData, 1), 1);
    // A new stream-0 line evicts stream 0's x (L3 LRU), which must
    // be back-invalidated from stream 0's privates only.
    CHECK_EQ(h.access(x + 0x100000, AccessKind::kData, 0), 4);
    CHECK_EQ(h.backInvalidations(), 1u);
    CHECK_EQ(h.access(x, AccessKind::kData, 0), 4);  // stream 0 lost it
    // Per-stream counters are separate.
    CHECK_EQ(h.l1d(1).accesses, 2u);
    CHECK_EQ(h.l1d(1).misses, 1u);
}

void
testGeometryFromMachine()
{
    tb::sim::MachineConfig m;  // 20 MB LLC
    const HierarchyConfig cfg = HierarchyConfig::fromMachine(m);
    CHECK_EQ(cfg.l3.ways, 16u);
    // 20 MB / 64 B / 16 ways.
    CHECK_EQ(cfg.l3.sets, 20480u);
    m.llcMb = 2.0;
    CHECK_EQ(HierarchyConfig::fromMachine(m).l3.sets, 2048u);
}

}  // namespace

int
main()
{
    testLruExact();
    testLruVictimIsOldest();
    testSrripAgingAndScanResistance();
    testBrripThrashResistance();
    testDrripDeterminism();
    testHierarchyFillPath();
    testInclusionBackInvalidation();
    testMultiStreamContention();
    testGeometryFromMachine();
    return TEST_MAIN_RESULT();
}
