#ifndef TAILBENCH_CORE_INTEGRATED_HARNESS_H_
#define TAILBENCH_CORE_INTEGRATED_HARNESS_H_

/**
 * @file
 * The integrated configuration: load generator and application in one
 * process, requests handed over through an in-memory queue. Lowest
 * overhead of the real-time configurations — the paper uses it for
 * profiling and as the reference the networked/loopback setups are
 * validated against.
 *
 * One generator thread produces the open-loop Poisson arrival
 * schedule, stamping each request with its *scheduled* arrival time
 * (coordinated-omission-free by construction: the stamp is taken
 * before the queue, and a tardy generator or a backed-up queue shows
 * up as sojourn time, never as missing load). N worker threads pop,
 * stamp service start, run App::process(), stamp completion.
 */

#include "core/harness.h"
#include "core/request_queue.h"

namespace tb::core {

class IntegratedHarness final : public Harness {
  public:
    IntegratedHarness() = default;

    RunResult run(apps::App& app, const HarnessConfig& cfg) override;

    std::string configName() const override { return "integrated"; }
};

}  // namespace tb::core

#endif  // TAILBENCH_CORE_INTEGRATED_HARNESS_H_
