#ifndef TAILBENCH_NET_WIRE_H_
#define TAILBENCH_NET_WIRE_H_

/**
 * @file
 * Length-prefixed wire format for harness requests and responses.
 *
 * Request frame (little-endian):
 *   u32 magic 'TBRQ'  | u32 payloadLen | u64 id | i64 genNs
 *   | payloadLen bytes
 * Response frame:
 *   u32 magic 'TBRP'  | u32 zero       | u64 id | u64 checksum
 *   | i64 genNs | i64 startNs | i64 endNs
 *
 * Framing is defined over an abstract ByteStream rather than a file
 * descriptor so the codec is testable against partial reads and short
 * writes without sockets (tests/test_net.cc drives it through a
 * deliberately fragmenting stream). FdStream adapts a connected
 * socket.
 *
 * Receivers reject frames with a bad magic or a payload length above
 * kMaxPayloadBytes *before* allocating, so a corrupt or hostile peer
 * cannot make the server allocate unbounded memory.
 */

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

#include "core/transport.h"

namespace tb::net {

/** Upper bound on a request payload; app request strings are tiny, so
 * anything near this is framing corruption, not load. */
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

inline constexpr uint32_t kRequestMagic = 0x51524254;   // "TBRQ" LE
inline constexpr uint32_t kResponseMagic = 0x50524254;  // "TBRP" LE

/**
 * Minimal byte-stream abstraction with read(2)/write(2) semantics:
 * readSome returns >0 bytes read, 0 on EOF, <0 on error; writeSome
 * returns >0 bytes accepted (possibly fewer than len) or <0 on error.
 */
class ByteStream {
  public:
    virtual ~ByteStream();
    virtual ssize_t readSome(void* buf, size_t len) = 0;
    virtual ssize_t writeSome(const void* buf, size_t len) = 0;
};

/** Loops over short reads; false on EOF or error. */
bool readFull(ByteStream& s, void* buf, size_t len);

/** Loops over short writes; false on error. */
bool writeFull(ByteStream& s, const void* buf, size_t len);

enum class WireResult {
    kOk,
    /** Clean end of stream at a frame boundary. */
    kEof,
    /** Bad magic, oversized payload, or a mid-frame truncation. */
    kBadFrame,
};

bool sendRequestFrame(ByteStream& s, const core::Request& req);
WireResult recvRequestFrame(ByteStream& s, core::Request& out);

bool sendResponseFrame(ByteStream& s, const core::Response& resp);
WireResult recvResponseFrame(ByteStream& s, core::Response& out);

// --- Buffer-based (nonblocking) variants, for event-loop IO --------
//
// A reactor cannot block in readExact: its socket delivers whatever
// bytes the kernel has, cut anywhere — possibly mid-header. These
// entry points frame over an in-memory byte window instead of a
// ByteStream, reusing the exact same decode path (the window is
// adapted to a ByteStream internally), so the stream-tested framing
// semantics and the incremental ones cannot drift apart.

/** Request frame header size (magic + payloadLen + id + genNs). */
inline constexpr size_t kRequestHeaderBytes = 24;
/** Full response frame size — responses carry no variable payload. */
inline constexpr size_t kResponseFrameBytes = 48;

enum class DecodeResult {
    /** The window does not yet hold one full frame; read more. */
    kNeedMore,
    /** One frame decoded; @p consumed bytes were used. */
    kFrame,
    /** Bad magic or oversized payload — the connection is poisoned
     * (byte-stream framing cannot resynchronize). */
    kBadFrame,
};

/**
 * Attempts to decode one request frame from the first @p len bytes of
 * @p data. Validates the magic and payload bound as soon as enough
 * bytes exist to check them, so a hostile or corrupt peer is rejected
 * before its claimed payload is buffered. On kFrame, @p consumed is
 * the frame's total size (data beyond it is the next frame's).
 */
DecodeResult tryDecodeRequestFrame(const uint8_t* data, size_t len,
                                   core::Request& out,
                                   size_t& consumed);

/** Same, for the client side of an event-loop transport. */
DecodeResult tryDecodeResponseFrame(const uint8_t* data, size_t len,
                                    core::Response& out,
                                    size_t& consumed);

/**
 * Zero-copy view of one decoded request frame: payload points into
 * the caller's buffer, valid only until that buffer moves or is
 * reused. The reactor's allocation-free read path decodes through
 * this and copies the payload into its arena; tryDecodeRequestFrame
 * is the same decode plus an owning payload copy.
 */
struct RequestFrameView {
    uint64_t id = 0;
    int64_t genNs = 0;
    const uint8_t* payload = nullptr;
    uint32_t payloadLen = 0;
};

/** Like tryDecodeRequestFrame, but without materializing the payload:
 * same early magic/length validation, same consumed contract. */
DecodeResult tryDecodeRequestFrameView(const uint8_t* data, size_t len,
                                       RequestFrameView& out,
                                       size_t& consumed);

/** Serializes @p resp into a caller buffer of kResponseFrameBytes —
 * the reactor write path encodes into per-task fixed storage instead
 * of allocating a stream per response. */
void encodeResponseFrame(uint8_t* out, const core::Response& resp);

/** ByteStream over a *connected socket* (writes use send() with
 * MSG_NOSIGNAL, so a dead peer is an error return, not a fatal
 * SIGPIPE); retries EINTR, does not own the fd. */
class FdStream final : public ByteStream {
  public:
    explicit FdStream(int fd) : fd_(fd) {}
    ssize_t readSome(void* buf, size_t len) override;
    ssize_t writeSome(const void* buf, size_t len) override;

  private:
    int fd_;
};

}  // namespace tb::net

#endif  // TAILBENCH_NET_WIRE_H_
