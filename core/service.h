#ifndef TAILBENCH_CORE_SERVICE_H_
#define TAILBENCH_CORE_SERVICE_H_

/**
 * @file
 * The server-side request loop shared by every real-time
 * configuration: N worker threads, each running
 *
 *   while (port.recvReq(req)):
 *       start = now; checksum = app.process(req); end = now
 *       port.sendResp({id, checksum, {genNs, start, end}})
 *
 * The loop owns the service-side timestamps (startNs / endNs around
 * App::process, one monotonic clock) and nothing else — warmup
 * filtering and statistics belong to the client, which is what lets
 * the same loop serve the in-process queue and a TCP socket
 * unchanged.
 */

#include <atomic>
#include <thread>
#include <vector>

#include "apps/common/app.h"
#include "core/transport.h"

namespace tb::core {

class ServiceLoop {
  public:
    /** Does not start any thread; call start(). @p port and @p app
     * must outlive the loop. */
    ServiceLoop(ServerPort& port, apps::App& app, unsigned workers);
    ~ServiceLoop();

    ServiceLoop(const ServiceLoop&) = delete;
    ServiceLoop& operator=(const ServiceLoop&) = delete;

    /** Spawns the worker threads. */
    void start();

    /** Joins all workers. Workers exit when recvReq returns false; the
     * last one out calls port.closeResponses(), so by construction the
     * client's response stream ends only after every response was
     * sent. */
    void join();

  private:
    void workerBody();

    ServerPort& port_;
    apps::App& app_;
    const unsigned workers_;
    std::atomic<unsigned> active_{0};
    std::vector<std::thread> threads_;
};

}  // namespace tb::core

#endif  // TAILBENCH_CORE_SERVICE_H_
