#include "net/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace tb::net {

namespace {

constexpr size_t kReqHeaderBytes = kRequestHeaderBytes;
constexpr size_t kRespHeaderBytes = kResponseFrameBytes;

static_assert(kReqHeaderBytes == 4 + 4 + 8 + 8,
              "request header layout changed");
static_assert(kRespHeaderBytes == 4 + 4 + 8 + 8 + 8 + 8 + 8,
              "response frame layout changed");

void
put32(uint8_t* p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

void
put64(uint8_t* p, uint64_t v)
{
    put32(p, static_cast<uint32_t>(v));
    put32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t
get32(const uint8_t* p)
{
    return static_cast<uint32_t>(p[0]) |
        static_cast<uint32_t>(p[1]) << 8 |
        static_cast<uint32_t>(p[2]) << 16 |
        static_cast<uint32_t>(p[3]) << 24;
}

uint64_t
get64(const uint8_t* p)
{
    return static_cast<uint64_t>(get32(p)) |
        static_cast<uint64_t>(get32(p + 4)) << 32;
}

/**
 * Reads exactly @p len bytes, distinguishing clean EOF (no bytes at
 * all — a peer that closed at a frame boundary) from a mid-read
 * truncation. The one short-read loop everything else wraps.
 */
WireResult
readExact(ByteStream& s, uint8_t* buf, size_t len)
{
    size_t got = 0;
    while (got < len) {
        const ssize_t n = s.readSome(buf + got, len - got);
        if (n < 0)
            return WireResult::kBadFrame;  // error is never a clean EOF
        if (n == 0)
            return got == 0 ? WireResult::kEof : WireResult::kBadFrame;
        got += static_cast<size_t>(n);
    }
    return WireResult::kOk;
}

/** Read-only ByteStream over a byte window — adapts a reactor's input
 * buffer to the stream decoders once a full frame is known present. */
class BufStream final : public ByteStream {
  public:
    BufStream(const uint8_t* data, size_t len)
        : data_(data), len_(len)
    {
    }

    ssize_t
    readSome(void* buf, size_t len) override
    {
        const size_t n = std::min(len, len_ - pos_);
        if (n == 0)
            return 0;  // EOF: window exhausted
        std::memcpy(buf, data_ + pos_, n);
        pos_ += n;
        return static_cast<ssize_t>(n);
    }

    ssize_t
    writeSome(const void*, size_t) override
    {
        return -1;  // read-only
    }

    size_t consumed() const { return pos_; }

  private:
    const uint8_t* data_;
    size_t len_;
    size_t pos_ = 0;
};

}  // namespace

ByteStream::~ByteStream() = default;

bool
readFull(ByteStream& s, void* buf, size_t len)
{
    return readExact(s, static_cast<uint8_t*>(buf), len) ==
        WireResult::kOk;
}

bool
writeFull(ByteStream& s, const void* buf, size_t len)
{
    const uint8_t* p = static_cast<const uint8_t*>(buf);
    size_t sent = 0;
    while (sent < len) {
        const ssize_t n = s.writeSome(p + sent, len - sent);
        if (n <= 0)
            return false;
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
sendRequestFrame(ByteStream& s, const core::Request& req)
{
    const std::string_view payload = req.payload.view();
    if (payload.size() > kMaxPayloadBytes)
        return false;
    uint8_t hdr[kReqHeaderBytes];
    put32(hdr, kRequestMagic);
    put32(hdr + 4, static_cast<uint32_t>(payload.size()));
    put64(hdr + 8, req.id);
    put64(hdr + 16, static_cast<uint64_t>(req.genNs));
    return writeFull(s, hdr, sizeof(hdr)) &&
        (payload.empty() ||
         writeFull(s, payload.data(), payload.size()));
}

WireResult
recvRequestFrame(ByteStream& s, core::Request& out)
{
    uint8_t hdr[kReqHeaderBytes];
    const WireResult hr = readExact(s, hdr, sizeof(hdr));
    if (hr != WireResult::kOk)
        return hr;
    if (get32(hdr) != kRequestMagic)
        return WireResult::kBadFrame;
    const uint32_t payload_len = get32(hdr + 4);
    if (payload_len > kMaxPayloadBytes)
        return WireResult::kBadFrame;
    out.id = get64(hdr + 8);
    out.genNs = static_cast<int64_t>(get64(hdr + 16));
    out.ctx = 0;  // routing context is per-hop, never wire-carried
    // Owning payload: this is the blocking (threads-backend) path; the
    // reactor's allocation-free path decodes via the frame view.
    std::string payload(payload_len, '\0');
    if (payload_len > 0 && !readFull(s, &payload[0], payload_len))
        return WireResult::kBadFrame;
    out.payload = std::move(payload);
    return WireResult::kOk;
}

void
encodeResponseFrame(uint8_t* out, const core::Response& resp)
{
    put32(out, kResponseMagic);
    put32(out + 4, 0);
    put64(out + 8, resp.id);
    put64(out + 16, resp.checksum);
    put64(out + 24, static_cast<uint64_t>(resp.timing.genNs));
    put64(out + 32, static_cast<uint64_t>(resp.timing.startNs));
    put64(out + 40, static_cast<uint64_t>(resp.timing.endNs));
}

bool
sendResponseFrame(ByteStream& s, const core::Response& resp)
{
    uint8_t hdr[kRespHeaderBytes];
    encodeResponseFrame(hdr, resp);
    return writeFull(s, hdr, sizeof(hdr));
}

WireResult
recvResponseFrame(ByteStream& s, core::Response& out)
{
    uint8_t hdr[kRespHeaderBytes];
    const WireResult hr = readExact(s, hdr, sizeof(hdr));
    if (hr != WireResult::kOk)
        return hr;
    if (get32(hdr) != kResponseMagic || get32(hdr + 4) != 0)
        return WireResult::kBadFrame;
    out.id = get64(hdr + 8);
    out.checksum = get64(hdr + 16);
    out.ctx = 0;
    out.timing.genNs = static_cast<int64_t>(get64(hdr + 24));
    out.timing.startNs = static_cast<int64_t>(get64(hdr + 32));
    out.timing.endNs = static_cast<int64_t>(get64(hdr + 40));
    return WireResult::kOk;
}

DecodeResult
tryDecodeRequestFrameView(const uint8_t* data, size_t len,
                          RequestFrameView& out, size_t& consumed)
{
    // Validate as early as the bytes allow: a bad magic or oversized
    // length must poison the connection before the peer's claimed
    // payload is buffered, not after.
    if (len >= 4 && get32(data) != kRequestMagic)
        return DecodeResult::kBadFrame;
    if (len >= 8 && get32(data + 4) > kMaxPayloadBytes)
        return DecodeResult::kBadFrame;
    if (len < kRequestHeaderBytes)
        return DecodeResult::kNeedMore;
    const uint32_t payload_len = get32(data + 4);
    const size_t total = kRequestHeaderBytes + payload_len;
    if (len < total)
        return DecodeResult::kNeedMore;
    out.id = get64(data + 8);
    out.genNs = static_cast<int64_t>(get64(data + 16));
    out.payload = data + kRequestHeaderBytes;
    out.payloadLen = payload_len;
    consumed = total;
    return DecodeResult::kFrame;
}

DecodeResult
tryDecodeRequestFrame(const uint8_t* data, size_t len,
                      core::Request& out, size_t& consumed)
{
    RequestFrameView view;
    const DecodeResult dr =
        tryDecodeRequestFrameView(data, len, view, consumed);
    if (dr != DecodeResult::kFrame)
        return dr;
    out.id = view.id;
    out.genNs = view.genNs;
    out.ctx = 0;  // routing context is per-hop, never wire-carried
    out.payload = std::string(
        reinterpret_cast<const char*>(view.payload), view.payloadLen);
    return DecodeResult::kFrame;
}

DecodeResult
tryDecodeResponseFrame(const uint8_t* data, size_t len,
                       core::Response& out, size_t& consumed)
{
    if (len >= 4 && get32(data) != kResponseMagic)
        return DecodeResult::kBadFrame;
    if (len < kResponseFrameBytes)
        return DecodeResult::kNeedMore;
    BufStream s(data, kResponseFrameBytes);
    if (recvResponseFrame(s, out) != WireResult::kOk)
        return DecodeResult::kBadFrame;
    consumed = s.consumed();
    return DecodeResult::kFrame;
}

ssize_t
FdStream::readSome(void* buf, size_t len)
{
    for (;;) {
        const ssize_t n = ::read(fd_, buf, len);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

ssize_t
FdStream::writeSome(const void* buf, size_t len)
{
    for (;;) {
        // MSG_NOSIGNAL: a peer-closed connection must surface as an
        // error return the transports can log, not as a SIGPIPE that
        // kills the whole benchmark process.
        const ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

}  // namespace tb::net
