#ifndef TAILBENCH_UTIL_ZIPF_H_
#define TAILBENCH_UTIL_ZIPF_H_

/**
 * @file
 * Zipfian rank generator (Gray et al., as popularized by YCSB).
 *
 * The kv-style TailBench apps draw their key popularity from this:
 * rank 0 is the hottest key. The generator itself is stateless across
 * draws — all randomness comes from the caller's Rng — so a seeded
 * request stream is reproducible regardless of which thread draws.
 */

#include <cstdint>

#include "util/rng.h"

namespace tb::util {

class ZipfianGenerator {
  public:
    /**
     * @param n      number of ranks (items); must be >= 1.
     * @param theta  skew in [0, 1]; 0.99 is the YCSB default, 1.0 is
     *               classic Zipf. Larger is more skewed.
     */
    ZipfianGenerator(uint64_t n, double theta = 0.99);

    /** Draws a rank in [0, n); rank 0 is the most popular. */
    uint64_t next(Rng& rng) const;

    uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

}  // namespace tb::util

#endif  // TAILBENCH_UTIL_ZIPF_H_
