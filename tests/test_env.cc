/** Unit tests: util/env.h — the blessed env seam's strict
 * warn-and-default parsing. A knob that does not parse must keep its
 * fallback (never coerce to 0: sizeFactor=0 degenerates every
 * dataset, port=0 flips the networked harness into self-serve mode),
 * and negative values must not wrap through strtoull. */

#include "util/env.h"

#include <cstdlib>  // tb-lint: allow(env-seam) setenv, to drive the seam
#include <string>

#include "tests/test_util.h"

using namespace tb::util;

namespace {

void
set(const char* name, const char* value)
{
    ::setenv(name, value, 1);
}

void
unset(const char* name)
{
    ::unsetenv(name);
}

}  // namespace

int
main()
{
    const char* k = "TAILBENCH_TEST_KNOB";

    // envString / envFlag: raw presence.
    unset(k);
    CHECK(envString(k) == nullptr);
    CHECK(!envFlag(k));
    set(k, "");
    CHECK(envString(k) != nullptr);
    CHECK(envFlag(k));  // historical TAILBENCH_FAST: set-empty counts
    set(k, "hello");
    CHECK(std::string(envString(k)) == "hello");

    // envU64: plain decimal in range.
    set(k, "42");
    CHECK_EQ(envU64(k, 7), static_cast<uint64_t>(42));
    unset(k);
    CHECK_EQ(envU64(k, 7), static_cast<uint64_t>(7));

    // Malformed values keep the fallback.
    set(k, "12abc");
    CHECK_EQ(envU64(k, 7), static_cast<uint64_t>(7));
    set(k, "");
    CHECK_EQ(envU64(k, 7), static_cast<uint64_t>(7));
    set(k, "abc");
    CHECK_EQ(envU64(k, 7), static_cast<uint64_t>(7));
    // Negative must not wrap to a huge unsigned (strtoull would).
    set(k, "-3");
    CHECK_EQ(envU64(k, 7), static_cast<uint64_t>(7));
    // Overflow.
    set(k, "99999999999999999999999999");
    CHECK_EQ(envU64(k, 7), static_cast<uint64_t>(7));
    // Range clamp is a rejection, not a saturation.
    set(k, "9");
    CHECK_EQ(envU64(k, 7, 1, 8), static_cast<uint64_t>(7));
    set(k, "0");
    CHECK_EQ(envU64(k, 7, 1, 8), static_cast<uint64_t>(7));
    set(k, "8");
    CHECK_EQ(envU64(k, 7, 1, 8), static_cast<uint64_t>(8));

    // envPositiveDouble: finite, > 0, fully consumed.
    set(k, "1.5");
    CHECK(envPositiveDouble(k, 3.0) == 1.5);
    set(k, "0");
    CHECK(envPositiveDouble(k, 3.0) == 3.0);
    set(k, "-1.5");
    CHECK(envPositiveDouble(k, 3.0) == 3.0);
    set(k, "inf");
    CHECK(envPositiveDouble(k, 3.0) == 3.0);
    set(k, "nan");
    CHECK(envPositiveDouble(k, 3.0) == 3.0);
    set(k, "1.5x");
    CHECK(envPositiveDouble(k, 3.0) == 3.0);
    unset(k);
    CHECK(envPositiveDouble(k, 3.0) == 3.0);

    // envPort: 1..65535, 0 = unset-or-invalid.
    set(k, "8080");
    CHECK_EQ(envPort(k), static_cast<uint16_t>(8080));
    set(k, "65535");
    CHECK_EQ(envPort(k), static_cast<uint16_t>(65535));
    set(k, "65536");  // would truncate to 0 under a naive cast chain
    CHECK_EQ(envPort(k), static_cast<uint16_t>(0));
    set(k, "0");
    CHECK_EQ(envPort(k), static_cast<uint16_t>(0));
    set(k, "-1");
    CHECK_EQ(envPort(k), static_cast<uint16_t>(0));
    set(k, "http");
    CHECK_EQ(envPort(k), static_cast<uint16_t>(0));
    unset(k);
    CHECK_EQ(envPort(k), static_cast<uint16_t>(0));

    return TEST_MAIN_RESULT();
}
