#ifndef TAILBENCH_CORE_CLIENT_H_
#define TAILBENCH_CORE_CLIENT_H_

/**
 * @file
 * The client half of the harness API: the one place that owns the
 * open-loop arrival schedule (drawn from the pluggable
 * core::ArrivalProcess — Poisson baseline, bursts, diurnal, trace),
 * generation-time stamping, warmup separation, generator-lag tracking
 * and result building. Every real-time configuration is "LoadClient +
 * some Transport"; the methodology lives here exactly once.
 *
 * Threading: run() uses the calling thread as the generator (genNs is
 * the *scheduled* arrival, stamped before sendRequest — a slow server
 * or transport shows up as sojourn, never as missing load) and one
 * collector thread draining Transport::recvResponse. Warmup responses
 * are dropped at collection; measured ones feed buildRunResult.
 */

#include <vector>

#include "core/harness.h"
#include "core/transport.h"

namespace tb::core {

class LoadClient {
  public:
    /**
     * One full measurement against @p transport: warmup + measured
     * requests of @p app at cfg.qps, then finishSend() and drain.
     * The service side must already be consuming the transport's
     * server end (e.g. a started ServiceLoop), or run() blocks
     * forever.
     */
    RunResult run(apps::App& app, const HarnessConfig& cfg,
                  Transport& transport);

    /**
     * Shared result-building tail, also used by the virtual-time
     * SimHarness: buildRunResult with the config's windows/SLO knobs
     * + the generator-lag accounting (records maxGenLagNs and warns
     * when the lag exceeds one mean interarrival gap — the run's
     * offered load was silently below nominal). @p genLag, when
     * non-empty, feeds per-window lag and the coordinated-omission
     * self-check; virtual-time callers leave it empty.
     */
    static RunResult finalize(std::vector<RequestTiming>&& timings,
                              const HarnessConfig& cfg,
                              int64_t maxGenLagNs,
                              std::vector<GenLagSample>&& genLag = {});
};

}  // namespace tb::core

#endif  // TAILBENCH_CORE_CLIENT_H_
