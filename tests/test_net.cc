/** Unit tests: net/wire.h framing (round-trips under partial reads /
 * short writes, oversized-payload rejection, EOF vs truncation) and
 * the socket harnesses end to end (TcpServer + transports,
 * LoopbackHarness vs IntegratedHarness, NetworkedHarness). */

#include "net/wire.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/integrated_harness.h"
#include "core/methodology.h"
#include "net/server_harness.h"
#include "util/clock.h"

#include "tests/test_util.h"

using tb::core::HarnessConfig;
using tb::core::Request;
using tb::core::RequestTiming;
using tb::core::Response;
using tb::core::RunResult;
using tb::net::ByteStream;
using tb::net::WireResult;

namespace {

/**
 * In-memory stream that deliberately fragments I/O: reads return at
 * most @p maxRead bytes, writes accept at most @p maxWrite — the
 * short-read/short-write behavior of a real socket, without one.
 */
class MemStream final : public ByteStream {
  public:
    MemStream(size_t maxRead, size_t maxWrite)
        : max_read_(maxRead), max_write_(maxWrite)
    {
    }

    ssize_t
    readSome(void* buf, size_t len) override
    {
        if (pos_ >= data_.size())
            return 0;  // EOF
        const size_t n =
            std::min({len, max_read_, data_.size() - pos_});
        std::memcpy(buf, data_.data() + pos_, n);
        pos_ += n;
        return static_cast<ssize_t>(n);
    }

    ssize_t
    writeSome(const void* buf, size_t len) override
    {
        const size_t n = std::min(len, max_write_);
        const uint8_t* p = static_cast<const uint8_t*>(buf);
        data_.insert(data_.end(), p, p + n);
        return static_cast<ssize_t>(n);
    }

    std::vector<uint8_t> data_;
    size_t pos_ = 0;

  private:
    size_t max_read_;
    size_t max_write_;
};

std::unique_ptr<tb::apps::App>
makeTestApp()
{
    auto app = tb::apps::makeApp("img-dnn");
    tb::apps::AppConfig cfg;
    cfg.seed = 42;
    cfg.sizeFactor = 0.05;  // mean service ~25 us
    app->init(cfg);
    return app;
}

void
checkTimingInvariants(const RunResult& r)
{
    for (const RequestTiming& t : r.samples) {
        CHECK(t.startNs >= t.genNs);
        CHECK(t.serviceNs() > 0);
        CHECK(t.queueNs() >= 0);
        CHECK(t.sojournNs() >= t.serviceNs());
        CHECK(t.sojournNs() >= t.queueNs());
    }
}

}  // namespace

int
main()
{
    // Request round-trip through a maximally fragmenting stream: the
    // sender sees short writes, the receiver short reads.
    {
        MemStream s(/*maxRead=*/3, /*maxWrite=*/2);
        Request in;
        in.id = 0x1122334455667788ull;
        in.payload = "the quick brown fox";
        in.genNs = -12345;  // sign must survive
        CHECK(tb::net::sendRequestFrame(s, in));
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) == WireResult::kOk);
        CHECK_EQ(out.id, in.id);
        CHECK(out.payload == in.payload);
        CHECK_EQ(out.genNs, in.genNs);
        // The stream is now drained: a further recv is a clean EOF.
        CHECK(tb::net::recvRequestFrame(s, out) == WireResult::kEof);
    }

    // Empty payload round-trips too.
    {
        MemStream s(1, 1);
        Request in;
        in.id = 7;
        CHECK(tb::net::sendRequestFrame(s, in));
        Request out;
        out.payload = "stale";
        CHECK(tb::net::recvRequestFrame(s, out) == WireResult::kOk);
        CHECK(out.payload.empty());
    }

    // Response round-trip.
    {
        MemStream s(3, 2);
        Response in;
        in.id = 99;
        in.checksum = 0xdeadbeefcafef00dull;
        in.timing.genNs = 1000;
        in.timing.startNs = 2000;
        in.timing.endNs = 3500;
        CHECK(tb::net::sendResponseFrame(s, in));
        Response out;
        CHECK(tb::net::recvResponseFrame(s, out) == WireResult::kOk);
        CHECK_EQ(out.id, in.id);
        CHECK_EQ(out.checksum, in.checksum);
        CHECK_EQ(out.timing.genNs, in.timing.genNs);
        CHECK_EQ(out.timing.startNs, in.timing.startNs);
        CHECK_EQ(out.timing.endNs, in.timing.endNs);
    }

    // Back-to-back frames on one stream stay framed.
    {
        MemStream s(5, 3);
        for (uint64_t i = 0; i < 10; i++) {
            Request in;
            in.id = i;
            in.payload = std::string(i, 'x');
            CHECK(tb::net::sendRequestFrame(s, in));
        }
        for (uint64_t i = 0; i < 10; i++) {
            Request out;
            CHECK(tb::net::recvRequestFrame(s, out) ==
                  WireResult::kOk);
            CHECK_EQ(out.id, i);
            CHECK_EQ(out.payload.size(), static_cast<size_t>(i));
        }
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) == WireResult::kEof);
    }

    // Oversized payload: the sender refuses, and a hand-crafted header
    // claiming an oversized payload is rejected before any allocation.
    {
        MemStream s(64, 64);
        Request big;
        big.payload.assign(tb::net::kMaxPayloadBytes + 1, 'x');
        CHECK(!tb::net::sendRequestFrame(s, big));

        const uint32_t magic = tb::net::kRequestMagic;
        const uint32_t huge = tb::net::kMaxPayloadBytes + 1;
        uint8_t hdr[24] = {0};
        std::memcpy(hdr, &magic, 4);
        std::memcpy(hdr + 4, &huge, 4);
        s.data_.assign(hdr, hdr + sizeof(hdr));
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) ==
              WireResult::kBadFrame);
    }

    // Bad magic and mid-frame truncation are kBadFrame, not kEof.
    {
        MemStream s(64, 64);
        Request in;
        in.id = 3;
        in.payload = "payload";
        CHECK(tb::net::sendRequestFrame(s, in));
        s.data_[0] ^= 0xff;  // corrupt magic
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) ==
              WireResult::kBadFrame);
    }
    {
        MemStream s(64, 64);
        Request in;
        in.id = 4;
        in.payload = "payload";
        CHECK(tb::net::sendRequestFrame(s, in));
        s.data_.resize(s.data_.size() - 3);  // cut payload short
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) ==
              WireResult::kBadFrame);
        // Truncation inside the *header* is also kBadFrame.
        MemStream s2(64, 64);
        s2.data_.assign(s.data_.begin(), s.data_.begin() + 5);
        CHECK(tb::net::recvRequestFrame(s2, out) ==
              WireResult::kBadFrame);
    }

    // One request through the real TCP stack: TcpServer running the
    // shared service loop, a persistent-connection client transport,
    // server-side start/end stamps and a client-side endNs restamp.
    {
        auto app = makeTestApp();
        tb::net::TcpServer server(*app, 1);
        CHECK(server.listening());
        CHECK(server.port() != 0);
        server.start();
        tb::net::TcpClientTransport transport("127.0.0.1",
                                              server.port());
        CHECK(transport.connected());

        tb::util::Rng rng(7);
        Request req;
        req.id = 42;
        req.payload = app->genRequest(rng);
        req.genNs = tb::util::monotonicNs();
        const int64_t gen_ns = req.genNs;
        transport.sendRequest(std::move(req));
        Response resp;
        CHECK(transport.recvResponse(resp));
        CHECK_EQ(resp.id, static_cast<uint64_t>(42));
        CHECK_EQ(resp.timing.genNs, gen_ns);
        CHECK(resp.timing.startNs >= gen_ns);
        CHECK(resp.timing.endNs > resp.timing.startNs);
        transport.finishSend();
        CHECK(!transport.recvResponse(resp));  // clean end of stream
        server.stop();
    }

    // Two concurrent clients of one server with *overlapping* request
    // ids: each response must come back on the connection its request
    // arrived on (routing is per-connection, not per-id).
    {
        auto app = makeTestApp();
        tb::net::TcpServer server(*app, 2);
        CHECK(server.listening());
        server.start();
        tb::net::TcpClientTransport a("127.0.0.1", server.port());
        tb::net::TcpClientTransport b("127.0.0.1", server.port());
        CHECK(a.connected());
        CHECK(b.connected());

        tb::util::Rng rng(11);
        for (uint64_t i = 0; i < 20; i++) {
            Request ra;
            ra.id = i;  // both clients use ids 0..19
            ra.payload = app->genRequest(rng);
            ra.genNs = 1000000 + static_cast<int64_t>(i);  // client A tag
            a.sendRequest(std::move(ra));
            Request rb;
            rb.id = i;
            rb.payload = app->genRequest(rng);
            rb.genNs = 2000000 + static_cast<int64_t>(i);  // client B tag
            b.sendRequest(std::move(rb));
        }
        a.finishSend();
        b.finishSend();
        unsigned got_a = 0;
        Response resp;
        while (a.recvResponse(resp)) {
            CHECK(resp.timing.genNs >= 1000000 &&
                  resp.timing.genNs < 2000000);
            got_a++;
        }
        unsigned got_b = 0;
        while (b.recvResponse(resp)) {
            CHECK(resp.timing.genNs >= 2000000);
            got_b++;
        }
        CHECK_EQ(got_a, 20u);
        CHECK_EQ(got_b, 20u);
        server.stop();
    }

    // LoopbackHarness end to end vs the integrated harness at the
    // same low load: same request count, the same timestamp
    // invariants, and achieved throughput within tolerance of
    // integrated (both track the offered rate when unsaturated).
    {
        auto app = makeTestApp();
        tb::core::IntegratedHarness integrated;
        tb::net::LoopbackHarness loopback;
        CHECK(loopback.configName() == std::string("loopback"));

        const double sat = tb::core::estimateSaturationQps(
            integrated, *app, 1, 42, 200);
        HarnessConfig cfg;
        cfg.qps = 0.10 * sat;
        cfg.workerThreads = 1;
        cfg.warmupRequests = 50;
        cfg.measuredRequests = 400;
        cfg.seed = 42;
        cfg.keepSamples = true;

        const RunResult ri = integrated.run(*app, cfg);
        const RunResult rl = loopback.run(*app, cfg);
        CHECK_EQ(rl.latency.sojourn.count,
                 static_cast<uint64_t>(400));
        CHECK_EQ(rl.samples.size(), static_cast<size_t>(400));
        checkTimingInvariants(rl);
        CHECK_NEAR(rl.achievedQps, ri.achievedQps, 0.20);
        // Sockets cost something: loopback mean sojourn is not
        // *faster* than integrated by more than noise.
        CHECK(rl.latency.sojourn.meanNs >
              0.5 * ri.latency.sojourn.meanNs);
    }

    // Multi-connection client against a sharded server: one
    // connection per worker, requests striped round-robin by the
    // client and placed connection-affine by the server's sharded
    // port; every response comes back on the right socket and the
    // stream ends cleanly on all of them.
    {
        auto app = makeTestApp();
        tb::core::PortOptions popts;
        popts.policy = tb::core::QueuePolicy::kShardedSteal;
        tb::net::TcpServer server(*app, 4, 0, true, popts);
        CHECK(server.listening());
        server.start();
        tb::net::MultiConnTcpTransport transport(
            "127.0.0.1", server.port(), /*connections=*/4);
        CHECK(transport.connected());

        tb::util::Rng rng(13);
        constexpr uint64_t kN = 80;
        for (uint64_t i = 0; i < kN; i++) {
            Request req;
            req.id = i;
            req.payload = app->genRequest(rng);
            req.genNs = tb::util::monotonicNs();
            transport.sendRequest(std::move(req));
        }
        transport.finishSend();
        std::set<uint64_t> seen;
        Response resp;
        while (transport.recvResponse(resp)) {
            CHECK(seen.insert(resp.id).second);
            CHECK(resp.timing.endNs > resp.timing.startNs);
        }
        CHECK_EQ(seen.size(), static_cast<size_t>(kN));
        server.stop();
    }

    // LoopbackHarness in multi-connection + sharded mode: same
    // count/invariant guarantees as the classic loopback, with the
    // effective concurrency recorded in the result.
    {
        auto app = makeTestApp();
        tb::net::LoopbackOptions lopts;
        lopts.connections = 0;  // one per server worker
        lopts.port.policy = tb::core::QueuePolicy::kSharded;
        tb::net::LoopbackHarness loopback(lopts);
        HarnessConfig cfg;
        cfg.qps = 2000.0;
        cfg.workerThreads = 4;
        cfg.warmupRequests = 40;
        cfg.measuredRequests = 300;
        cfg.seed = 45;
        cfg.keepSamples = true;
        const RunResult r = loopback.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(300));
        checkTimingInvariants(r);
        CHECK_EQ(r.serviceWorkers, 4u);
    }

    // NetworkedHarness end to end: per-request connections against an
    // in-process server on an ephemeral port.
    {
        auto app = makeTestApp();
        tb::net::NetworkedHarness networked;
        CHECK(networked.configName() == std::string("networked"));
        HarnessConfig cfg;
        cfg.qps = 1500.0;
        cfg.workerThreads = 1;
        cfg.warmupRequests = 20;
        cfg.measuredRequests = 150;
        cfg.seed = 43;
        cfg.keepSamples = true;
        const RunResult r = networked.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(150));
        checkTimingInvariants(r);
        // Multi-worker service loop over sockets also completes.
        cfg.workerThreads = 2;
        cfg.seed = 44;
        cfg.keepSamples = false;
        const RunResult r2 = networked.run(*app, cfg);
        CHECK_EQ(r2.latency.sojourn.count,
                 static_cast<uint64_t>(150));
    }

    return TEST_MAIN_RESULT();
}
