#include "bench/sweep.h"

#include <cstdio>

#include "util/logging.h"

namespace tb::bench {

namespace {

void
appendPointJson(JsonWriter& jw, const SweepPoint& p)
{
    const core::RunResult& r = p.result;
    jw.beginObject()
        .str("app", p.app)
        .str("config", p.config)
        .num("fraction", p.fraction)
        .num("offered_qps", p.offeredQps)
        .num("sat_qps", p.satQps)
        .num("achieved_qps", r.achievedQps)
        .num("sojourn_mean_ns", r.latency.sojourn.meanNs)
        .num("sojourn_p50_ns", static_cast<double>(r.latency.sojourn.p50Ns))
        .num("sojourn_p95_ns", static_cast<double>(r.latency.sojourn.p95Ns))
        .num("sojourn_p99_ns", static_cast<double>(r.latency.sojourn.p99Ns))
        .num("queueing_p95_ns",
             static_cast<double>(r.latency.queueing.p95Ns))
        .num("service_p95_ns", static_cast<double>(r.latency.service.p95Ns))
        .num("max_gen_lag_ns", static_cast<double>(r.maxGenLagNs))
        .boolean("gen_lag_invalid", genLagInvalidates(r, p.offeredQps));
    if (r.sloTargetNs > 0)
        jw.num("slo_attainment", r.sloAttainment);
    jw.boolean("co_suspect", r.coSuspect);
    jw.endObject();
}

}  // namespace

SweepOutput
runLatencySweep(const SweepSpec& spec, const BenchSettings& s)
{
    SweepOutput out;
    if (spec.harnesses.empty() || spec.apps.empty()) {
        TB_LOG_WARN("runLatencySweep(%s): no harnesses or no apps",
                    spec.key.c_str());
        return out;
    }
    const size_t ncfg = spec.harnesses.size();
    const size_t cal =
        spec.calibrateIndex < ncfg ? spec.calibrateIndex : 0;
    const std::vector<double> fractions = sweepFractions(s);

    for (const std::string& name : spec.apps) {
        auto app = makeBenchApp(name, s);
        const uint64_t budget = requestBudget(name, s);

        // Saturation: one shared calibration (fractions of the
        // reference harness's capacity — absolute-QPS sweeps) or one
        // per configuration (fractions of each config's OWN capacity —
        // load sweeps, fig6's re-plot).
        std::vector<double> sat(ncfg, 0.0);
        if (spec.perHarnessLoad) {
            for (size_t c = 0; c < ncfg; c++) {
                sat[c] = calibrateSaturation(*spec.harnesses[c], *app,
                                             spec.threads, s);
                out.satQps[name + "/" + spec.harnesses[c]->configName()] =
                    sat[c];
            }
            std::printf("\n%s (sat:", name.c_str());
            for (size_t c = 0; c < ncfg; c++)
                std::printf(" %s %.0f",
                            spec.harnesses[c]->configName().c_str(),
                            sat[c]);
            std::printf(" qps)\n");
        } else {
            const double shared = calibrateSaturation(
                *spec.harnesses[cal], *app, spec.threads, s);
            sat.assign(ncfg, shared);
            out.satQps[name] = shared;
            if (ncfg == 1)
                std::printf("\n%s (sat ~ %.0f qps)\n", name.c_str(),
                            shared);
            else
                std::printf("\n%s (%s sat ~ %.0f qps)\n", name.c_str(),
                            spec.harnesses[cal]->configName().c_str(),
                            shared);
        }

        // Column headers.
        if (spec.wide) {
            std::printf("  %10s %12s %12s %12s %10s\n", "qps", "mean_ms",
                        "p95_ms", "p99_ms", "ach_qps");
        } else {
            std::printf("  %10s", spec.perHarnessLoad ? "load" : "qps");
            for (size_t c = 0; c < ncfg; c++)
                std::printf(" %12s %8s",
                            spec.harnesses[c]->configName().c_str(),
                            "ach");
            std::printf("\n");
        }

        for (double f : fractions) {
            if (spec.wide) {
                const double qps = f * sat[0];
                const core::RunResult r = measureAt(
                    *spec.harnesses[0], *app, qps, spec.threads, budget,
                    s.seed +
                        static_cast<uint64_t>(
                            f * static_cast<double>(spec.seedScale)));
                std::printf("  %10.1f %12s %12s %12s %10s\n", qps,
                            fmtMs(r.latency.sojourn.meanNs).c_str(),
                            fmtP95Cell(r, qps).c_str(),
                            fmtMs(static_cast<double>(
                                r.latency.sojourn.p99Ns)).c_str(),
                            fmtQpsCell(r, qps).c_str());
                out.points.push_back(
                    {name, spec.harnesses[0]->configName(), f, qps,
                     sat[0], r});
                continue;
            }
            if (spec.perHarnessLoad)
                std::printf("  %10.2f", f);
            else
                std::printf("  %10.1f", f * sat[0]);
            for (size_t c = 0; c < ncfg; c++) {
                const double qps = f * sat[c];
                const core::RunResult r = measureAt(
                    *spec.harnesses[c], *app, qps, spec.threads, budget,
                    s.seed +
                        static_cast<uint64_t>(
                            f * static_cast<double>(spec.seedScale)));
                std::printf(" %12s %8s", fmtP95Cell(r, qps).c_str(),
                            fmtQpsCell(r, qps).c_str());
                out.points.push_back(
                    {name, spec.harnesses[c]->configName(), f, qps,
                     sat[c], r});
            }
            std::printf("\n");
        }
    }

    // Machine-readable report.
    JsonWriter jw;
    jw.beginObject()
        .str("driver", spec.key)
        .str("git", gitRevision())
        .beginObject("config")
        .num("size_factor", s.sizeFactor)
        .boolean("fast", s.fast)
        .num("seed", static_cast<double>(s.seed))
        .num("threads", spec.threads)
        .str("arrival", core::arrivalKindName(s.arrival.kind))
        .num("slo_ms", static_cast<double>(s.sloTargetNs) / 1e6)
        .boolean("per_harness_load", spec.perHarnessLoad)
        .endObject()
        .beginArray("points");
    for (const SweepPoint& p : out.points)
        appendPointJson(jw, p);
    jw.endArray().endObject();
    const std::string path = "BENCH_" + spec.key + ".json";
    if (writeTextFile(path, jw.text()))
        std::printf("\nwrote %s (%zu points)\n", path.c_str(),
                    out.points.size());
    return out;
}

}  // namespace tb::bench
