#ifndef TAILBENCH_CORE_HARNESS_H_
#define TAILBENCH_CORE_HARNESS_H_

/**
 * @file
 * The harness contract every configuration implements: integrated
 * (core/), networked and loopback (net/), and virtual-time simulation
 * (sim/). A harness drives an app with an open-loop Poisson request
 * stream and reports the latency decomposition the methodology needs:
 *
 *   sojourn  = completion - generation   (what the client experiences)
 *   queueing = service start - generation
 *   service  = completion - service start
 *
 * Requests are timestamped at *generation* time, before any queue is
 * involved, which is what makes the measurement free of coordinated
 * omission: a slow server cannot throttle the arrival process or hide
 * the waiting it causes.
 *
 * A Harness is a thin composition of the three API pieces underneath
 * it: a LoadClient (core/client.h — schedule, timestamps, stats), a
 * Transport (core/transport.h — in-process queues or sockets), and a
 * ServiceLoop (core/service.h — the recvReq/process/sendResp worker
 * pool). Only the Transport differs between configurations.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common/app.h"
#include "core/arrival.h"

namespace tb::core {

struct HarnessConfig {
    /** Offered load: mean arrival rate of the arrival process. */
    double qps = 1000.0;
    unsigned workerThreads = 1;
    /** Leading requests processed but excluded from every statistic
     * (warmup separation; caches, allocator, branch predictors). */
    uint64_t warmupRequests = 0;
    uint64_t measuredRequests = 1000;
    uint64_t seed = 42;
    /** Keep per-request timings in RunResult::samples. */
    bool keepSamples = false;
    /** Pin service workers to CPUs (ServiceOptions::pinWorkers) so
     * per-worker-shard measurements are not confounded by OS thread
     * migration. Real-time harnesses only; the simulator ignores it. */
    bool pinWorkers = false;
    /** Which arrival process shapes the request stream (core/arrival.h).
     * Defaults to the paper's open-loop Poisson baseline. */
    ArrivalSpec arrival;
    /** SLO target on sojourn latency; 0 disables SLO accounting. */
    int64_t sloTargetNs = 0;
    /** Number of equal-width reporting windows over the measured span
     * (RunResult::windows). 0 picks a default from the sample count. */
    unsigned windows = 0;
};

/** Timestamps of one request's life cycle, all from the same
 * monotonic clock. */
struct RequestTiming {
    int64_t genNs = 0;    // scheduled generation (arrival) time
    int64_t startNs = 0;  // worker begins service
    int64_t endNs = 0;    // completion

    int64_t sojournNs() const { return endNs - genNs; }
    int64_t serviceNs() const { return endNs - startNs; }
    int64_t queueNs() const { return startNs - genNs; }
};

struct LatencySummary {
    double meanNs = 0.0;
    int64_t p50Ns = 0;
    int64_t p95Ns = 0;
    int64_t p99Ns = 0;
    uint64_t count = 0;
};

struct LatencyReport {
    LatencySummary sojourn;
    LatencySummary queueing;
    LatencySummary service;
};

/** One generator-side lag observation: how far behind its own
 * schedule the open-loop generator was when it sent the request
 * scheduled at genNs (0 when on time; virtual-time harnesses have
 * no lag by construction). */
struct GenLagSample {
    int64_t genNs = 0;
    int64_t lagNs = 0;
};

/**
 * Tail percentiles and generator health over one reporting window of
 * the measured span. Windowed accounting is what makes bursty runs
 * honest: a burst that overwhelms the server — or degrades the
 * generator into closed-loop behavior — is flagged in the window
 * where it happened instead of being averaged away end-of-run.
 */
struct WindowStats {
    int64_t startNs = 0;  // window bounds on the generation-time axis
    int64_t endNs = 0;
    uint64_t count = 0;   // requests generated in this window
    int64_t sojournP50Ns = 0;
    int64_t sojournP95Ns = 0;
    int64_t sojournP99Ns = 0;
    /** Worst generator lag for requests in this window (needs the
     * caller to pass GenLagSamples; 0 otherwise). */
    int64_t maxGenLagNs = 0;
    /** Fraction of this window's requests with sojourn <= the SLO
     * target; -1 when no target was configured. */
    double sloFrac = -1.0;
    /** True when maxGenLagNs exceeds one mean interarrival gap: the
     * offered load in this window was below nominal. */
    bool genLagged = false;
};

/** Knobs for buildRunResult beyond the legacy keepSamples flag. */
struct ResultOptions {
    bool keepSamples = false;
    /** Reporting windows; 0 = pick from sample count (see
     * buildRunResult), clamped to [1, 256]. */
    unsigned windows = 0;
    /** SLO target on sojourn; 0 disables attainment accounting. */
    int64_t sloTargetNs = 0;
    /** Scheduled mean interarrival gap (1e9/qps); enables the
     * per-window genLagged flag and the coordinated-omission
     * self-check. 0 disables both. */
    double scheduledMeanGapNs = 0.0;
    /** Generator-side lag series (sorted or not; matched to windows
     * by genNs). Optional; real-time clients record it. */
    const std::vector<GenLagSample>* genLag = nullptr;
};

struct RunResult {
    /** Measured completions / measured wall-clock span. */
    double achievedQps = 0.0;
    LatencyReport latency;
    /**
     * Worst lag of the load generator behind its own open-loop
     * schedule: max over requests of (actual push time - scheduled
     * arrival). Zero for virtual-time harnesses. A lag beyond one mean
     * interarrival gap means the generator could not sustain the
     * nominal rate — the offered load was silently lower than
     * configured, which invalidates the run (the harness also logs a
     * warning when that happens).
     */
    int64_t maxGenLagNs = 0;
    /**
     * Effective service-side concurrency: worker threads that served
     * the run, and how many of them were successfully CPU-pinned
     * (0/0 when the harness has no real worker pool, e.g. an external
     * server or the virtual-time simulator).
     */
    unsigned serviceWorkers = 0;
    unsigned pinnedWorkers = 0;
    /** Per-request timings (measured window only), in generation
     * order; populated only when HarnessConfig::keepSamples. */
    std::vector<RequestTiming> samples;

    /** SLO target the run was scored against (0 = none). */
    int64_t sloTargetNs = 0;
    /** Fraction of measured requests with sojourn <= sloTargetNs;
     * -1 when no target was configured. */
    double sloAttainment = -1.0;
    /** Equal-width windows over the measured generation-time span. */
    std::vector<WindowStats> windows;

    /**
     * Coordinated-omission self-check (Tell-Tale Tail Latencies): a
     * generator that stretches its schedule to match a slow server
     * degrades open-loop into closed-loop and silently under-reports
     * queueing delay. coSpanStretch compares the achieved send span
     * (scheduled arrival + lag) against the scheduled span; coLateFrac
     * is the fraction of requests sent more than one mean gap late.
     * coSuspect flags the run (and warns) when either diverges. Only
     * computed when ResultOptions carries genLag + scheduledMeanGapNs.
     */
    double coSpanStretch = 1.0;
    double coLateFrac = 0.0;
    bool coSuspect = false;
};

class Harness {
  public:
    virtual ~Harness();

    /** Runs one measurement: warmup + measured requests at cfg.qps. */
    virtual RunResult run(apps::App& app, const HarnessConfig& cfg) = 0;

    /** "integrated", "loopback", "networked", "simulation". */
    virtual std::string configName() const = 0;
};

/** Exact summary statistics over a sample vector (harness-internal
 * collection sizes make exact stats affordable; the HDR histogram is
 * for streaming contexts). */
LatencySummary summarizeNs(const std::vector<int64_t>& samples);

/**
 * Shared post-processing: sorts timings by generation time, computes
 * the achieved QPS over the measured span, the three latency
 * summaries, per-window tail percentiles and generator-lag, SLO
 * attainment, and the coordinated-omission self-check (which warns
 * when it fires). Moves the timings into RunResult::samples when
 * requested.
 */
RunResult buildRunResult(std::vector<RequestTiming>&& timings,
                         const ResultOptions& opts);

/** Legacy convenience: aggregates only, no windows/SLO/CO check. */
RunResult buildRunResult(std::vector<RequestTiming>&& timings,
                         bool keepSamples);

}  // namespace tb::core

#endif  // TAILBENCH_CORE_HARNESS_H_
