#ifndef TAILBENCH_UTIL_ENV_H_
#define TAILBENCH_UTIL_ENV_H_

/**
 * @file
 * The blessed environment-variable seam: every TAILBENCH_* knob is
 * read and parsed here, nowhere else (scripts/tb_lint.py rejects raw
 * std::getenv outside this file pair).
 *
 * Parsing is strict with warn-and-default semantics throughout — the
 * PR 5 rule: atof/atoll would coerce a malformed value to 0, and a
 * zeroed knob silently flips the measured configuration (sizeFactor=0
 * degenerates every dataset; port=0 switches the networked harness to
 * self-serve mode). A value that does not parse, or parses outside
 * its documented range, keeps the default and warns with the variable
 * name and the offending text, so a typo'd knob is a loud anomaly
 * instead of a quietly different experiment.
 */

#include <cstdint>

namespace tb::util {

/** Raw env lookup (nullptr when unset). The one sanctioned
 * std::getenv call site, for free-form string knobs (TAILBENCH_LOG,
 * TAILBENCH_NET_HOST) whose parsing is the caller's. */
const char* envString(const char* name);

/** Presence flag: true when @p name is set (to anything, including
 * empty — matching the historical TAILBENCH_FAST behavior). */
bool envFlag(const char* name);

/**
 * Strict unsigned-integer knob via strtoull: the whole value must be
 * a plain decimal integer in [min, max] — no sign (strtoull would
 * silently wrap a negative), no trailing text, no overflow. Anything
 * else warns with @p name and keeps @p fallback.
 */
uint64_t envU64(const char* name, uint64_t fallback,
                uint64_t min = 0, uint64_t max = UINT64_MAX);

/** Strict positive-double knob via strtod: finite, > 0, fully
 * consumed; else warn-and-default. */
double envPositiveDouble(const char* name, double fallback);

/** Strict TCP port knob: 1..65535 via the same path as envU64, with
 * 0 meaning "unset or invalid" (callers treat 0 as absent; invalid
 * values have already warned). */
uint16_t envPort(const char* name);

}  // namespace tb::util

#endif  // TAILBENCH_UTIL_ENV_H_
