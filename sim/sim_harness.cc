#include "sim/sim_harness.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/arrival.h"
#include "core/client.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tb::sim {

namespace {

/** Cycles per instruction with every cache/branch event priced
 * separately (L1 hits folded in, per sim/machine.h). */
constexpr double kBaseCpi = 1.0;

/** DRAM traffic each batch corunner streams, GB/s. */
constexpr double kCorunnerDramGBs = 2.5;

/** Cap on modeled DRAM channel utilization so the latency inflation
 * 1/(1-rho) stays finite under full saturation. */
constexpr double kMaxDramRho = 0.95;

/** Bytes moved per L3 miss (one cache line). */
constexpr double kLineBytes = 64.0;

/** Generic SMP scaling loss per additional active core (coherence,
 * shared-structure pressure) applied to every request. */
constexpr double kSmpPenaltyPerCore = 0.03;

/**
 * DRAM channel utilization: the app's own miss traffic on every
 * active core (as if running at full reference speed — an upper
 * bound, the right bias for a contention penalty) plus the corunners'
 * streams, against the machine's peak bandwidth.
 */
double
dramUtilization(const MachineConfig& machine,
                const apps::AppProfile& profile, unsigned activeCores)
{
    // misses/instr * bytes/miss * instr/ns = bytes/ns = GB/s.
    const double app_gbs = effectiveL3Mpki(machine, profile) / 1000.0 *
        kLineBytes * apps::kRefInstructionsPerNs;
    const double demand_gbs = app_gbs * activeCores +
        kCorunnerDramGBs * machine.batchCorunners;
    return std::min(demand_gbs / machine.dramPeakGBs, kMaxDramRho);
}

}  // namespace

double
effectiveL3Mpki(const MachineConfig& machine,
                const apps::AppProfile& profile)
{
    if (machine.batchCorunners == 0)
        return profile.l3MpkiFull;
    // llcShare = llcMb / (1 + corunners); miss rate ~ sqrt of the
    // capacity ratio llcMb/llcShare, so llcMb cancels out. An L3 miss
    // is an L2 miss that reached the LLC, so no amount of capacity
    // pressure can push the miss rate past the L3 *access* rate.
    const double capacity_ratio =
        1.0 + static_cast<double>(machine.batchCorunners);
    return std::min(profile.l3MpkiFull * std::sqrt(capacity_ratio),
                    profile.l2Mpki);
}

double
nsPerInstruction(const MachineConfig& machine,
                 const apps::AppProfile& profile, unsigned activeCores)
{
    const double core_cycles = kBaseCpi +
        profile.branchMpki / 1000.0 * machine.branchPenaltyCycles;
    double stall_ns = 0.0;
    if (!machine.idealMemory) {
        const double cache_cycles =
            (profile.l1iMpki + profile.l1dMpki) / 1000.0 *
                machine.l2HitCycles +
            profile.l2Mpki / 1000.0 * machine.l3HitCycles;
        // Queueing at the memory controller: latency inflates as
        // 1/(1-rho) with channel utilization, so bandwidth-heavy apps
        // (and their corunners) feel contention disproportionately.
        const double rho =
            dramUtilization(machine, profile, activeCores);
        const double dram_ns = machine.dramLatencyNs / (1.0 - rho);
        stall_ns = cache_cycles / machine.freqGhz +
            effectiveL3Mpki(machine, profile) / 1000.0 * dram_ns;
    }
    return core_cycles / machine.freqGhz + stall_ns;
}

core::RunResult
SimHarness::run(apps::App& app, const core::HarnessConfig& cfg)
{
    stats_ = MachineStats{};
    const uint64_t total = cfg.warmupRequests + cfg.measuredRequests;
    if (total == 0 || cfg.qps <= 0.0)
        return core::RunResult{};
    const unsigned cores = cfg.workerThreads == 0
        ? 1
        : cfg.workerThreads;

    // Per-run service scale: model draws are defined on the reference
    // machine (default config, one core); every request on this
    // machine costs that draw times the per-instruction cost ratio,
    // plus the generic SMP loss.
    const apps::AppProfile profile = app.profile();
    const double ref_ns = nsPerInstruction(MachineConfig{}, profile, 1);
    const double sim_ns = nsPerInstruction(machine_, profile, cores);
    const double scale = sim_ns / ref_ns *
        (1.0 + kSmpPenaltyPerCore * (cores - 1));

    const bool sleep_enabled = machine_.sleepEntryNs > 0.0 &&
        machine_.sleepWakeNs > 0.0;
    const double l3_mpki_eff = effectiveL3Mpki(machine_, profile);

    // Same generator structure (and Rng consumption order) as the
    // integrated harness — the shared core::ArrivalProcess seam — so
    // one seed means one request stream across harness
    // configurations; arrivals just live in virtual time.
    util::Rng rng(cfg.seed);
    const std::unique_ptr<core::ArrivalProcess> process =
        core::makeArrivalProcess(cfg.arrival, cfg.qps);
    process->reset(1000.0);

    // free_at[c]: virtual instant core c finishes its backlog. FCFS
    // central dispatch: each arrival goes to the earliest-free core,
    // so per-core run queues never idle while work waits.
    std::vector<double> free_at(cores, 0.0);
    std::vector<core::RequestTiming> timings;
    timings.reserve(cfg.measuredRequests);

    double instructions = 0.0;
    double cycles = 0.0;
    uint64_t wakeups = 0;
    for (uint64_t i = 0; i < total; i++) {
        const double arrival = process->nextArrivalNs(rng);
        const std::string payload = app.genRequest(rng);
        const apps::RequestCost cost = app.costFor(payload);
        const double service =
            static_cast<double>(cost.serviceNs) * scale;

        unsigned c = 0;
        for (unsigned k = 1; k < cores; k++) {
            if (free_at[k] < free_at[c])
                c = k;
        }
        double start = std::max(arrival, free_at[c]);
        bool woke = false;
        // Cores idle from virtual t=0; an idle gap of sleepEntryNs
        // puts the core into the deep state and the next request pays
        // the wake transition before service begins.
        if (sleep_enabled && start - free_at[c] >= machine_.sleepEntryNs) {
            start += machine_.sleepWakeNs;
            woke = true;
        }
        const double end = start + service;
        free_at[c] = end;

        if (i >= cfg.warmupRequests) {
            core::RequestTiming t;
            t.genNs = static_cast<int64_t>(arrival);
            t.startNs = static_cast<int64_t>(start);
            t.endNs = static_cast<int64_t>(end);
            timings.push_back(t);
            // Instruction count: the app's own model if it has one,
            // else the count the reference machine retires in the
            // model service time at the profile's per-instruction
            // cost — which keeps implied IPC (cycles/instructions)
            // consistent with the timing model for every app.
            instructions += cost.instructions > 0
                ? static_cast<double>(cost.instructions)
                : static_cast<double>(cost.serviceNs) / ref_ns;
            cycles += service * machine_.freqGhz;
            if (woke)
                wakeups++;
        }
    }

    stats_.instructions = static_cast<uint64_t>(instructions);
    stats_.cycles = static_cast<uint64_t>(cycles);
    const auto misses = [&](double mpki) {
        return static_cast<uint64_t>(instructions * mpki / 1000.0);
    };
    stats_.l1iMisses = misses(profile.l1iMpki);
    stats_.l1dMisses = misses(profile.l1dMpki);
    stats_.l2Misses = misses(profile.l2Mpki);
    stats_.l3Misses = misses(l3_mpki_eff);
    stats_.branchMisses = misses(profile.branchMpki);
    stats_.sleepWakeups = wakeups;

    // Shared result-building path (virtual time never lags its own
    // schedule, so the lag is identically zero).
    core::RunResult result =
        core::LoadClient::finalize(std::move(timings), cfg, 0);
    TB_LOG_DEBUG("sim run: app=%s offered=%.0f qps achieved=%.0f qps "
                 "cores=%u scale=%.3f p95=%.3f ms wakeups=%llu",
                 app.name().c_str(), cfg.qps, result.achievedQps, cores,
                 scale,
                 static_cast<double>(result.latency.sojourn.p95Ns) / 1e6,
                 static_cast<unsigned long long>(wakeups));
    return result;
}

}  // namespace tb::sim
