#ifndef TAILBENCH_UTIL_ARENA_H_
#define TAILBENCH_UTIL_ARENA_H_

/**
 * @file
 * Chunk-recycled payload arena + the PayloadRef handle the serving hot
 * path stores request payloads in.
 *
 * The problem being solved: every request that crosses the network
 * used to heap-allocate one std::string for its payload on the read
 * path, and that allocation sits squarely on the tail-latency-critical
 * path ("Deconstructing the Tail at Scale Effect" blames exactly this
 * class of per-request overhead). The arena replaces it with a bump
 * pointer into a recycled chunk:
 *
 *   chunk lifecycle (one producer thread, many consumers):
 *
 *     alloc ──▶ CURRENT ──store()──▶ payload refs handed out
 *                  │                     (live += 1 each)
 *                  │ full
 *                  ▼
 *               sealed (producer drops its hold: live -= 1)
 *                  │
 *                  │ last PayloadRef released (live hits 0)
 *                  ▼
 *               FREE LIST ──▶ reused as the next CURRENT
 *
 * The refcount trick: `live` starts at 1 — the *producer's own hold*
 * on the current chunk — and each stored payload adds 1. Sealing is
 * the producer releasing its hold. Whoever decrements `live` to zero
 * (the producer sealing an already-drained chunk, or the consumer
 * releasing the last payload of a sealed one) recycles it — an
 * exactly-once hand-off with no separate "sealed" flag to race on.
 *
 * Thread contract: store() (and the internal seal/refill) may be
 * called from ONE producer thread at a time — the per-reactor loop
 * thread in practice. PayloadRefs may be copied, moved and released
 * from any thread; releases synchronize on the chunk refcount
 * (acq_rel) and the free list is guarded by a real mutex
 * (TB_GUARDED_BY-checked). Cost: one locked free-list push per
 * *chunk*, amortized over the hundreds of payloads inside it.
 *
 * Lifetime: the arena must outlive every PayloadRef it issued. The
 * owners uphold this structurally — TcpServer::stop() joins the
 * service workers (destroying every queued Request) before the
 * reactor, and the reactor owns its arena.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"

namespace tb::util {

class PayloadArena;

namespace detail {

/** One arena chunk. `used` is touched only by the arena's producer
 * thread; `live` is the cross-thread refcount described above. */
struct ArenaChunk {
    PayloadArena* owner = nullptr;
    std::unique_ptr<char[]> buf;
    size_t cap = 0;
    size_t used = 0;                 // producer thread only
    std::atomic<uint64_t> live{0};   // producer hold + one per payload
};

}  // namespace detail

/**
 * A payload handle: either a view into an arena chunk (holding one
 * `live` reference) or an owning std::string fallback. The owning mode
 * keeps every non-arena producer — in-process transport, threads
 * backend, tests assigning string literals — working unchanged.
 */
class PayloadRef {
  public:
    PayloadRef() = default;

    /** Owning fallback (implicit: call sites assign std::string). */
    PayloadRef(std::string s) : owned_(std::move(s)) {}
    PayloadRef(const char* s) : owned_(s) {}

    PayloadRef(const PayloadRef& other) { copyFrom(other); }

    PayloadRef(PayloadRef&& other) noexcept
        : chunk_(other.chunk_), data_(other.data_), size_(other.size_),
          owned_(std::move(other.owned_))
    {
        other.chunk_ = nullptr;
        other.data_ = nullptr;
        other.size_ = 0;
    }

    PayloadRef&
    operator=(const PayloadRef& other)
    {
        if (this != &other) {
            release();
            copyFrom(other);
        }
        return *this;
    }

    PayloadRef&
    operator=(PayloadRef&& other) noexcept
    {
        if (this != &other) {
            release();
            chunk_ = other.chunk_;
            data_ = other.data_;
            size_ = other.size_;
            owned_ = std::move(other.owned_);
            other.chunk_ = nullptr;
            other.data_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }

    PayloadRef&
    operator=(std::string s)
    {
        release();
        chunk_ = nullptr;
        data_ = nullptr;
        size_ = 0;
        owned_ = std::move(s);
        return *this;
    }

    /** Disambiguates literal assignment (otherwise both the string
     * and the PayloadRef converting paths are viable). */
    PayloadRef&
    operator=(const char* s)
    {
        return *this = std::string(s);
    }

    ~PayloadRef() { release(); }

    /**
     * The payload bytes. In owning mode this reads through owned_
     * directly on every call — never a cached pointer, which a small-
     * string move would invalidate.
     */
    std::string_view
    view() const
    {
        if (chunk_ != nullptr)
            return {data_, size_};
        return owned_;
    }

    size_t
    size() const
    {
        return chunk_ != nullptr ? size_ : owned_.size();
    }

    bool empty() const { return size() == 0; }

    /** std::string-compatible fill-assign (drops any arena ref). */
    void
    assign(size_t n, char c)
    {
        release();
        chunk_ = nullptr;
        data_ = nullptr;
        size_ = 0;
        owned_.assign(n, c);
    }

    bool arenaBacked() const { return chunk_ != nullptr; }

  private:
    friend class PayloadArena;

    PayloadRef(detail::ArenaChunk* chunk, const char* data, size_t n)
        : chunk_(chunk), data_(data), size_(n)
    {
    }

    void
    copyFrom(const PayloadRef& other)
    {
        chunk_ = other.chunk_;
        data_ = other.data_;
        size_ = other.size_;
        if (chunk_ != nullptr) {
            // Copying from a live ref: live >= 1 is guaranteed by the
            // source, so a relaxed bump cannot race the zero-crossing.
            chunk_->live.fetch_add(1, std::memory_order_relaxed);
        } else {
            owned_ = other.owned_;
        }
    }

    void release();  // defined after PayloadArena (needs recycle)

    detail::ArenaChunk* chunk_ = nullptr;
    const char* data_ = nullptr;
    size_t size_ = 0;
    std::string owned_;
};

inline bool
operator==(const PayloadRef& a, const PayloadRef& b)
{
    return a.view() == b.view();
}
inline bool
operator==(const PayloadRef& a, const std::string& b)
{
    return a.view() == std::string_view(b);
}
inline bool
operator==(const std::string& a, const PayloadRef& b)
{
    return b == a;
}
inline bool
operator==(const PayloadRef& a, const char* b)
{
    return a.view() == std::string_view(b);
}
inline bool
operator==(const char* a, const PayloadRef& b)
{
    return b == a;
}

/**
 * The arena itself: bump allocation out of a current chunk, recycled
 * chunks on a mutex-guarded free list. See the file comment for the
 * lifecycle and thread contract.
 */
class PayloadArena {
  public:
    static constexpr size_t kDefaultChunkBytes = 64 * 1024;

    explicit PayloadArena(size_t chunkBytes = kDefaultChunkBytes);
    ~PayloadArena();

    PayloadArena(const PayloadArena&) = delete;
    PayloadArena& operator=(const PayloadArena&) = delete;

    /**
     * Copies @p data into the current chunk and returns a ref holding
     * it live. Producer thread only. Payloads larger than the chunk
     * size fall back to an owning PayloadRef (correct, just not
     * allocation-free — app request strings are tiny).
     */
    PayloadRef store(std::string_view data);

    /** Chunks ever allocated (steady state: stops growing once the
     * in-flight window fits the recycled set). */
    uint64_t chunksAllocated() const
    {
        return chunks_allocated_.load(std::memory_order_relaxed);
    }
    /** Times a drained chunk went back on the free list. */
    uint64_t chunkRecycles() const
    {
        return recycles_.load(std::memory_order_relaxed);
    }
    size_t chunkBytes() const { return chunk_bytes_; }

  private:
    friend class PayloadRef;

    /** Last-reference release path: push the drained chunk back on the
     * owner's free list. Any thread. */
    static void recycle(detail::ArenaChunk* c);

    detail::ArenaChunk* refill();  // producer thread only

    const size_t chunk_bytes_;
    detail::ArenaChunk* cur_ = nullptr;  // producer thread only

    util::Mutex mu_;
    std::vector<detail::ArenaChunk*> free_ TB_GUARDED_BY(mu_);

    std::atomic<uint64_t> chunks_allocated_{0};
    std::atomic<uint64_t> recycles_{0};
};

inline void
PayloadRef::release()
{
    if (chunk_ != nullptr) {
        // acq_rel: the release order makes our payload reads visible
        // to whoever recycles; the acquire side lets the recycler see
        // every released payload's effects before reusing the bytes.
        if (chunk_->live.fetch_sub(1, std::memory_order_acq_rel) == 1)
            PayloadArena::recycle(chunk_);
        chunk_ = nullptr;
    }
}

}  // namespace tb::util

#endif  // TAILBENCH_UTIL_ARENA_H_
