/**
 * @file
 * Reproduces Fig. 5: 95th-percentile latency vs. QPS for single-threaded
 * instances of each application, across the four setups — networked,
 * loopback, integrated (real time) and simulation (virtual time).
 *
 * Expected results (paper Sec. VI-B): the three real-system setups nearly
 * coincide for the six longer-request apps; for the short-request apps,
 * networked/loopback saturate earlier than integrated (paper: -23%
 * specjbb, -39% silo); simulation shows the same shape at a
 * constant-factor QPS offset. The driver prints the saturation deltas.
 *
 * Cells with a trailing "!" are points where the open-loop generator
 * (including the transport's per-request send cost) could not hold its
 * own schedule — the offered load was below the nominal rate, which for
 * the networked setup is exactly the saturation behavior Fig. 5 probes.
 */

#include <cstdio>
#include <map>

#include "bench/common.h"
#include "core/integrated_harness.h"
#include "net/server_harness.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 5: p95 vs. QPS across harness configurations (1 thread)");

    core::IntegratedHarness integrated;
    net::LoopbackHarness loopback;
    net::NetworkedHarness networked;
    sim::SimHarness simulation;
    core::Harness* configs[] = {&networked, &loopback, &integrated,
                                &simulation};

    for (const auto& name : apps::appNames()) {
        auto app = bench::makeBenchApp(name, s);
        const double sat =
            bench::calibrateSaturation(integrated, *app, 1, s);
        const uint64_t budget = bench::requestBudget(name, s);

        // Two cells per configuration: p95 sojourn and achieved
        // (completed) QPS, so where each setup saturates is visible in
        // the table itself — achieved falling short of offered is the
        // saturation signal the p95 column only implies.
        std::printf("\n%s (integrated sat ~ %.0f qps)\n", name.c_str(),
                    sat);
        std::printf("  %10s %12s %8s %12s %8s %12s %8s %12s %8s\n",
                    "qps", "networked", "ach", "loopback", "ach",
                    "integrated", "ach", "simulation", "ach");
        for (double f : bench::sweepFractions(s)) {
            const double qps = f * sat;
            std::printf("  %10.1f", qps);
            for (core::Harness* h : configs) {
                const core::RunResult r = bench::measureAt(
                    *h, *app, qps, 1, budget,
                    s.seed + static_cast<uint64_t>(f * 1000));
                std::printf(" %12s %8s",
                            bench::fmtP95Cell(r, qps).c_str(),
                            bench::fmtQpsCell(r, qps).c_str());
            }
            std::printf("\n");
        }

        // Saturation throughput per configuration (heavy overload).
        std::printf("  saturation qps:");
        std::map<std::string, double> sat_qps;
        for (core::Harness* h : configs) {
            const core::RunResult r = bench::measureAt(
                *h, *app, 2.5 * sat, 1,
                std::max<uint64_t>(200, budget / 2), s.seed + 99);
            sat_qps[h->configName()] = r.achievedQps;
            std::printf(" %s:%.0f", h->configName().c_str(),
                        r.achievedQps);
        }
        // Look configs up by their own configName() — a missing or
        // zero entry must skip the delta line, not divide by a
        // default-constructed 0.0.
        const auto it_int = sat_qps.find(integrated.configName());
        const auto it_net = sat_qps.find(networked.configName());
        if (it_int != sat_qps.end() && it_net != sat_qps.end() &&
            it_int->second > 0.0) {
            const double delta = 100.0 *
                (it_int->second - it_net->second) / it_int->second;
            std::printf("\n  networked-vs-integrated saturation delta: "
                        "%.0f%% (paper: 39%% silo, 23%% specjbb, small "
                        "otherwise)\n", delta);
        } else {
            std::printf("\n  networked-vs-integrated saturation delta: "
                        "n/a (config missing or zero throughput)\n");
        }
    }
    return 0;
}
