#ifndef TAILBENCH_NET_SERVER_HARNESS_H_
#define TAILBENCH_NET_SERVER_HARNESS_H_

/**
 * @file
 * The networked configurations (paper Sec. III-B): the same
 * LoadClient + ServiceLoop composition as the integrated harness,
 * with the in-process queue transport swapped for real TCP sockets.
 *
 *   LoopbackHarness   one persistent connection over 127.0.0.1; every
 *                     request pays kernel socket + framing costs but
 *                     connection setup is amortized over the run.
 *   NetworkedHarness  one connection *per request* (client-side RST
 *                     close, so ephemeral ports are not exhausted):
 *                     each request additionally pays connect/accept
 *                     and teardown, the per-request cost that makes
 *                     the short-request apps (silo, specjbb) saturate
 *                     visibly earlier than integrated (paper Fig. 5).
 *                     TAILBENCH_NET_HOST / TAILBENCH_NET_PORT point it
 *                     at an external tb_net_server; unset, it spawns
 *                     an in-process server on an ephemeral port.
 *
 * Timestamp ownership is unchanged: genNs from the client generator,
 * startNs/endNs from the service loop — but both socket transports
 * restamp endNs at client-side receipt, so the response path's wire
 * cost lands in sojourn. Client and server must share a clock (same
 * host) for the queueing/service decomposition to be meaningful;
 * sojourn is client-clock-only and valid either way.
 */

#include <poll.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/client.h"
#include "core/harness.h"
#include "core/service.h"
#include "core/transport.h"
#include "net/reactor.h"
#include "util/mutex.h"

namespace tb::net {

/**
 * TCP server running the shared core::ServiceLoop over framed
 * requests (net/wire.h). Accepts any number of connections; each may
 * carry one frame (NetworkedHarness) or a whole run's worth
 * (LoopbackHarness). A connection is closed by whichever side
 * finishes last: after the client's EOF, the last response written to
 * it triggers shutdown+close, which is what ends the client's
 * response stream.
 */
class TcpServer {
  public:
    /**
     * Binds and listens synchronously (port 0 = ephemeral, see
     * port()); start() spawns the accept loop, the connection readers
     * and the service workers. The harness-internal per-run servers
     * bind 127.0.0.1 only; pass loopbackOnly = false (tb_net_server)
     * to accept remote clients.
     *
     * @p portOpts selects the request-queue policy behind the workers
     * (core/sharded_port.h): the default is the single shared queue;
     * a sharded policy gives each worker its own shard, with requests
     * placed by connection serial (Request::ctx), so one connection's
     * stream stays on one worker. shards == 0 resolves to @p workers.
     * @p svcOpts additionally pins workers / bounds the pop batch.
     *
     * @p io selects the connection-IO backend (net/reactor.h): the
     * default spawns one reader thread per live connection (readers
     * grow elastically with the accepted-connection count, so the
     * thread cost of N persistent clients is N threads — the
     * baseline fig10 measures); kReactor serves every connection
     * from a fixed pool of epoll event loops instead. The harnesses
     * pass ioOptionsFromEnv(), so TAILBENCH_IO_MODE flips every
     * existing driver.
     */
    TcpServer(apps::App& app, unsigned workers, uint16_t port = 0,
              bool loopbackOnly = true,
              const core::PortOptions& portOpts = {},
              const core::ServiceOptions& svcOpts = {},
              const IoOptions& io = {});
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    bool listening() const { return listen_fd_ >= 0; }
    uint16_t port() const { return port_; }

    /** Effective service concurrency, for RunResult accounting. */
    unsigned workers() const;
    unsigned pinnedWorkers() const;

    IoMode ioMode() const { return io_.mode; }
    /** Event-loop threads actually running (0 under kThreads). */
    unsigned reactorCount() const;

    void start();
    /** Stops accepting, drains the request backlog, joins every
     * thread. Idempotent. */
    void stop();

  private:
    struct Conn;
    class Port;

    void acceptLoop();
    void readerLoop();
    void readConnection(const std::shared_ptr<Conn>& conn);
    void sendResponse(const core::Response& resp);
    /** Batched response path: contiguous same-connection runs leave
     * as one write (threads backend) or one reactor send. Empties
     * @p resps, keeping capacity. */
    void sendResponseBatch(std::vector<core::Response>& resps);
    void sendResponseRun(const core::Response* rs, size_t n);
    void closeConn(const std::shared_ptr<Conn>& conn);

    int listen_fd_ = -1;
    uint16_t port_ = 0;
    /** start()/stop() run on the owning (harness control) thread
     * only; started_ is never touched from a server thread. */
    bool started_ = false;
    IoOptions io_;
    std::atomic<uint64_t> next_serial_{1};

    std::unique_ptr<Port> port_obj_;
    std::unique_ptr<core::ServiceLoop> service_;
    /** Event-loop backend; null under kThreads. */
    std::unique_ptr<ReactorPool> reactor_pool_;
    std::thread accept_thread_;
    /** Reader pool. Grown only by the accept thread (elastic spawn)
     * after start() seeds it; stop() joins accept_thread_ first, so
     * its own iteration cannot race the growth — single-writer by
     * thread lifecycle, hence no TB_GUARDED_BY. */
    std::vector<std::thread> reader_threads_;
    /** Live accepted connections — the accept loop spawns a reader
     * whenever readers < live, so persistent connections (which pin
     * a reader each for their whole life) can never starve newly
     * accepted ones. */
    std::atomic<size_t> conns_live_{0};

    /** Accepted connections awaiting a reader. */
    core::BlockingQueue<std::shared_ptr<Conn>> pending_;

    util::Mutex conns_mu_;
    std::set<std::shared_ptr<Conn>> conns_ TB_GUARDED_BY(conns_mu_);
};

/** Client transport over one persistent connection (LoopbackHarness).
 * sendRequest writes a frame; recvResponse reads one and restamps
 * endNs at receipt; finishSend sends FIN via shutdown(SHUT_WR). */
class TcpClientTransport final : public core::Transport {
  public:
    TcpClientTransport(const std::string& host, uint16_t port);
    ~TcpClientTransport() override;

    bool connected() const { return fd_ >= 0; }

    void sendRequest(core::Request&& req) override;
    bool recvResponse(core::Response& out) override;
    void finishSend() override;

  private:
    int fd_ = -1;
};

/**
 * Client transport over N persistent connections (TailBench++-style
 * multi-client scaling): a single socket's frame serialization
 * saturates long before the server does, so sendRequest round-robins
 * requests across the connections and recvResponse multiplexes the
 * collection across all of them with poll, restamping endNs at
 * receipt. Pair the connection count with the server's worker count —
 * connection serials are the sharded port's placement key, so N
 * connections against N shards give every worker its own request
 * stream end to end.
 */
class MultiConnTcpTransport final : public core::Transport {
  public:
    MultiConnTcpTransport(const std::string& host, uint16_t port,
                          unsigned connections);
    ~MultiConnTcpTransport() override;

    /** True when every connection came up. */
    bool connected() const;

    void sendRequest(core::Request&& req) override;
    bool recvResponse(core::Response& out) override;
    void finishSend() override;

  private:
    std::vector<int> fds_;
    /** Per-connection liveness, shared between the two transport
     * threads: the collector clears a slot on EOF / poisoned stream,
     * the generator clears it on a write failure, and the round-robin
     * send skips dead slots so one retired connection does not
     * silently swallow 1/N of the offered load. Relaxed atomics —
     * liveness is advisory; a stale read only writes one more frame
     * to a dead socket, which fails the same graceful way. */
    std::unique_ptr<std::atomic<bool>[]> live_;
    /** Reused poll set and its fds_ index map — recvResponse runs
     * once per response on the latency hot path, so its scratch must
     * not allocate per call; collector-thread-only. */
    std::vector<struct pollfd> pfds_;
    std::vector<size_t> idx_;
    /** Generator-side round-robin cursor (generator-thread-only). */
    size_t rr_ = 0;
};

/**
 * Client transport paying full per-request connection costs
 * (NetworkedHarness): sendRequest opens a fresh connection, writes
 * the frame and FIN, and queues the socket; recvResponse polls the
 * outstanding sockets and reads whichever response is ready first —
 * restamping endNs at readiness, so one slow request cannot inflate
 * the measured sojourn of responses that completed behind it — then
 * RST-closes (SO_LINGER 0) so runs of tens of thousands of requests
 * do not exhaust ephemeral ports in TIME_WAIT.
 */
class PerRequestTcpTransport final : public core::Transport {
  public:
    PerRequestTcpTransport(const std::string& host, uint16_t port);

    void sendRequest(core::Request&& req) override;
    bool recvResponse(core::Response& out) override;
    void finishSend() override;

  private:
    std::string host_;
    uint16_t port_;
    core::BlockingQueue<int> inflight_;
    /** Sockets moved out of inflight_ and awaiting a readable
     * response; collector-thread-only, no lock. */
    std::vector<int> pending_;
};

/** Loopback configuration knobs (defaults reproduce the classic
 * single-connection, single-queue loopback harness). */
struct LoopbackOptions {
    /** Client connections: 1 = the classic persistent socket; 0 = one
     * per server worker (TailBench++-style multi-client load). */
    unsigned connections = 1;
    /** Server-side request-queue policy (shards == 0 resolves to the
     * run's worker count). */
    core::PortOptions port;
    /** True (default): the server's IO backend comes from
     * ioOptionsFromEnv() so TAILBENCH_IO_MODE flips this harness like
     * every other. False: use the programmatic `io` below — for
     * drivers that compare or pin backends (fig10's sweeps, fig11's
     * pinned reactor column) regardless of the environment. */
    bool useEnvIo = true;
    IoOptions io;
};

class LoopbackHarness final : public core::Harness {
  public:
    LoopbackHarness() = default;
    explicit LoopbackHarness(const LoopbackOptions& opts)
        : opts_(opts)
    {
    }

    core::RunResult run(apps::App& app,
                        const core::HarnessConfig& cfg) override;

    std::string configName() const override { return "loopback"; }

  private:
    LoopbackOptions opts_;
};

class NetworkedHarness final : public core::Harness {
  public:
    /** Reads TAILBENCH_NET_HOST / TAILBENCH_NET_PORT once. @p port
     * selects the spawned in-process server's queue policy (unused
     * against an external tb_net_server). */
    NetworkedHarness();
    explicit NetworkedHarness(const core::PortOptions& port);

    core::RunResult run(apps::App& app,
                        const core::HarnessConfig& cfg) override;

    std::string configName() const override { return "networked"; }

  private:
    std::string host_;
    uint16_t port_ = 0;  // 0 = spawn an in-process server per run
    core::PortOptions port_opts_;
};

/** Connects a TCP socket (TCP_NODELAY) to host:port; -1 on failure.
 * Exposed for the transports and tests. */
int connectTcp(const std::string& host, uint16_t port);

/** Strict port parse: returns the port for "1".."65535", else 0 with
 * a warning naming @p what — a silently truncated or zeroed port
 * would flip the harness into a different mode than the operator
 * asked for. */
uint16_t parsePort(const char* s, const char* what);

}  // namespace tb::net

#endif  // TAILBENCH_NET_SERVER_HARNESS_H_
