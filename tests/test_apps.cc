/** Unit tests: the app registry and the reproducibility / taxonomy
 * contract of the eight synthetic workloads. */

#include "apps/common/app.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

#include "tests/test_util.h"

using tb::apps::App;
using tb::apps::AppConfig;
using tb::apps::AppProfile;
using tb::apps::appNames;
using tb::apps::makeApp;
using tb::util::percentileOf;
using tb::util::Rng;

namespace {

/** Model service-time samples over a seeded request stream. */
std::vector<int64_t>
sampleServiceTimes(const std::string& name, uint64_t seed, int n)
{
    auto app = makeApp(name);
    AppConfig cfg;
    cfg.seed = seed;
    cfg.sizeFactor = 0.05;
    app->init(cfg);
    Rng rng(seed);
    std::vector<int64_t> svc;
    svc.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; i++)
        svc.push_back(app->serviceNsFor(app->genRequest(rng)));
    return svc;
}

}  // namespace

int
main()
{
    // Registry: all eight workloads, Table I order, unique.
    const std::vector<std::string>& names = appNames();
    CHECK_EQ(names.size(), static_cast<size_t>(8));
    const std::set<std::string> unique(names.begin(), names.end());
    CHECK_EQ(unique.size(), static_cast<size_t>(8));
    for (const char* expected :
         {"xapian", "masstree", "moses", "sphinx", "img-dnn", "specjbb",
          "silo", "shore"})
        CHECK(unique.count(expected) == 1);

    // Unknown name throws.
    bool threw = false;
    try {
        makeApp("memcached");
    } catch (const std::invalid_argument&) {
        threw = true;
    }
    CHECK(threw);

    // Per-app: init + genRequest + process smoke, nonzero profile,
    // deterministic service model.
    for (const std::string& name : names) {
        auto app = makeApp(name);
        CHECK(app->name() == name);
        AppConfig cfg;
        cfg.seed = 42;
        cfg.sizeFactor = 0.05;
        app->init(cfg);

        const AppProfile p = app->profile();
        CHECK(p.meanServiceUs > 0.0);
        CHECK(p.l1dMpki > 0.0);

        Rng rng(1);
        const std::string req = app->genRequest(rng);
        CHECK(!req.empty());
        // serviceNsFor is a pure function of (payload, seed).
        CHECK_EQ(app->serviceNsFor(req), app->serviceNsFor(req));
        CHECK(app->serviceNsFor(req) >= 500);

        // process() with pacing off still does work and terminates.
        app->setRealtimeIo(false);
        app->process(req);
    }

    // Reproducibility: same TAILBENCH_SEED => identical p95 (and
    // whole distribution) across two independent instantiations.
    for (const std::string& name : names) {
        const std::vector<int64_t> run1 =
            sampleServiceTimes(name, 42, 2000);
        const std::vector<int64_t> run2 =
            sampleServiceTimes(name, 42, 2000);
        CHECK(run1 == run2);
        CHECK_EQ(percentileOf(run1, 95.0), percentileOf(run2, 95.0));
        // A different seed draws a different sample set.
        const std::vector<int64_t> other =
            sampleServiceTimes(name, 43, 2000);
        CHECK(run1 != other);
    }

    // Distinct distributions across apps: every pair differs by >5%
    // at the median or at the tail (apps with different shapes can
    // still cross at one quantile).
    std::vector<std::pair<double, double>> quantiles;
    for (const std::string& name : names) {
        const std::vector<int64_t> svc =
            sampleServiceTimes(name, 42, 2000);
        quantiles.emplace_back(
            static_cast<double>(percentileOf(svc, 50.0)),
            static_cast<double>(percentileOf(svc, 95.0)));
    }
    for (size_t i = 0; i < quantiles.size(); i++)
        for (size_t j = i + 1; j < quantiles.size(); j++) {
            const double d50 =
                std::abs(quantiles[i].first - quantiles[j].first) /
                std::max(quantiles[i].first, quantiles[j].first);
            const double d95 =
                std::abs(quantiles[i].second - quantiles[j].second) /
                std::max(quantiles[i].second, quantiles[j].second);
            CHECK(d50 > 0.05 || d95 > 0.05);
        }

    // Taxonomy spot checks (Table I shapes) on dispersion p99/p5:
    // near-constant apps tight, search/translation wide, sphinx
    // slowest overall.
    auto spread = [](const std::string& name) {
        const std::vector<int64_t> svc =
            sampleServiceTimes(name, 42, 4000);
        return static_cast<double>(percentileOf(svc, 99.0)) /
            static_cast<double>(std::max<int64_t>(
                1, percentileOf(svc, 5.0)));
    };
    CHECK(spread("img-dnn") < 2.0);
    CHECK(spread("masstree") < 2.0);
    CHECK(spread("xapian") > 4.0);
    CHECK(spread("moses") > 4.0);
    CHECK(spread("sphinx") > 4.0);
    auto mean_of = [](const std::string& name) {
        return tb::util::meanOf(sampleServiceTimes(name, 42, 2000));
    };
    const double sphinx_mean = mean_of("sphinx");
    for (const std::string& name : names)
        if (name != "sphinx")
            CHECK(sphinx_mean > mean_of(name));

    return TEST_MAIN_RESULT();
}
