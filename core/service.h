#ifndef TAILBENCH_CORE_SERVICE_H_
#define TAILBENCH_CORE_SERVICE_H_

/**
 * @file
 * The server-side request loop shared by every real-time
 * configuration: N worker threads, each running
 *
 *   while (port.recvReqBatch(batch, batchMax)):
 *       for req in batch:
 *           start = now; checksum = app.process(req); end = now
 *           port.sendResp({id, checksum, {genNs, start, end}})
 *
 * The batch form degrades to the scalar recvReq path for ports that
 * do not override it (the default recvReqBatch is one recvReq), so
 * the single-queue baseline keeps its original per-request pop while
 * the sharded port amortizes wakes at load.
 *
 * The loop owns the service-side timestamps (startNs / endNs around
 * App::process, one monotonic clock) and nothing else — warmup
 * filtering and statistics belong to the client, which is what lets
 * the same loop serve the in-process queue and a TCP socket
 * unchanged.
 */

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "apps/common/app.h"
#include "core/transport.h"

namespace tb::core {

struct ServiceOptions {
    /**
     * Pin worker w to the w-th CPU of the process's allowed affinity
     * mask, so shard-per-worker measurements are not confounded by OS
     * thread migration. Best-effort (Linux only);
     * RunResult::pinnedWorkers records how many workers the pin
     * actually took on.
     */
    bool pinWorkers = false;
    /**
     * Send each recvReqBatch's responses through one sendRespBatch
     * call (the coalesced path: one queue hand-off / socket write /
     * wake per run). Off = the legacy per-response sendResp, kept
     * selectable so microbench_hotpath can measure the per-frame
     * cost it replaced. Latency note: a batch's responses are sent
     * after its last request is processed, but off saturation
     * batches are almost always size 1, so equal-load percentiles
     * are unaffected (fig10 guards this).
     */
    bool batchResponses = true;
};

class ServiceLoop {
  public:
    /** Does not start any thread; call start(). @p port and @p app
     * must outlive the loop. */
    ServiceLoop(ServerPort& port, apps::App& app, unsigned workers,
                const ServiceOptions& opts = {});
    ~ServiceLoop();

    ServiceLoop(const ServiceLoop&) = delete;
    ServiceLoop& operator=(const ServiceLoop&) = delete;

    /** Spawns the worker threads. */
    void start();

    /** Joins all workers. Workers exit when recvReq returns false; the
     * last one out calls port.closeResponses(), so by construction the
     * client's response stream ends only after every response was
     * sent. */
    void join();

    /** Worker threads this loop runs (the effective concurrency). */
    unsigned workers() const { return workers_; }

    /** Workers whose CPU pin succeeded (0 unless opts.pinWorkers;
     * stable after join()). */
    unsigned pinnedWorkers() const { return pinned_.load(); }

  private:
    void workerBody(unsigned worker);

    /**
     * Worker-pool lifecycle invariants (no mutex by design, so
     * nothing here is TB_GUARDED_BY — the checked locking lives in
     * the port the workers block on):
     *
     *   threads_   owner-thread-only: written by start() and join(),
     *              both called from the thread that owns the loop,
     *              never from a worker (workerBody does not touch
     *              it). start()-before-join() ordering is the
     *              caller's contract.
     *   active_    the live-worker count, decremented by each worker
     *              on exit; the 1 -> 0 transition elects exactly one
     *              worker to call port_.closeResponses(), which is
     *              why the client's response stream cannot end before
     *              the last response was sent.
     *   pinned_    incremented once per worker whose CPU pin took;
     *              stable after join().
     */
    ServerPort& port_;
    apps::App& app_;
    const unsigned workers_;
    const ServiceOptions opts_;
    std::atomic<unsigned> active_{0};
    std::atomic<unsigned> pinned_{0};
    std::vector<std::thread> threads_;
};

}  // namespace tb::core

#endif  // TAILBENCH_CORE_SERVICE_H_
