/**
 * @file
 * ServerPort scaling: saturation throughput and p95 across
 * worker count x request-queue policy x transport.
 *
 *   queue policy   single (one shared queue — the baseline), sharded
 *                  (per-worker shards, batched pop), sharded+steal
 *   transport      in-process (IntegratedHarness), multi-connection
 *                  loopback (one persistent connection per server
 *                  worker, TailBench++-style), per-request-connection
 *                  networked (the costliest baseline)
 *
 * Expected shape: with one worker the three policies coincide (one
 * shard IS a single queue); as workers grow, the shared queue's
 * lock/wake contention caps throughput while the sharded port keeps
 * scaling, with stealing recovering the imbalance that round-robin /
 * connection-affine placement leaves behind. On the client side, the
 * multi-connection transport exists to offer enough load to expose
 * the difference — a single socket's frame serialization saturates
 * before a multi-worker server does.
 *
 * Cells: saturation (achieved QPS under deliberate overload) and p95
 * sojourn at 70% of it. "!"-annotated cells mark generator lag
 * (offered load silently below nominal — for the per-request
 * transport at high QPS that is itself the finding).
 *
 * TAILBENCH_PIN_WORKERS pins worker w to CPU w so shard-per-worker
 * numbers are not confounded by OS migration; the header line reports
 * the pinned count actually achieved (RunResult::pinnedWorkers).
 *
 * Besides the table, the run writes BENCH_fig9.json (run config, git
 * rev, per-cell saturation and 70%-load percentiles) into the working
 * directory for machine-readable perf tracking.
 */

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/integrated_harness.h"
#include "net/server_harness.h"
#include "util/env.h"
#include "util/logging.h"

using namespace tb;

namespace {

const core::QueuePolicy kPolicies[] = {
    core::QueuePolicy::kSingleQueue,
    core::QueuePolicy::kSharded,
    core::QueuePolicy::kShardedSteal,
};

/** The per-request transport is dropped when TAILBENCH_NET_PORT
 * points at an external server: NetworkedHarness then ignores the
 * queue-policy options entirely (the external server's policy is
 * fixed at its launch), so the three "policy" columns would be three
 * noisy measurements of one identical configuration and the
 * sharded-vs-single delta line would report host noise as a policy
 * effect. */
std::vector<std::string>
transportsForEnv()
{
    std::vector<std::string> t = {"in-process", "loopback-mc"};
    // Same validation as NetworkedHarness (both go through
    // util::envPort): an invalid port value makes it self-serve
    // in-process (policy fully honored), so only a *usable* external
    // port disables the sweep.
    if (util::envPort("TAILBENCH_NET_PORT") == 0)
        t.push_back("per-request");
    else
        TB_LOG_WARN(
            "fig9: TAILBENCH_NET_PORT is set — skipping the "
            "per-request transport (an external server's queue "
            "policy cannot be swept from here)");
    return t;
}

std::unique_ptr<core::Harness>
makeHarness(const std::string& transport, core::QueuePolicy policy)
{
    core::PortOptions popts;
    popts.policy = policy;
    if (transport == "in-process")
        return std::make_unique<core::IntegratedHarness>(popts);
    if (transport == "loopback-mc") {
        net::LoopbackOptions lopts;
        lopts.connections = 0;  // one per server worker
        lopts.port = popts;
        return std::make_unique<net::LoopbackHarness>(lopts);
    }
    return std::make_unique<net::NetworkedHarness>(popts);
}

struct Cell {
    std::string app;
    std::string transport;
    std::string policy;
    unsigned workers = 0;
    double satQps = 0.0;
    double offeredQps = 0.0;
    core::RunResult at70;
};

}  // namespace

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 9: ServerPort scaling — workers x queue policy x "
        "transport");
    const std::vector<std::string> transports = transportsForEnv();

    const std::vector<std::string> app_names = s.fast
        ? std::vector<std::string>{"silo"}
        : std::vector<std::string>{"silo", "img-dnn"};
    const std::vector<unsigned> worker_counts =
        s.fast ? std::vector<unsigned>{1, 4}
               : std::vector<unsigned>{1, 2, 4};

    std::vector<Cell> cells;
    for (const auto& name : app_names) {
        auto app = bench::makeBenchApp(name, s);
        const uint64_t budget = bench::requestBudget(name, s);
        // sat[transport][policy][workers], for the summary lines.
        std::map<std::string,
                 std::map<core::QueuePolicy, std::map<unsigned, double>>>
            sat;

        for (const std::string& transport : transports) {
            std::printf("\n%s — %s transport%s\n", name.c_str(),
                        transport.c_str(),
                        s.pinWorkers ? " (workers pinned)" : "");
            std::printf("  %7s", "workers");
            for (core::QueuePolicy p : kPolicies)
                std::printf(" %13s:sat %10s",
                            core::queuePolicyName(p), "p95@70%");
            std::printf("\n");

            for (unsigned w : worker_counts) {
                std::printf("  %7u", w);
                for (core::QueuePolicy p : kPolicies) {
                    auto harness = makeHarness(transport, p);
                    const double cap = bench::calibrateSaturation(
                        *harness, *app, w, s, s.pinWorkers);
                    sat[transport][p][w] = cap;
                    const double qps = 0.7 * cap;
                    const core::RunResult r = bench::measureAt(
                        *harness, *app, qps, w, budget,
                        s.seed + w * 17, /*keep_samples=*/false,
                        s.pinWorkers);
                    std::printf(" %17.0f %10s", cap,
                                bench::fmtP95Cell(r, qps).c_str());
                    Cell cell;
                    cell.app = name;
                    cell.transport = transport;
                    cell.policy = core::queuePolicyName(p);
                    cell.workers = w;
                    cell.satQps = cap;
                    cell.offeredQps = qps;
                    cell.at70 = r;
                    cells.push_back(std::move(cell));
                }
                std::printf("\n");
            }
        }

        // The tentpole claim, printed per transport: at the highest
        // worker count, sharding the port should not cost throughput
        // versus the shared queue, and past a single socket's limits
        // it should win.
        const unsigned wmax = worker_counts.back();
        std::printf("\n  sharded-vs-single saturation delta @%u "
                    "workers:",
                    wmax);
        for (const std::string& transport : transports) {
            const double single =
                sat[transport][core::QueuePolicy::kSingleQueue][wmax];
            const double sharded =
                sat[transport][core::QueuePolicy::kSharded][wmax];
            const double steal =
                sat[transport]
                   [core::QueuePolicy::kShardedSteal][wmax];
            if (single > 0.0)
                std::printf(" %s %+.0f%% (steal %+.0f%%)",
                            transport.c_str(),
                            100.0 * (sharded - single) / single,
                            100.0 * (steal - single) / single);
            else
                std::printf(" %s n/a", transport.c_str());
        }
        std::printf("\n");
    }

    // Machine-readable report, same shape as BENCH_fig10.json.
    bench::JsonWriter json;
    json.beginObject();
    json.str("figure", "fig9_port_scaling");
    json.str("git_rev", bench::gitRevision());
    json.beginObject("config");
    json.num("size_factor", s.sizeFactor);
    json.num("seed", static_cast<double>(s.seed));
    json.boolean("fast", s.fast);
    json.boolean("pin_workers", s.pinWorkers);
    json.endObject();
    json.beginArray("points");
    for (const Cell& c : cells) {
        json.beginObject();
        json.str("app", c.app);
        json.str("transport", c.transport);
        json.str("policy", c.policy);
        json.num("workers", c.workers);
        json.num("saturation_qps", c.satQps);
        json.num("offered_qps", c.offeredQps);
        json.num("achieved_qps", c.at70.achievedQps);
        json.num("p50_ns",
                 static_cast<double>(c.at70.latency.sojourn.p50Ns));
        json.num("p95_ns",
                 static_cast<double>(c.at70.latency.sojourn.p95Ns));
        json.num("p99_ns",
                 static_cast<double>(c.at70.latency.sojourn.p99Ns));
        json.boolean("gen_lagged",
                     bench::genLagInvalidates(c.at70, c.offeredQps));
        json.endObject();
    }
    json.endArray();
    json.endObject();
    if (bench::writeTextFile("BENCH_fig9.json", json.text()))
        std::printf("\n  wrote BENCH_fig9.json\n");
    return 0;
}
