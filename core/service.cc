#include "core/service.h"

#include "util/clock.h"

namespace tb::core {

ServiceLoop::ServiceLoop(ServerPort& port, apps::App& app,
                         unsigned workers)
    : port_(port), app_(app), workers_(workers == 0 ? 1 : workers)
{
}

ServiceLoop::~ServiceLoop()
{
    join();
}

void
ServiceLoop::start()
{
    active_ = workers_;
    threads_.reserve(workers_);
    for (unsigned w = 0; w < workers_; w++)
        threads_.emplace_back([this] { workerBody(); });
}

void
ServiceLoop::join()
{
    for (std::thread& t : threads_) {
        if (t.joinable())
            t.join();
    }
    threads_.clear();
}

void
ServiceLoop::workerBody()
{
    Request req;
    while (port_.recvReq(req)) {
        const int64_t start = util::monotonicNs();
        const uint64_t checksum = app_.process(req.payload);
        const int64_t end = util::monotonicNs();
        Response resp;
        resp.id = req.id;
        resp.checksum = checksum;
        resp.timing.genNs = req.genNs;
        resp.timing.startNs = start;
        resp.timing.endNs = end;
        resp.ctx = req.ctx;
        port_.sendResp(std::move(resp));
    }
    if (active_.fetch_sub(1) == 1)
        port_.closeResponses();
}

}  // namespace tb::core
