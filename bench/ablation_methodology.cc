/**
 * @file
 * Methodology ablations: why the harness is built the way it is
 * (paper Secs. II-B and IV). Two experiments:
 *
 * 1. OPEN vs CLOSED loop. CloudSuite-style load testers (YCSB, Faban) use
 *    a closed loop: "a few client threads issue requests and block
 *    waiting for responses", which throttles arrivals when the server
 *    slows down — the coordinated-omission problem. We drive the same
 *    application both ways at the same *achieved* throughput and show the
 *    closed loop reports a far smaller tail.
 *
 * 2. HDR histogram precision. The collector's histogram must stay within
 *    ~1% of exact sample percentiles (paper Sec. IV-C); we measure the
 *    actual error on real run data.
 */

#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/integrated_harness.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/stats.h"

using namespace tb;

namespace {

/** Closed-loop driver: K clients, each issues-then-waits, as YCSB does. */
struct ClosedLoopResult {
    double achievedQps;
    double p95Ns;
    double p99Ns;
};

ClosedLoopResult
runClosedLoop(apps::App& app, unsigned clients, uint64_t per_client,
              uint64_t seed)
{
    std::vector<std::thread> threads;
    std::vector<int64_t> latencies;
    std::mutex mu;
    const int64_t t0 = util::monotonicNs();
    for (unsigned c = 0; c < clients; c++) {
        threads.emplace_back([&, c] {
            util::Rng rng(seed + c);
            std::vector<int64_t> local;
            for (uint64_t i = 0; i < per_client; i++) {
                const std::string req = app.genRequest(rng);
                const int64_t start = util::monotonicNs();
                app.process(req);
                local.push_back(util::monotonicNs() - start);
            }
            std::lock_guard<std::mutex> lk(mu);
            latencies.insert(latencies.end(), local.begin(),
                             local.end());
        });
    }
    for (auto& t : threads)
        t.join();
    const int64_t span = util::monotonicNs() - t0;
    ClosedLoopResult r;
    r.achievedQps = static_cast<double>(latencies.size()) * 1e9 /
        static_cast<double>(span);
    r.p95Ns = static_cast<double>(util::percentileOf(latencies, 95.0));
    r.p99Ns = static_cast<double>(util::percentileOf(latencies, 99.0));
    return r;
}

}  // namespace

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();

    bench::printHeader(
        "Ablation 1: closed-loop vs open-loop tail latency (img-dnn)");
    auto app = bench::makeBenchApp("img-dnn", s);

    // Closed loop with one in-flight request per client: the client
    // never observes queueing it causes — it cannot, by construction.
    const uint64_t n = s.fast ? 150 : 400;
    const ClosedLoopResult closed = runClosedLoop(*app, 1, n, s.seed);

    // Open loop at the same achieved throughput.
    core::IntegratedHarness h;
    const core::RunResult open = bench::measureAt(
        h, *app, 0.9 * closed.achievedQps, 1, n, s.seed);

    std::printf("%-28s %10s %10s %10s\n", "load tester", "qps",
                "p95_ms", "p99_ms");
    std::printf("%-28s %10.0f %10.3f %10.3f\n",
                "closed loop (YCSB-style)", closed.achievedQps,
                closed.p95Ns / 1e6, closed.p99Ns / 1e6);
    std::printf("%-28s %10.0f %10.3f %10.3f\n",
                "open loop (TailBench)", open.achievedQps,
                static_cast<double>(open.latency.sojourn.p95Ns) / 1e6,
                static_cast<double>(open.latency.sojourn.p99Ns) / 1e6);
    const double ratio =
        static_cast<double>(open.latency.sojourn.p95Ns) / closed.p95Ns;
    std::printf("open/closed p95 ratio at ~equal throughput: %.1fx "
                "(closed loops hide queueing; paper Sec. II-B)\n",
                ratio);

    bench::printHeader(
        "Ablation 2: HDR histogram precision vs exact percentiles");
    const core::RunResult r = bench::measureAt(
        h, *app, 0.5 * closed.achievedQps, 1, s.fast ? 400 : 2000,
        s.seed, true);
    std::vector<int64_t> exact;
    util::HdrHistogram hist;
    for (const auto& t : r.samples) {
        exact.push_back(t.sojournNs());
        hist.record(static_cast<uint64_t>(std::max<int64_t>(
            1, t.sojournNs())));
    }
    std::printf("%8s %14s %14s %8s\n", "pct", "exact_ms", "hdr_ms",
                "err%%");
    for (double pct : {50.0, 90.0, 95.0, 99.0}) {
        const double ex =
            static_cast<double>(util::percentileOf(exact, pct));
        const double hd = static_cast<double>(hist.percentile(pct));
        std::printf("%8.1f %14.3f %14.3f %8.2f\n", pct, ex / 1e6,
                    hd / 1e6, 100.0 * std::abs(hd - ex) / ex);
    }
    std::printf("(bound: ~1.2%% worst-case representation error at 100 "
                "sub-buckets/decade)\n");
    return 0;
}
