#ifndef TAILBENCH_SIM_CACHE_H_
#define TAILBENCH_SIM_CACHE_H_

/**
 * @file
 * Structural cache-hierarchy simulator: real set-associative tag
 * arrays, so misses come from capacity, conflict, replacement, and
 * inclusion — not from a formula.
 *
 * Layout (per Table II, Xeon E5-2670 class):
 *
 *      stream 0                 stream 1..N-1 (future corunners)
 *   +------+------+             +------+------+
 *   | L1I  | L1D  |  32 KB 8w   | L1I  | L1D  |
 *   +------+------+             +------+------+
 *   |  unified L2 |  256 KB 8w  |  unified L2 |
 *   +-------------+             +-------------+
 *          \                           /
 *           +------ shared L3 --------+   llcMb, 16-way, DRRIP,
 *           |  inclusive of all above |   inclusion victims
 *           +------------------------+    back-invalidated
 *
 * Every stream has private L1I/L1D/L2 tag arrays; the L3 is shared
 * and indexed by address bits only, so lines from different streams
 * land in (and fight over) the same sets — the structural basis for
 * corunner LLC contention. The L3 is inclusive: evicting an L3 line
 * invalidates it from the owning stream's private levels.
 *
 * Replacement: LRU in the private levels; DRRIP in the L3 (2-bit
 * RRPV, SRRIP/BRRIP set dueling with a 10-bit PSEL). All state
 * transitions are deterministic (BRRIP's occasional near-insert uses
 * a counter, not a coin), so a fixed access sequence yields bit-equal
 * counters run after run.
 *
 * MachineConfig coupling: the structural pass reads ONLY llcMb (L3
 * ways and sets derive from it; see HierarchyConfig::fromMachine).
 * The hit latencies, DRAM parameters, freqGhz, idealMemory, and the
 * sleep/corunner knobs belong to the *timing* model (sim_harness) and
 * are unused here — this layer counts events; the timing model prices
 * them.
 */

#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace tb::sim {

inline constexpr uint32_t kCacheLineBytes = 64;

enum class ReplPolicy { kLru, kSrrip, kBrrip, kDrrip };

enum class AccessKind { kIfetch, kData };

struct LevelCounters {
    uint64_t accesses = 0;
    uint64_t misses = 0;
};

struct CacheGeometry {
    uint32_t sets = 1;
    uint32_t ways = 1;
    uint32_t lines() const { return sets * ways; }
};

/**
 * One set-associative tag array. Keys are 64-bit line identifiers:
 * bits [0,56) the line address (byte address >> 6), bits [56,64) the
 * stream id. The set index uses only the address bits, so different
 * streams' lines contend for the same sets; the full key is the tag,
 * so they never alias.
 */
class SetAssocCache {
  public:
    SetAssocCache(const CacheGeometry& geo, ReplPolicy policy);

    /**
     * Probes for @p key, updating replacement state and counters.
     * Returns true on hit. On a miss the caller decides whether to
     * insert() (demand fill) — lookup itself allocates nothing.
     */
    bool lookup(uint64_t key);

    /**
     * Fills @p key (which must not be resident). If a valid line had
     * to be evicted, writes it to @p evicted and returns true.
     */
    bool insert(uint64_t key, uint64_t* evicted);

    /** Drops @p key if resident (inclusion back-invalidation).
     * Returns true when a line was actually invalidated. */
    bool invalidate(uint64_t key);

    /** Residency probe with no side effects (tests). */
    bool contains(uint64_t key) const;

    const LevelCounters& counters() const { return counters_; }
    void resetCounters() { counters_ = LevelCounters{}; }

    uint32_t sets() const { return geo_.sets; }
    uint32_t ways() const { return geo_.ways; }

  private:
    struct Line {
        uint64_t key = 0;
        bool valid = false;
        uint8_t rrpv = 0;
        uint64_t lruTick = 0;
    };

    uint32_t setOf(uint64_t key) const;
    Line* find(uint64_t key);
    ReplPolicy setPolicy(uint32_t set) const;
    uint32_t victimWay(uint32_t set, ReplPolicy policy);

    CacheGeometry geo_;
    ReplPolicy policy_;
    std::vector<Line> lines_;
    LevelCounters counters_;
    uint64_t tick_ = 0;
    /** Deterministic stand-in for BRRIP's 1/32 coin. */
    uint32_t brripCtr_ = 0;
    /** DRRIP set-dueling selector; >= midpoint means BRRIP is losing
     * fewer leader-set misses and followers use SRRIP. */
    int32_t psel_;
};

/** Geometry of the whole hierarchy; tests build toy configs directly,
 * production code derives from MachineConfig. */
struct HierarchyConfig {
    CacheGeometry l1i{64, 8};    // 32 KB
    CacheGeometry l1d{64, 8};    // 32 KB
    CacheGeometry l2{512, 8};    // 256 KB unified
    CacheGeometry l3{20480, 16}; // llcMb, shared, inclusive
    ReplPolicy l3Policy = ReplPolicy::kDrrip;

    /** L3 ways fixed at 16 (the E5-2670's organization); sets derive
     * from llcMb — the only MachineConfig field this layer reads. */
    static HierarchyConfig fromMachine(const MachineConfig& m);
};

/**
 * Split L1I/L1D + unified L2 per stream, one shared inclusive L3.
 * access() walks the hierarchy top-down, fills every level on the
 * way back, and returns the level that served the request
 * (1 = L1, 2 = L2, 3 = L3, 4 = memory).
 */
class CacheHierarchy {
  public:
    explicit CacheHierarchy(const HierarchyConfig& cfg,
                            unsigned streams = 1);
    explicit CacheHierarchy(const MachineConfig& m,
                            unsigned streams = 1)
        : CacheHierarchy(HierarchyConfig::fromMachine(m), streams)
    {
    }

    int access(uint64_t addr, AccessKind kind, unsigned stream = 0);

    const LevelCounters& l1i(unsigned stream = 0) const
    {
        return streams_[stream].l1i.counters();
    }
    const LevelCounters& l1d(unsigned stream = 0) const
    {
        return streams_[stream].l1d.counters();
    }
    const LevelCounters& l2(unsigned stream = 0) const
    {
        return streams_[stream].l2.counters();
    }
    const LevelCounters& l3() const { return l3_.counters(); }

    /** Inclusion victims actually found (and dropped) in a private
     * level when their L3 line was evicted. */
    uint64_t backInvalidations() const { return back_invals_; }

    unsigned streams() const
    {
        return static_cast<unsigned>(streams_.size());
    }

    void resetCounters();

    /** Line key for (byte address, stream) — exposed for tests. */
    static uint64_t lineKey(uint64_t addr, unsigned stream);

  private:
    struct PerStream {
        SetAssocCache l1i;
        SetAssocCache l1d;
        SetAssocCache l2;
    };

    std::vector<PerStream> streams_;
    SetAssocCache l3_;
    uint64_t back_invals_ = 0;
};

}  // namespace tb::sim

#endif  // TAILBENCH_SIM_CACHE_H_
