#ifndef TAILBENCH_SIM_MACHINE_H_
#define TAILBENCH_SIM_MACHINE_H_

/**
 * @file
 * Simulated machine description, mirroring the paper's Table II
 * (8-core Xeon E5-2670 class, 20 MB LLC, DDR3-1333).
 *
 * This header carries only the configuration contract today; the
 * virtual-time SimHarness that consumes it (timing model, cache
 * hierarchy, sleep states, corunner interference) is a ROADMAP item.
 * Keeping the struct here lets table2_sysconfig and the sim-dependent
 * drivers compile against a stable interface.
 */

#include <cstdint>

namespace tb::sim {

struct MachineConfig {
    /** Core clock; 2.4 GHz nominal (DVFS sweeps override). */
    double freqGhz = 2.4;

    // Cache hierarchy (hit latencies in core cycles; L1 hits are
    // folded into the base CPI).
    double l2HitCycles = 12.0;
    double l3HitCycles = 30.0;
    double llcMb = 20.0;

    // DRAM: DDR3-1333, two channels.
    double dramLatencyNs = 70.0;
    double dramPeakGBs = 21.3;

    double branchPenaltyCycles = 17.0;

    /** Zero-latency, infinite-bandwidth memory (Fig. 8 case study). */
    bool idealMemory = false;

    /** Batch corunners contending for LLC and DRAM bandwidth. */
    unsigned batchCorunners = 0;

    /** Deep-sleep model: enter after idling sleepEntryNs; pay
     * sleepWakeNs on the next request. 0 disables. */
    double sleepEntryNs = 0.0;
    double sleepWakeNs = 0.0;
};

/** Counters the timing simulator accumulates per run. Defined with
 * the config so drivers share one vocabulary; populated by the future
 * SimHarness. */
struct MachineStats {
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t l1iMisses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t l3Misses = 0;
    uint64_t branchMisses = 0;
    uint64_t sleepWakeups = 0;

    double
    mpki(uint64_t misses) const
    {
        return instructions == 0
            ? 0.0
            : static_cast<double>(misses) * 1000.0 /
                static_cast<double>(instructions);
    }
};

}  // namespace tb::sim

#endif  // TAILBENCH_SIM_MACHINE_H_
