#ifndef TAILBENCH_CORE_REQUEST_QUEUE_H_
#define TAILBENCH_CORE_REQUEST_QUEUE_H_

/**
 * @file
 * The unbounded MPMC request queue between the load generator and the
 * worker threads.
 *
 * Unbounded on purpose: a bounded queue would push back on the
 * generator and reintroduce the closed-loop coordination the open-loop
 * methodology exists to avoid. Memory is bounded in practice by run
 * length (measuredRequests).
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace tb::core {

/** One in-flight request. genNs is the scheduled generation time —
 * assigned by the open-loop generator before the push, never after. */
struct Request {
    uint64_t id = 0;
    std::string payload;
    int64_t genNs = 0;
};

class RequestQueue {
  public:
    RequestQueue() = default;
    RequestQueue(const RequestQueue&) = delete;
    RequestQueue& operator=(const RequestQueue&) = delete;

    /** Never blocks (unbounded). */
    void
    push(Request&& req)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            queue_.push_back(std::move(req));
        }
        cv_.notify_one();
    }

    /**
     * Blocks until a request is available or the queue is closed.
     * Returns false only when closed AND drained — workers exit then.
     */
    bool
    pop(Request& out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        return true;
    }

    /** After close(), pop() drains the backlog then returns false. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return queue_.size();
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool closed_ = false;
};

}  // namespace tb::core

#endif  // TAILBENCH_CORE_REQUEST_QUEUE_H_
