#include "apps/common/app.h"

#include <stdexcept>

#include "apps/common/workloads.h"

namespace tb::apps {

App::~App() = default;

RequestCost
App::costFor(std::string_view request) const
{
    RequestCost cost;
    cost.serviceNs = serviceNsFor(request);
    // instructions stays 0: the synthetic apps have no instruction
    // model of their own, so the simulator derives the count from the
    // profile's per-instruction cost (keeping implied IPC consistent).
    return cost;
}

const std::vector<std::string>&
appNames()
{
    return syntheticAppNames();
}

std::unique_ptr<App>
makeApp(const std::string& name)
{
    std::unique_ptr<App> app = makeSyntheticApp(name);
    if (app == nullptr)
        throw std::invalid_argument("unknown TailBench app: " + name);
    return app;
}

}  // namespace tb::apps
