/**
 * @file
 * Reproduces Fig. 3: mean, 95th-, and 99th-percentile sojourn latency for
 * each application across a range of request rates (single worker thread,
 * integrated configuration).
 *
 * Expected shape (paper Sec. V): hockey-stick growth with load; tail
 * latencies rise much faster than the mean; the tail/mean gap is larger
 * for apps with more variable service times.
 */

#include <cstdio>

#include "bench/common.h"
#include "core/integrated_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 3: latency vs. QPS (1 worker, integrated config)");

    for (const auto& name : apps::appNames()) {
        auto app = bench::makeBenchApp(name, s);
        core::IntegratedHarness h;
        const double sat = bench::calibrateSaturation(h, *app, 1, s);
        const uint64_t budget = bench::requestBudget(name, s);

        std::printf("\n%s (sat ~ %.0f qps)\n", name.c_str(), sat);
        std::printf("  %10s %12s %12s %12s %10s\n", "qps", "mean_ms",
                    "p95_ms", "p99_ms", "ach_qps");
        for (double f : bench::sweepFractions(s)) {
            const double qps = f * sat;
            const core::RunResult r = bench::measureAt(
                h, *app, qps, 1, budget,
                s.seed + static_cast<uint64_t>(f * 100));
            std::printf("  %10.1f %12s %12s %12s %10s\n", qps,
                        bench::fmtMs(r.latency.sojourn.meanNs).c_str(),
                        bench::fmtP95Cell(r, qps).c_str(),
                        bench::fmtMs(static_cast<double>(
                            r.latency.sojourn.p99Ns)).c_str(),
                        bench::fmtQpsCell(r, qps).c_str());
        }
    }
    return 0;
}
