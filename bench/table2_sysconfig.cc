/**
 * @file
 * Reproduces Table II: configuration of the experimental system. Prints
 * both the simulated machine (mirroring the paper's Xeon E5-2670 setup)
 * and the actual host this reproduction runs on.
 */

#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "sim/machine.h"

using namespace tb;

int
main()
{
    bench::printHeader("Table II: experimental system configuration");

    std::printf("Simulated system (tb::sim, mirrors the paper's "
                "Table II):\n");
    sim::MachineConfig mc;
    std::printf("  Cores        8 Xeon E5-2670-class (SandyBridge), "
                "%.1f GHz nominal\n", mc.freqGhz);
    std::printf("  L1 caches    32KB, 8-way set-associative, "
                "split D/I (hit folded into base CPI)\n");
    std::printf("  L2 caches    256KB private per-core, 8-way "
                "(%.0f-cycle hit)\n", mc.l2HitCycles);
    std::printf("  L3 cache     %.0fMB shared, 20-way "
                "(%.0f-cycle hit), occupancy-shared\n",
                mc.llcMb, mc.l3HitCycles);
    std::printf("  Memory       DDR3-1333: %.0f ns latency, "
                "%.1f GB/s peak, M/M/1-style contention\n",
                mc.dramLatencyNs, mc.dramPeakGBs);
    std::printf("  Branch       %.0f-cycle misprediction penalty\n",
                mc.branchPenaltyCycles);

    std::printf("\nHost system (real-time configurations run here):\n");
    std::printf("  Hardware threads  %u\n",
                std::thread::hardware_concurrency());
    std::FILE* f = std::fopen("/proc/meminfo", "r");
    if (f) {
        char line[256];
        if (std::fgets(line, sizeof(line), f))
            std::printf("  %s", line);
        std::fclose(f);
    }
    std::printf("  Note: the paper used a dedicated 8-core server; "
                "multithreaded experiments here run in the\n"
                "  virtual-time simulator (see DESIGN.md substitution "
                "table).\n");
    return 0;
}
