/** Unit tests: core/request_queue.h FIFO order, close semantics,
 * multi-producer/multi-consumer delivery, batched push/pop, and the
 * waiter-gated-notify regression (two blocked consumers must both be
 * woken by back-to-back pushes — the "notify only on empty->nonempty"
 * optimization this queue deliberately does NOT use strands one). */

#include "core/request_queue.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "tests/test_util.h"

using tb::core::Request;
using tb::core::RequestQueue;

int
main()
{
    // FIFO order, single-threaded.
    {
        RequestQueue q;
        for (uint64_t i = 0; i < 100; i++) {
            Request r;
            r.id = i;
            r.payload = "p" + std::to_string(i);
            r.genNs = static_cast<int64_t>(i * 10);
            q.push(std::move(r));
        }
        CHECK_EQ(q.size(), static_cast<size_t>(100));
        Request out;
        for (uint64_t i = 0; i < 100; i++) {
            CHECK(q.pop(out));
            CHECK_EQ(out.id, i);
            CHECK(out.payload == "p" + std::to_string(i));
        }
        CHECK_EQ(q.size(), static_cast<size_t>(0));
    }

    // close() lets consumers drain the backlog, then pop() returns
    // false.
    {
        RequestQueue q;
        Request r;
        r.id = 7;
        q.push(std::move(r));
        q.close();
        Request out;
        CHECK(q.pop(out));
        CHECK_EQ(out.id, static_cast<uint64_t>(7));
        CHECK(!q.pop(out));
        CHECK(!q.pop(out));  // stays closed
    }

    // close() wakes a blocked consumer.
    {
        RequestQueue q;
        std::atomic<bool> returned{false};
        std::thread consumer([&] {
            Request out;
            const bool got = q.pop(out);
            CHECK(!got);
            returned = true;
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.close();
        consumer.join();
        CHECK(returned);
    }

    // 2 producers x 2 consumers: every id delivered exactly once.
    {
        RequestQueue q;
        constexpr uint64_t kPerProducer = 5000;
        std::vector<std::thread> producers;
        for (int p = 0; p < 2; p++) {
            producers.emplace_back([&q, p] {
                for (uint64_t i = 0; i < kPerProducer; i++) {
                    Request r;
                    r.id = static_cast<uint64_t>(p) * kPerProducer + i;
                    q.push(std::move(r));
                }
            });
        }
        std::mutex seen_mu;
        std::set<uint64_t> seen;
        std::vector<std::thread> consumers;
        for (int c = 0; c < 2; c++) {
            consumers.emplace_back([&] {
                Request out;
                while (q.pop(out)) {
                    std::lock_guard<std::mutex> lock(seen_mu);
                    const bool inserted =
                        seen.insert(out.id).second;
                    CHECK(inserted);  // no duplicate delivery
                }
            });
        }
        for (auto& t : producers)
            t.join();
        q.close();
        for (auto& t : consumers)
            t.join();
        CHECK_EQ(seen.size(), static_cast<size_t>(2 * kPerProducer));
    }

    // pushBatch preserves FIFO order and popAll drains the whole
    // backlog in one call.
    {
        RequestQueue q;
        std::vector<Request> batch;
        for (uint64_t i = 0; i < 50; i++) {
            Request r;
            r.id = i;
            r.payload = "b" + std::to_string(i);
            batch.push_back(std::move(r));
        }
        q.pushBatch(batch);
        CHECK(batch.empty());  // emptied, capacity retained
        CHECK_EQ(q.size(), static_cast<size_t>(50));
        std::vector<Request> out;
        CHECK_EQ(q.popAll(out), static_cast<size_t>(50));
        for (uint64_t i = 0; i < 50; i++) {
            CHECK_EQ(out[i].id, i);
            CHECK(out[i].payload == "b" + std::to_string(i));
        }
        CHECK_EQ(q.size(), static_cast<size_t>(0));
    }

    // popBatch caps at max, preserves order across calls.
    {
        RequestQueue q;
        for (uint64_t i = 0; i < 10; i++) {
            Request r;
            r.id = i;
            q.push(std::move(r));
        }
        std::vector<Request> out;
        CHECK_EQ(q.popBatch(out, 4), static_cast<size_t>(4));
        CHECK_EQ(q.tryPopBatch(out, 100), static_cast<size_t>(6));
        for (uint64_t i = 0; i < 10; i++)
            CHECK_EQ(out[i].id, i);
    }

    // popAll on a closed, drained queue returns 0 (consumer exit
    // path), but drains any backlog first.
    {
        RequestQueue q;
        Request r;
        r.id = 3;
        q.push(std::move(r));
        q.close();
        std::vector<Request> out;
        CHECK_EQ(q.popAll(out), static_cast<size_t>(1));
        CHECK_EQ(out[0].id, static_cast<uint64_t>(3));
        CHECK_EQ(q.popAll(out), static_cast<size_t>(0));
    }

    // Regression: waiter-gated notify must not strand a waiting
    // consumer. Park TWO consumers, then deliver two items — once as
    // back-to-back push() calls, once as a single pushBatch(2). An
    // empty->nonempty-transition notify scheme wakes only one
    // consumer in the first shape (the second push sees a nonempty
    // queue and stays silent), deadlocking the other until close().
    // Both consumers must return with an item while the queue is
    // still open.
    for (int shape = 0; shape < 2; shape++) {
        RequestQueue q;
        std::atomic<int> got{0};
        std::vector<std::thread> consumers;
        for (int c = 0; c < 2; c++) {
            consumers.emplace_back([&] {
                Request out;
                if (q.pop(out))
                    got++;
            });
        }
        // Let both consumers reach the cv wait.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (shape == 0) {
            Request a, b;
            a.id = 1;
            b.id = 2;
            q.push(std::move(a));
            q.push(std::move(b));
        } else {
            std::vector<Request> batch(2);
            batch[0].id = 1;
            batch[1].id = 2;
            q.pushBatch(batch);
        }
        // Both must complete WITHOUT close() — that is the point.
        for (auto& t : consumers)
            t.join();
        CHECK_EQ(got.load(), 2);
        q.close();
    }

    // pushBatch + popAll under contention: every id exactly once.
    {
        RequestQueue q;
        constexpr uint64_t kBatches = 400;
        constexpr uint64_t kPerBatch = 16;
        std::vector<std::thread> producers;
        for (int p = 0; p < 2; p++) {
            producers.emplace_back([&q, p] {
                std::vector<Request> batch;
                for (uint64_t b = 0; b < kBatches; b++) {
                    for (uint64_t i = 0; i < kPerBatch; i++) {
                        Request r;
                        r.id = static_cast<uint64_t>(p) * kBatches *
                                kPerBatch +
                            b * kPerBatch + i;
                        batch.push_back(std::move(r));
                    }
                    q.pushBatch(batch);
                }
            });
        }
        std::mutex seen_mu;
        std::set<uint64_t> seen;
        std::vector<std::thread> consumers;
        for (int c = 0; c < 2; c++) {
            consumers.emplace_back([&] {
                std::vector<Request> out;
                while (q.popAll(out) > 0) {
                    std::lock_guard<std::mutex> lock(seen_mu);
                    for (const Request& r : out)
                        CHECK(seen.insert(r.id).second);
                }
            });
        }
        for (auto& t : producers)
            t.join();
        q.close();
        for (auto& t : consumers)
            t.join();
        CHECK_EQ(seen.size(),
                 static_cast<size_t>(2 * kBatches * kPerBatch));
    }

    return TEST_MAIN_RESULT();
}
