#ifndef TAILBENCH_BENCH_COMMON_H_
#define TAILBENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared infrastructure for the per-table / per-figure benchmark drivers.
 *
 * Environment knobs:
 *   TAILBENCH_SIZE  dataset size factor (default 0.25; paper-scale = 1.0)
 *   TAILBENCH_FAST  if set, cut sweep points and request counts ~4x
 *                   (smoke mode for CI)
 *   TAILBENCH_PIN_WORKERS  if set, pin service worker w to CPU w so
 *                   per-worker-shard measurements are not confounded
 *                   by OS thread migration (drivers that honor it pass
 *                   it through measureAt)
 *   TAILBENCH_ARRIVAL (+ TAILBENCH_ARRIVAL_* shape knobs, see
 *                   core/arrival.h)  arrival process for every
 *                   measurement point: poisson|bursts|diurnal|trace
 *   TAILBENCH_SLO_MS  sojourn SLO target in milliseconds; enables
 *                   SLO-attainment accounting in every RunResult
 *   TAILBENCH_WINDOWS  reporting windows per run (0 = auto, max 256)
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/common/app.h"
#include "core/harness.h"

namespace tb::bench {

/** Global bench settings parsed from the environment. */
struct BenchSettings {
    double sizeFactor = 0.25;
    bool fast = false;
    bool pinWorkers = false;
    uint64_t seed = 42;
    /** Arrival process every measurement point runs under
     * (TAILBENCH_ARRIVAL*; poisson unless overridden). */
    core::ArrivalSpec arrival;
    /** Sojourn SLO target (TAILBENCH_SLO_MS); 0 = no SLO accounting. */
    int64_t sloTargetNs = 0;
    /** Reporting windows per run (TAILBENCH_WINDOWS); 0 = auto. */
    unsigned windows = 0;

    static BenchSettings fromEnv();
};

/** Builds and initializes an app at bench scale. */
std::unique_ptr<apps::App> makeBenchApp(const std::string& name,
                                        const BenchSettings& s);

/**
 * Per-app request-count budget for one measurement point, sized so slow
 * apps (sphinx) stay tractable while fast apps (silo) get enough samples
 * for a stable p95.
 */
uint64_t requestBudget(const std::string& app, const BenchSettings& s);

/**
 * Measures saturation QPS of (app, harness, threads): analytic
 * estimate from a low-load service probe, refined against achieved
 * throughput under deliberate overload (robust to heavy-tailed service
 * distributions, which the probe undersamples). @p pin_workers makes
 * the overload capacity run use the same worker pinning as the
 * measurements it calibrates for — calibrating unpinned and measuring
 * pinned would put the "70% load" points at 70% of a different
 * configuration's capacity.
 */
double calibrateSaturation(core::Harness& harness, apps::App& app,
                           unsigned threads, const BenchSettings& s,
                           bool pin_workers = false);

/** One latency measurement at a fixed offered load. */
core::RunResult measureAt(core::Harness& harness, apps::App& app,
                          double qps, unsigned threads, uint64_t requests,
                          uint64_t seed, bool keep_samples = false,
                          bool pin_workers = false);

/** Median-of-repeats latency point (robust to host scheduling noise). */
struct RobustPoint {
    double meanNs = 0.0;
    double p95Ns = 0.0;
    double p99Ns = 0.0;
    double achievedQps = 0.0;
};

/**
 * Measures a latency point as the per-metric median across @p repeats
 * re-randomized runs (the paper's repeated-runs methodology; the median
 * additionally rejects preemption-ruined runs on shared hosts).
 */
RobustPoint measureAtRobust(core::Harness& harness, apps::App& app,
                            double qps, unsigned threads,
                            uint64_t requests, uint64_t seed,
                            unsigned repeats = 3);

/** Load fractions for latency-vs-QPS sweeps (trimmed in fast mode). */
std::vector<double> sweepFractions(const BenchSettings& s);

/** Prints a "### <title>" header so bench output is greppable. */
void printHeader(const std::string& title);

/** Formats nanoseconds as milliseconds with 3 decimals. */
std::string fmtMs(double ns);

/**
 * True when the run's open-loop generator fell more than one mean
 * interarrival gap behind its own schedule (RunResult::maxGenLagNs):
 * the *offered* load was silently below @p qps, so the point measures
 * less load than its row claims.
 */
bool genLagInvalidates(const core::RunResult& r, double qps);

/** p95 sojourn cell for sweep tables: fmtMs(p95), with a trailing "!"
 * when genLagInvalidates — invalidated points are visible in driver
 * output instead of only in a warning log line. */
std::string fmtP95Cell(const core::RunResult& r, double qps);

/** Achieved-throughput (completed QPS) cell printed next to the p95
 * cells, so saturation is visible in every table: achieved falling
 * short of offered IS the saturation signal. Shares fmtP95Cell's "!"
 * gen-lag annotation — a lagging generator means even the offered
 * side of the comparison was below nominal. */
std::string fmtQpsCell(const core::RunResult& r, double qps);

/**
 * Minimal streaming JSON writer for machine-readable bench reports
 * (BENCH_<fig>.json): run config + git rev + per-point percentiles,
 * so perf regressions show up as diffable numbers instead of only in
 * eyeballed tables. Containers nest via begin/end pairs; inside an
 * object use the keyed emitters, inside an array the unkeyed ones.
 * Numbers are JSON doubles (%.12g) — every count and nanosecond
 * percentile the drivers report fits losslessly below 2^53.
 */
class JsonWriter {
  public:
    JsonWriter& beginObject(const char* key = nullptr);
    JsonWriter& endObject();
    JsonWriter& beginArray(const char* key = nullptr);
    JsonWriter& endArray();
    JsonWriter& str(const char* key, const std::string& v);
    JsonWriter& num(const char* key, double v);
    JsonWriter& boolean(const char* key, bool v);
    /** Unkeyed variants, for array elements. */
    JsonWriter& str(const std::string& v);
    JsonWriter& num(double v);

    /** The document so far; call after the outermost end. */
    const std::string& text() const { return out_; }

  private:
    void comma();
    void writeKey(const char* key);
    void writeEscaped(const std::string& v);

    std::string out_;
    /** Per-open-container flag: is the next element the first? */
    std::vector<bool> first_;
};

/** `git rev-parse --short HEAD` of the working tree, or "unknown" —
 * the one line that ties a BENCH_*.json to the code that produced
 * it. */
std::string gitRevision();

/** Writes @p text to @p path (truncating); warns and returns false on
 * failure — a bench run must not die on a read-only results dir. */
bool writeTextFile(const std::string& path, const std::string& text);

}  // namespace tb::bench

#endif  // TAILBENCH_BENCH_COMMON_H_
