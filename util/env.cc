#include "util/env.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace tb::util {

const char*
envString(const char* name)
{
    return std::getenv(name);
}

bool
envFlag(const char* name)
{
    return std::getenv(name) != nullptr;
}

uint64_t
envU64(const char* name, uint64_t fallback, uint64_t min,
       uint64_t max)
{
    const char* s = std::getenv(name);
    if (s == nullptr)
        return fallback;
    // Reject '-' anywhere: strtoull skips leading whitespace and
    // would wrap a negative value to a huge one without setting errno
    // (a trailing '-' already fails the *end check).
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE ||
        std::strchr(s, '-') != nullptr || v < min || v > max) {
        TB_LOG_WARN("%s=\"%s\" is not an integer in [%llu..%llu]; "
                    "keeping default %llu",
                    name, s, static_cast<unsigned long long>(min),
                    static_cast<unsigned long long>(max),
                    static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

double
envPositiveDouble(const char* name, double fallback)
{
    const char* s = std::getenv(name);
    if (s == nullptr)
        return fallback;
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
        TB_LOG_WARN("%s=\"%s\" is not a positive number; keeping "
                    "default %.3g",
                    name, s, fallback);
        return fallback;
    }
    return v;
}

uint16_t
envPort(const char* name)
{
    return static_cast<uint16_t>(envU64(name, 0, 1, 65535));
}

}  // namespace tb::util
