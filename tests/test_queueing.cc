/**
 * @file
 * queueing/mgn_sim: the M/G/n model against closed-form queueing
 * theory (M/M/1 mean sojourn, Erlang-C for n > 1), determinism,
 * warmup exclusion, overload termination, degenerate-input guards,
 * and the EmpiricalQueueHarness adapter's consistency with
 * simulateMgn.
 */

#include "queueing/mgn_sim.h"

#include <cmath>
#include <vector>

#include "apps/common/app.h"
#include "util/rng.h"
#include "tests/test_util.h"

using namespace tb;

namespace {

/** Exponential service samples with the given mean, plus the sample
 * vector's *empirical* mean — the analytic formulas must be fed the
 * distribution the simulator actually resamples from, not the one we
 * asked for, or the finite-sample bias eats the tolerance. */
std::vector<int64_t>
expSamples(double mean_ns, size_t count, uint64_t seed,
           double* empirical_mean_ns)
{
    util::Rng rng(seed);
    std::vector<int64_t> v;
    v.reserve(count);
    double sum = 0.0;
    for (size_t i = 0; i < count; i++) {
        const int64_t s =
            std::llround(rng.nextExponential(mean_ns));
        v.push_back(s);
        sum += static_cast<double>(s);
    }
    *empirical_mean_ns = sum / static_cast<double>(count);
    return v;
}

void
testMm1AgainstAnalytic()
{
    double mean_ns = 0.0;
    const auto samples = expSamples(1000.0, 50'000, 7, &mean_ns);
    const double mu = 1e9 / mean_ns;  // per second

    queueing::MgnConfig cfg;
    cfg.lambda = 0.5 * mu;  // rho = 0.5
    cfg.servers = 1;
    cfg.warmup = 5'000;
    cfg.measured = 60'000;
    cfg.seed = 42;
    const queueing::MgnResult r = queueing::simulateMgn(samples, cfg);

    CHECK_EQ(r.sojourn.count, cfg.measured);
    // M/M/1 mean sojourn: W = 1/(mu - lambda).
    const double analytic_ns = 1e9 / (mu - cfg.lambda);
    CHECK_NEAR(r.sojourn.meanNs, analytic_ns, 0.10);
    // Decomposition adds up: E[sojourn] = E[queueing] + E[service],
    // and the resampled service mean matches the input vector's.
    CHECK_NEAR(r.sojourn.meanNs, r.queueing.meanNs + r.service.meanNs,
               1e-9);
    CHECK_NEAR(r.service.meanNs, mean_ns, 0.05);
    // Below saturation the model sustains the offered rate.
    CHECK_NEAR(r.achievedQps, cfg.lambda, 0.05);
    // Erlang-C closed form degenerates to 1/(mu - lambda) at n = 1.
    CHECK_NEAR(queueing::mmnSojournP(cfg.lambda, mu, 1) * 1e9,
               analytic_ns, 1e-9);
}

void
testMmnAgainstErlangC()
{
    double mean_ns = 0.0;
    const auto samples = expSamples(2000.0, 50'000, 11, &mean_ns);
    const double mu = 1e9 / mean_ns;

    queueing::MgnConfig cfg;
    cfg.lambda = 0.7 * 4 * mu;  // four servers at rho = 0.7
    cfg.servers = 4;
    cfg.warmup = 5'000;
    cfg.measured = 60'000;
    cfg.seed = 43;
    const queueing::MgnResult r = queueing::simulateMgn(samples, cfg);
    CHECK_NEAR(r.sojourn.meanNs,
               queueing::mmnSojournP(cfg.lambda, mu, 4) * 1e9, 0.10);

    // Independent hand-rolled M/M/2 check of the Erlang-B recurrence:
    // C(2, a) = 2*rho^2 / (1 + rho).
    const double lam2 = 1.2, mu2 = 1.0;
    const double rho2 = lam2 / 2.0;
    const double c2 = 2.0 * rho2 * rho2 / (1.0 + rho2);
    CHECK_NEAR(queueing::mmnSojournP(lam2, mu2, 2),
               c2 / (2.0 * mu2 - lam2) + 1.0 / mu2, 1e-12);

    // At or past saturation the analytic sojourn is infinite; bad
    // inputs are NaN, not a crash.
    CHECK(std::isinf(queueing::mmnSojournP(4.0 * mu, mu, 4)));
    CHECK(std::isinf(queueing::mmnSojournP(5.0 * mu, mu, 4)));
    CHECK(std::isnan(queueing::mmnSojournP(-1.0, mu, 4)));
    CHECK(std::isnan(queueing::mmnSojournP(1.0, 1.0, 0)));
}

void
testDeterminism()
{
    double mean_ns = 0.0;
    const auto samples = expSamples(1500.0, 10'000, 13, &mean_ns);

    queueing::MgnConfig cfg;
    cfg.lambda = 2e5;
    cfg.servers = 3;
    cfg.warmup = 1'000;
    cfg.measured = 20'000;
    cfg.seed = 99;
    const queueing::MgnResult a = queueing::simulateMgn(samples, cfg);
    const queueing::MgnResult b = queueing::simulateMgn(samples, cfg);
    CHECK_EQ(a.achievedQps, b.achievedQps);
    CHECK_EQ(a.sojourn.meanNs, b.sojourn.meanNs);
    CHECK_EQ(a.sojourn.p95Ns, b.sojourn.p95Ns);
    CHECK_EQ(a.sojourn.p99Ns, b.sojourn.p99Ns);
    CHECK_EQ(a.queueing.p95Ns, b.queueing.p95Ns);
    CHECK_EQ(a.service.p95Ns, b.service.p95Ns);

    cfg.seed = 100;
    const queueing::MgnResult c = queueing::simulateMgn(samples, cfg);
    CHECK(c.sojourn.meanNs != a.sojourn.meanNs);
}

void
testWarmupExclusion()
{
    double mean_ns = 0.0;
    const auto samples = expSamples(1000.0, 10'000, 17, &mean_ns);
    const double mu = 1e9 / mean_ns;

    // High load: the queue needs thousands of requests to reach
    // steady state, so the cold-start bias is visible.
    queueing::MgnConfig cfg;
    cfg.lambda = 0.95 * mu;
    cfg.servers = 1;
    cfg.warmup = 0;
    cfg.measured = 20'000;
    cfg.seed = 5;
    const queueing::MgnResult cold = queueing::simulateMgn(samples, cfg);
    cfg.warmup = 10'000;
    const queueing::MgnResult warm = queueing::simulateMgn(samples, cfg);

    // Only the measured window is reported either way...
    CHECK_EQ(cold.sojourn.count, cfg.measured);
    CHECK_EQ(warm.sojourn.count, cfg.measured);
    // ...and dropping the empty-queue start raises the measured mean.
    CHECK(warm.sojourn.meanNs > cold.sojourn.meanNs);
}

void
testOverloadTerminates()
{
    double mean_ns = 0.0;
    const auto samples = expSamples(1000.0, 10'000, 19, &mean_ns);
    const double mu = 1e9 / mean_ns;

    queueing::MgnConfig cfg;
    cfg.lambda = 2.0 * 2 * mu;  // 2x the two servers' capacity
    cfg.servers = 2;
    cfg.warmup = 500;
    cfg.measured = 20'000;
    cfg.seed = 21;
    const queueing::MgnResult r = queueing::simulateMgn(samples, cfg);
    // Terminates (we got here) and reports the capacity it achieved,
    // not the rate it was offered.
    CHECK_EQ(r.sojourn.count, cfg.measured);
    CHECK(r.achievedQps < 0.75 * cfg.lambda);
    CHECK_NEAR(r.achievedQps, 2.0 * mu, 0.10);
}

void
testDegenerateInputs()
{
    const std::vector<int64_t> empty;
    queueing::MgnConfig cfg;
    const queueing::MgnResult a = queueing::simulateMgn(empty, cfg);
    CHECK_EQ(a.sojourn.count, 0u);
    CHECK_EQ(a.achievedQps, 0.0);

    const std::vector<int64_t> one{1000};
    cfg.lambda = 0.0;
    const queueing::MgnResult b = queueing::simulateMgn(one, cfg);
    CHECK_EQ(b.sojourn.count, 0u);
    cfg.lambda = 1000.0;
    cfg.servers = 0;
    const queueing::MgnResult c = queueing::simulateMgn(one, cfg);
    CHECK_EQ(c.sojourn.count, 0u);
}

void
testHarnessAdapter()
{
    double mean_ns = 0.0;
    const auto samples = expSamples(1000.0, 10'000, 23, &mean_ns);
    queueing::EmpiricalQueueHarness h(samples);
    CHECK(h.configName() == "queueing-model");

    core::HarnessConfig cfg;
    cfg.qps = 0.5 * 1e9 / mean_ns;
    cfg.workerThreads = 2;
    cfg.warmupRequests = 1'000;
    cfg.measuredRequests = 15'000;
    cfg.seed = 77;
    cfg.keepSamples = true;
    // The app argument is unused by the adapter; any registered app
    // satisfies the interface.
    auto app = apps::makeApp("silo");
    const core::RunResult r = h.run(*app, cfg);

    // Identical numbers to the functional entry point with the same
    // mapped config — the adapter must not fork the model.
    queueing::MgnConfig qc;
    qc.lambda = cfg.qps;
    qc.servers = cfg.workerThreads;
    qc.warmup = cfg.warmupRequests;
    qc.measured = cfg.measuredRequests;
    qc.seed = cfg.seed;
    const queueing::MgnResult m = queueing::simulateMgn(samples, qc);
    CHECK_EQ(r.latency.sojourn.p95Ns, m.sojourn.p95Ns);
    CHECK_EQ(r.latency.sojourn.meanNs, m.sojourn.meanNs);
    CHECK_EQ(r.achievedQps, m.achievedQps);
    CHECK_EQ(r.maxGenLagNs, 0);  // virtual time never lags
    CHECK_EQ(r.samples.size(), cfg.measuredRequests);
}

}  // namespace

int
main()
{
    testMm1AgainstAnalytic();
    testMmnAgainstErlangC();
    testDeterminism();
    testWarmupExclusion();
    testOverloadTerminates();
    testDegenerateInputs();
    testHarnessAdapter();
    return TEST_MAIN_RESULT();
}
