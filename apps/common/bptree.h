#ifndef TAILBENCH_APPS_COMMON_BPTREE_H_
#define TAILBENCH_APPS_COMMON_BPTREE_H_

/**
 * @file
 * In-memory B+ tree keyed by uint64_t, used by the kv-style TailBench
 * apps (silo, masstree, specjbb, shore) as their request-processing
 * data structure.
 *
 * Design: classic order-32 B+ tree; values live only in leaves; leaves
 * are chained for range scans. insert() is an upsert. Writes are
 * single-threaded (dataset construction at init); concurrent find()
 * and scanFrom() from worker threads are safe once loading stops,
 * which is the access pattern the harness produces.
 */

#include <cstddef>
#include <cstdint>

namespace tb::apps {

template <typename V>
class BPlusTree {
  public:
    BPlusTree() = default;
    ~BPlusTree() { destroy(root_); }
    BPlusTree(const BPlusTree&) = delete;
    BPlusTree& operator=(const BPlusTree&) = delete;

    /** Inserts or overwrites; size() counts distinct keys. */
    void
    insert(uint64_t key, const V& val)
    {
        if (root_ == nullptr) {
            Leaf* leaf = new Leaf();
            leaf->keys[0] = key;
            leaf->vals[0] = val;
            leaf->n = 1;
            root_ = leaf;
            size_ = 1;
            return;
        }
        Split split;
        if (insertInto(root_, key, val, &split)) {
            Internal* nroot = new Internal();
            nroot->keys[0] = split.key;
            nroot->kids[0] = root_;
            nroot->kids[1] = split.right;
            nroot->n = 1;
            root_ = nroot;
        }
    }

    /** Pointer to the value, or nullptr; stable until the next insert. */
    const V*
    find(uint64_t key) const
    {
        const Node* node = root_;
        if (node == nullptr)
            return nullptr;
        while (!node->leaf) {
            const Internal* in = static_cast<const Internal*>(node);
            node = in->kids[childIndex(in, key)];
        }
        const Leaf* leaf = static_cast<const Leaf*>(node);
        const int pos = lowerBound(leaf, key);
        if (pos < leaf->n && leaf->keys[pos] == key)
            return &leaf->vals[pos];
        return nullptr;
    }

    /**
     * Visits up to @p limit entries with key >= @p key in ascending
     * order; fn(key, value). Returns the number visited.
     */
    template <typename F>
    size_t
    scanFrom(uint64_t key, size_t limit, F&& fn) const
    {
        const Node* node = root_;
        if (node == nullptr || limit == 0)
            return 0;
        while (!node->leaf) {
            const Internal* in = static_cast<const Internal*>(node);
            node = in->kids[childIndex(in, key)];
        }
        const Leaf* leaf = static_cast<const Leaf*>(node);
        int pos = lowerBound(leaf, key);
        size_t visited = 0;
        while (leaf != nullptr && visited < limit) {
            if (pos >= leaf->n) {
                leaf = leaf->next;
                pos = 0;
                continue;
            }
            fn(leaf->keys[pos], leaf->vals[pos]);
            visited++;
            pos++;
        }
        return visited;
    }

    size_t size() const { return size_; }

  private:
    // Max keys per node; arrays hold one extra slot so a node may
    // temporarily overflow before splitting.
    static constexpr int kMaxKeys = 32;

    struct Node {
        bool leaf = false;
        int n = 0;
        uint64_t keys[kMaxKeys + 1];
    };
    struct Leaf : Node {
        Leaf() { this->leaf = true; }
        V vals[kMaxKeys + 1];
        Leaf* next = nullptr;
    };
    struct Internal : Node {
        Node* kids[kMaxKeys + 2];
    };

    struct Split {
        uint64_t key = 0;
        Node* right = nullptr;
    };

    /** First position with keys[pos] >= key. */
    static int
    lowerBound(const Node* node, uint64_t key)
    {
        int lo = 0;
        int hi = node->n;
        while (lo < hi) {
            const int mid = (lo + hi) / 2;
            if (node->keys[mid] < key)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Child to descend into: first position with key < keys[pos]. */
    static int
    childIndex(const Internal* in, uint64_t key)
    {
        int lo = 0;
        int hi = in->n;
        while (lo < hi) {
            const int mid = (lo + hi) / 2;
            if (in->keys[mid] <= key)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Returns true if the node split; *out describes the new right
     * sibling and the key to promote. */
    bool
    insertInto(Node* node, uint64_t key, const V& val, Split* out)
    {
        if (node->leaf) {
            Leaf* leaf = static_cast<Leaf*>(node);
            const int pos = lowerBound(leaf, key);
            if (pos < leaf->n && leaf->keys[pos] == key) {
                leaf->vals[pos] = val;
                return false;
            }
            for (int i = leaf->n; i > pos; i--) {
                leaf->keys[i] = leaf->keys[i - 1];
                leaf->vals[i] = leaf->vals[i - 1];
            }
            leaf->keys[pos] = key;
            leaf->vals[pos] = val;
            leaf->n++;
            size_++;
            if (leaf->n <= kMaxKeys)
                return false;
            // Split: left keeps half, right gets the rest; the right
            // sibling's first key is promoted (copied, B+ style).
            Leaf* right = new Leaf();
            const int keep = leaf->n / 2;
            right->n = leaf->n - keep;
            for (int i = 0; i < right->n; i++) {
                right->keys[i] = leaf->keys[keep + i];
                right->vals[i] = leaf->vals[keep + i];
            }
            leaf->n = keep;
            right->next = leaf->next;
            leaf->next = right;
            out->key = right->keys[0];
            out->right = right;
            return true;
        }

        Internal* in = static_cast<Internal*>(node);
        const int ci = childIndex(in, key);
        Split child_split;
        if (!insertInto(in->kids[ci], key, val, &child_split))
            return false;
        // Insert the promoted key and new right child at position ci.
        for (int i = in->n; i > ci; i--) {
            in->keys[i] = in->keys[i - 1];
            in->kids[i + 1] = in->kids[i];
        }
        in->keys[ci] = child_split.key;
        in->kids[ci + 1] = child_split.right;
        in->n++;
        if (in->n <= kMaxKeys)
            return false;
        // Split internal: middle key moves up (not copied).
        Internal* right = new Internal();
        const int mid = in->n / 2;
        right->n = in->n - mid - 1;
        for (int i = 0; i < right->n; i++)
            right->keys[i] = in->keys[mid + 1 + i];
        for (int i = 0; i <= right->n; i++)
            right->kids[i] = in->kids[mid + 1 + i];
        out->key = in->keys[mid];
        out->right = right;
        in->n = mid;
        return true;
    }

    void
    destroy(Node* node)
    {
        if (node == nullptr)
            return;
        if (node->leaf) {
            delete static_cast<Leaf*>(node);
            return;
        }
        Internal* in = static_cast<Internal*>(node);
        for (int i = 0; i <= in->n; i++)
            destroy(in->kids[i]);
        delete in;
    }

    Node* root_ = nullptr;
    size_t size_ = 0;
};

}  // namespace tb::apps

#endif  // TAILBENCH_APPS_COMMON_BPTREE_H_
