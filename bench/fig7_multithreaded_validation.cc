/**
 * @file
 * Reproduces Fig. 7: 95th-percentile latency for 4-thread instances of
 * specjbb, masstree, xapian, and img-dnn across the four setups.
 *
 * Caveat recorded in DESIGN.md: the paper ran 4 worker threads on an
 * 8-core server; this host has 2 cores, so the real-time configurations
 * are oversubscribed at 4 workers and their absolute latencies inflate.
 * The virtual-time simulation column carries the faithful 4-thread
 * behavior; the real columns are still printed for completeness and for
 * the qualitative config-agreement comparison at low load.
 */

#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "core/integrated_harness.h"
#include "net/server_harness.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 7: p95 vs. QPS/thread, 4 worker threads (4 setups)");
    constexpr unsigned kThreads = 4;

    core::IntegratedHarness integrated;
    net::LoopbackHarness loopback;
    net::NetworkedHarness networked;
    sim::SimHarness simulation;
    core::Harness* configs[] = {&networked, &loopback, &integrated,
                                &simulation};

    for (const auto& name :
         {std::string("specjbb"), std::string("masstree"),
          std::string("xapian"), std::string("img-dnn")}) {
        auto app = bench::makeBenchApp(name, s);
        const uint64_t budget = bench::requestBudget(name, s);
        const double sat1 =
            bench::calibrateSaturation(simulation, *app, 1, s);

        std::printf("\n%s (simulated 1-thread sat ~ %.0f qps)\n",
                    name.c_str(), sat1);
        std::printf("  %10s %12s %12s %12s %12s\n", "qps/thr",
                    "networked", "loopback", "integrated", "simulation");
        for (double f : bench::sweepFractions(s)) {
            const double qps = f * sat1 * kThreads;
            std::printf("  %10.1f", f * sat1);
            for (core::Harness* h : configs) {
                const core::RunResult r = bench::measureAt(
                    *h, *app, qps, kThreads, budget,
                    s.seed + static_cast<uint64_t>(f * 1000));
                std::printf(" %12s",
                            bench::fmtMs(static_cast<double>(
                                r.latency.sojourn.p95Ns)).c_str());
            }
            std::printf("\n");
        }
    }
    std::printf("\nHost caveat: real-time columns are oversubscribed "
                "(4 workers on %u hardware threads); the simulation "
                "column is the faithful 4-thread result.\n",
                std::thread::hardware_concurrency());
    return 0;
}
