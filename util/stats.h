#ifndef TAILBENCH_UTIL_STATS_H_
#define TAILBENCH_UTIL_STATS_H_

/**
 * @file
 * Exact sample statistics. percentileOf() is the reference the HDR
 * histogram is validated against (bench/ablation_methodology.cc) and
 * the workhorse for small sample sets (per-point medians, CDF dumps).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace tb::util {

/**
 * Exact percentile of an *already sorted* sample set with linear
 * interpolation between order statistics (the "linear" / type-7
 * definition: rank pct/100 * (n-1)). The single source of the
 * percentile math — percentileOf and the harness summaries both call
 * it, so there is one definition to diverge from rather than two.
 *
 * Edge cases: an empty vector returns T{}; a single element returns
 * that element for every pct. pct is clamped to [0, 100]. For
 * integral T the interpolated value is rounded to nearest.
 */
template <typename T>
T
percentileOfSorted(const std::vector<T>& sorted, double pct)
{
    if (sorted.empty())
        return T{};
    if (pct <= 0.0)
        return sorted.front();
    if (pct >= 100.0)
        return sorted.back();
    const double rank = pct / 100.0 *
        static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    const double interp = static_cast<double>(sorted[lo]) +
        frac * (static_cast<double>(sorted[lo + 1]) -
                static_cast<double>(sorted[lo]));
    if constexpr (std::is_integral_v<T>)
        return static_cast<T>(std::llround(interp));
    else
        return static_cast<T>(interp);
}

/** percentileOfSorted over an unsorted sample set (copies + sorts). */
template <typename T>
T
percentileOf(const std::vector<T>& samples, double pct)
{
    if (samples.empty())
        return T{};
    std::vector<T> v(samples);
    std::sort(v.begin(), v.end());
    return percentileOfSorted(v, pct);
}

/** Arithmetic mean; 0 for an empty set. */
template <typename T>
double
meanOf(const std::vector<T>& samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (const T& s : samples)
        sum += static_cast<double>(s);
    return sum / static_cast<double>(samples.size());
}

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
template <typename T>
double
stddevOf(const std::vector<T>& samples)
{
    if (samples.size() < 2)
        return 0.0;
    const double mu = meanOf(samples);
    double acc = 0.0;
    for (const T& s : samples) {
        const double d = static_cast<double>(s) - mu;
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

}  // namespace tb::util

#endif  // TAILBENCH_UTIL_STATS_H_
