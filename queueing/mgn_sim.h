#ifndef TAILBENCH_QUEUEING_MGN_SIM_H_
#define TAILBENCH_QUEUEING_MGN_SIM_H_

/**
 * @file
 * M/G/n queueing model fed by empirical service samples (the paper's
 * Sec. VII case-study baseline).
 *
 * simulateMgn runs a deterministic discrete-event simulation in
 * virtual nanoseconds: open-loop arrivals at mean rate lambda (from
 * the pluggable core::ArrivalProcess — Poisson by default, which is
 * the classic M/G/n), one FCFS central queue, n identical servers,
 * and per-request service times resampled (with replacement) from a
 * measured service-time vector. That is the "what if adding threads had no overhead" model:
 * the service distribution is the app's real one, but there is no
 * synchronization, no memory contention, no OS — only queueing. An
 * ideal-memory full simulation that still falls short of M/G/n is
 * losing time to synchronization; one that tracks it was memory-bound
 * (Fig. 8's moses-vs-silo decomposition).
 *
 * The result is built through the shared core::buildRunResult path,
 * so sojourn/queueing/service decompose exactly as in every harness,
 * and EmpiricalQueueHarness adapts the model to core::Harness so the
 * bench sweep helpers (bench::measureAt, calibrateSaturation) can
 * drive it like any other backend. Everything is virtual-time: a
 * (samples, config) pair yields bit-identical results on any host.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/harness.h"

namespace tb::queueing {

struct MgnConfig {
    /** Offered load: mean arrival rate, requests per second. */
    double lambda = 1000.0;
    /** n: parallel servers draining the single FCFS queue. */
    unsigned servers = 1;
    /** Leading requests simulated but excluded from every statistic. */
    uint64_t warmup = 0;
    uint64_t measured = 10000;
    uint64_t seed = 42;
    /** Arrival process shaping the input stream (core/arrival.h). The
     * Poisson default is the classic M/G/n; bursts/diurnal/trace turn
     * the model into MMPP/G/n etc., so the analytic assumptions can be
     * stressed with non-Poisson input at equal mean load. */
    core::ArrivalSpec arrival;
};

/** Latency decomposition of one model run (virtual time, so there is
 * no generator lag and no host noise). */
struct MgnResult {
    /** Measured completions / measured virtual span; under overload
     * this settles at the service capacity, below lambda. */
    double achievedQps = 0.0;
    core::LatencySummary sojourn;
    core::LatencySummary queueing;
    core::LatencySummary service;
};

/**
 * Simulates M/G/n with service times resampled from
 * @p serviceSamplesNs. Degenerate inputs (empty samples, lambda <= 0,
 * servers == 0, measured == 0) warn and return an empty result
 * (count == 0) instead of dividing by zero or hanging.
 */
MgnResult simulateMgn(const std::vector<int64_t>& serviceSamplesNs,
                      const MgnConfig& cfg);

/**
 * Analytic cross-check: mean sojourn time of an M/M/n queue
 * (exponential service at rate @p mu per server) via Erlang-C,
 *
 *   W = C(n, lambda/mu) / (n*mu - lambda) + 1/mu,
 *
 * in the reciprocal units of the rates (rates per second => seconds).
 * For n == 1 this reduces to 1/(mu - lambda). Returns +inf at or past
 * saturation (lambda >= n*mu) and NaN for nonsensical inputs. The
 * Erlang-C term is computed through the Erlang-B recurrence, so large
 * n neither overflows nor loses precision to explicit factorials.
 */
double mmnSojournP(double lambda, double mu, unsigned n);

/**
 * core::Harness adapter over simulateMgn: HarnessConfig's qps /
 * workerThreads / warmup / measured / seed map onto MgnConfig, and
 * run() returns a full RunResult (samples included when
 * keepSamples). The App argument is ignored — the service
 * distribution was measured beforehand and baked into the samples —
 * which is the point: sweeping this harness against a real one
 * isolates what queueing alone predicts.
 */
class EmpiricalQueueHarness final : public core::Harness {
  public:
    explicit EmpiricalQueueHarness(std::vector<int64_t> serviceSamplesNs)
        : samples_(std::move(serviceSamplesNs))
    {
    }

    core::RunResult run(apps::App& app,
                        const core::HarnessConfig& cfg) override;

    std::string configName() const override { return "queueing-model"; }

  private:
    std::vector<int64_t> samples_;
};

}  // namespace tb::queueing

#endif  // TAILBENCH_QUEUEING_MGN_SIM_H_
