#!/usr/bin/env bash
# CI smoke: run one bench driver in fast mode and check the output
# shape — every driver prints at least one "### <title>" header.
#
# Usage: smoke.sh <path-to-driver> [args...]
set -euo pipefail

if [[ $# -lt 1 ]]; then
    echo "usage: $0 <driver-binary> [args...]" >&2
    exit 2
fi

driver="$1"
shift

if ! out=$(TAILBENCH_FAST=1 TAILBENCH_SIZE=0.05 "$driver" "$@"); then
    echo "smoke: $driver exited nonzero" >&2
    exit 1
fi

if ! grep -q '^### ' <<<"$out"; then
    echo "smoke: $driver produced no '### ' header; output was:" >&2
    echo "$out" >&2
    exit 1
fi

echo "smoke OK: $(grep -c '^### ' <<<"$out") section(s) from $(basename "$driver")"
