#include "util/alloc_probe.h"

#include <cstdlib>
#include <new>

#include "util/env.h"

// The operator-new replacement must not fight a sanitizer's
// interposed allocator: ASan/TSan own malloc there, and replacing the
// C++ entry points on top of them breaks their bookkeeping. Compile
// the hook out under any of them; the counters stay (kHeapAllocs just
// reads 0, flagged via allocHookActive()).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TB_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TB_ALLOC_HOOK 0
#else
#define TB_ALLOC_HOOK 1
#endif
#else
#define TB_ALLOC_HOOK 1
#endif

namespace tb::util::probe {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_counters[kCounterCount] = {};

const char*
counterName(Counter c)
{
    switch (c) {
    case kHeapAllocs:
        return "heap_allocs";
    case kQueueNotifies:
        return "queue_notifies";
    case kRespWrites:
        return "resp_writes";
    case kEventfdWakes:
        return "eventfd_wakes";
    case kCounterCount:
        break;
    }
    return "?";
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

uint64_t
value(Counter c)
{
    return g_counters[c].load(std::memory_order_relaxed);
}

void
reset()
{
    for (auto& c : g_counters)
        c.store(0, std::memory_order_relaxed);
}

void
initFromEnv()
{
    if (envFlag("TAILBENCH_ALLOC_PROBE"))
        setEnabled(true);
}

bool
allocHookActive()
{
    return TB_ALLOC_HOOK != 0;
}

}  // namespace tb::util::probe

#if TB_ALLOC_HOOK

namespace {

void*
probedAlloc(std::size_t sz)
{
    tb::util::probe::add(tb::util::probe::kHeapAllocs);
    for (;;) {
        void* p = std::malloc(sz == 0 ? 1 : sz);
        if (p != nullptr)
            return p;
        std::new_handler h = std::get_new_handler();
        if (h == nullptr)
            throw std::bad_alloc();
        h();
    }
}

}  // namespace

void*
operator new(std::size_t sz)
{
    return probedAlloc(sz);
}

void*
operator new[](std::size_t sz)
{
    return probedAlloc(sz);
}

void*
operator new(std::size_t sz, const std::nothrow_t&) noexcept
{
    tb::util::probe::add(tb::util::probe::kHeapAllocs);
    return std::malloc(sz == 0 ? 1 : sz);
}

void*
operator new[](std::size_t sz, const std::nothrow_t&) noexcept
{
    tb::util::probe::add(tb::util::probe::kHeapAllocs);
    return std::malloc(sz == 0 ? 1 : sz);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

#endif  // TB_ALLOC_HOOK
