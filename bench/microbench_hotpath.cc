/**
 * @file
 * Hot-path allocation/syscall microbench: proves the zero-allocation,
 * syscall-batched serving claims with counters, not assertions.
 *
 * Four modes, each a real TcpServer round trip over loopback:
 *
 *   threads_stock    thread-per-connection backend driven by a stock
 *                    synchronous client (genRequest per request) — the
 *                    end-to-end baseline every request used to pay:
 *                    the probe counts >= 2 heap allocs per request
 *                    (client payload string + server-side payload
 *                    string).
 *   reactor_string   reactor backend, payload arena OFF, driven by a
 *                    pre-encoded pipelined burst client (the client
 *                    side allocates nothing) — isolates the server's
 *                    per-payload string alloc.
 *   reactor_arena    as above with the arena ON — the tentpole: 0
 *                    steady-state heap allocs per request.
 *   reactor_perframe arena ON but response batching OFF (one send()
 *                    per response frame) — the write-coalescing
 *                    baseline; reactor_arena must show several times
 *                    fewer response-write syscalls per request.
 *
 * Counters (util/alloc_probe.h) are process-global, so each mode's
 * numbers include its client — deliberately: threads_stock measures
 * the whole stock round trip, and the burst client of the optimized
 * modes is allocation-free by construction. Under ASan/TSan the
 * operator-new hook is compiled out (the sanitizer owns the
 * allocator); alloc columns then read 0 and `alloc_hook_active` in
 * the JSON says so.
 *
 * Output: a "### " table plus BENCH_microbench_hotpath.json
 * (per-mode allocs/notifies/response-writes/eventfd-wakes per
 * request, and the derived coalescing ratio) for scripts/perf_check.py.
 */

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/request_queue.h"
#include "net/server_harness.h"
#include "net/wire.h"
#include "util/alloc_probe.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace tb;

namespace {

/** 32 chars: comfortably past libstdc++'s 15-char SSO, so an owning
 * payload copy is a *visible* heap allocation in every mode that
 * makes one. */
constexpr char kPayload[] = "hotpath-payload-0123456789abcdef";
constexpr unsigned kBurst = 64;

/** Near-nop app: the measurement is IO-path overhead per request, not
 * workload compute. process() touches every payload byte (defeating
 * dead-code elimination) without allocating. */
class HotpathApp final : public apps::App {
  public:
    const std::string& name() const override { return name_; }
    void init(const apps::AppConfig&) override {}

    std::string
    genRequest(util::Rng& rng) override
    {
        std::string s(kPayload);
        s[s.size() - 1] = static_cast<char>('a' + rng.next() % 26);
        return s;
    }

    uint64_t
    process(std::string_view request) override
    {
        uint64_t h = 0xcbf29ce484222325ull;
        for (unsigned char c : request) {
            h ^= c;
            h *= 0x100000001b3ull;
        }
        return h;
    }

    int64_t serviceNsFor(std::string_view) const override
    {
        return 1000;
    }

    apps::AppProfile profile() const override { return {}; }

  private:
    std::string name_ = "hotpath";
};

/** Append-only ByteStream over a byte vector, for pre-encoding the
 * burst frames once, before any counter snapshot. */
class VecStream final : public net::ByteStream {
  public:
    explicit VecStream(std::vector<uint8_t>& out) : out_(out) {}

    ssize_t readSome(void*, size_t) override { return -1; }

    ssize_t
    writeSome(const void* buf, size_t len) override
    {
        const uint8_t* p = static_cast<const uint8_t*>(buf);
        out_.insert(out_.end(), p, p + len);
        return static_cast<ssize_t>(len);
    }

  private:
    std::vector<uint8_t>& out_;
};

struct Counters {
    uint64_t allocs = 0;
    uint64_t notifies = 0;
    uint64_t writes = 0;
    uint64_t wakes = 0;

    static Counters
    snapshot()
    {
        Counters c;
        c.allocs = util::probe::value(util::probe::kHeapAllocs);
        c.notifies = util::probe::value(util::probe::kQueueNotifies);
        c.writes = util::probe::value(util::probe::kRespWrites);
        c.wakes = util::probe::value(util::probe::kEventfdWakes);
        return c;
    }
};

struct ModeResult {
    std::string mode;
    uint64_t requests = 0;
    double allocsPerReq = 0.0;
    double notifiesPerReq = 0.0;
    double writesPerReq = 0.0;
    double wakesPerReq = 0.0;

    void
    fill(const Counters& before, const Counters& after, uint64_t reqs)
    {
        requests = reqs;
        const double n = static_cast<double>(reqs);
        allocsPerReq =
            static_cast<double>(after.allocs - before.allocs) / n;
        notifiesPerReq =
            static_cast<double>(after.notifies - before.notifies) / n;
        writesPerReq =
            static_cast<double>(after.writes - before.writes) / n;
        wakesPerReq =
            static_cast<double>(after.wakes - before.wakes) / n;
    }
};

/** The stock end-to-end baseline: synchronous request/response over
 * one connection, a fresh payload string generated per request. */
bool
runThreadsStock(apps::App& app, uint64_t warmup, uint64_t measured,
                ModeResult& out)
{
    net::TcpServer server(app, /*workers=*/1);
    if (!server.listening())
        return false;
    server.start();
    const int fd = net::connectTcp("127.0.0.1", server.port());
    if (fd < 0) {
        server.stop();
        return false;
    }
    net::FdStream stream(fd);
    util::Rng rng(42);
    bool ok = true;
    Counters before;
    for (uint64_t i = 0; ok && i < warmup + measured; i++) {
        if (i == warmup)
            before = Counters::snapshot();
        core::Request req;
        req.id = i;
        req.payload = app.genRequest(rng);  // the baseline's alloc
        core::Response resp;
        ok = net::sendRequestFrame(stream, req) &&
            net::recvResponseFrame(stream, resp) ==
                net::WireResult::kOk;
    }
    const Counters after = Counters::snapshot();
    ::close(fd);
    server.stop();
    if (ok)
        out.fill(before, after, measured);
    return ok;
}

/** The optimized modes: frames pre-encoded once, then pipelined in
 * kBurst-deep bursts — the client's steady state is two syscalls per
 * burst and zero allocations, so the counters isolate the server. */
bool
runReactorBurst(apps::App& app, bool arena, bool batchResponses,
                uint64_t warmupBursts, uint64_t measuredBursts,
                ModeResult& out)
{
    net::IoOptions io;
    io.mode = net::IoMode::kReactor;
    io.payloadArena = arena;
    core::ServiceOptions sopts;
    sopts.batchResponses = batchResponses;
    // Sharded policy (one worker -> one shard): structurally the same
    // single queue, but with the batched pop enabled — kSingleQueue
    // deliberately keeps the baseline's scalar pop (batchMax forced
    // to 1), which would serialize responses into runs of one and
    // hide the coalescing this mode exists to measure.
    core::PortOptions popts;
    popts.policy = core::QueuePolicy::kSharded;
    net::TcpServer server(app, /*workers=*/1, 0, true, popts, sopts,
                          io);
    if (!server.listening())
        return false;
    server.start();
    const int fd = net::connectTcp("127.0.0.1", server.port());
    if (fd < 0) {
        server.stop();
        return false;
    }

    std::vector<uint8_t> burst;
    {
        VecStream vs(burst);
        core::Request req;
        req.payload = std::string(kPayload);
        for (unsigned i = 0; i < kBurst; i++) {
            req.id = i;
            net::sendRequestFrame(vs, req);
        }
    }
    std::vector<uint8_t> rx(kBurst * net::kResponseFrameBytes);

    net::FdStream stream(fd);
    const auto doBurst = [&] {
        return net::writeFull(stream, burst.data(), burst.size()) &&
            net::readFull(stream, rx.data(), rx.size());
    };

    bool ok = true;
    for (uint64_t b = 0; ok && b < warmupBursts; b++)
        ok = doBurst();
    const Counters before = Counters::snapshot();
    for (uint64_t b = 0; ok && b < measuredBursts; b++)
        ok = doBurst();
    const Counters after = Counters::snapshot();
    ::close(fd);
    server.stop();
    if (ok)
        out.fill(before, after, measuredBursts * kBurst);
    return ok;
}

}  // namespace

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    util::probe::setEnabled(true);
    bench::printHeader(
        "Hot-path microbench: allocations and syscalls per request");

    const uint64_t warmup_bursts = s.fast ? 20 : 50;
    const uint64_t measured_bursts = s.fast ? 50 : 200;
    const uint64_t stock_warmup = s.fast ? 300 : 1000;
    const uint64_t stock_measured = s.fast ? 2000 : 10000;

    HotpathApp app;
    std::vector<ModeResult> modes;
    bool ok = true;
    {
        ModeResult m;
        m.mode = "threads_stock";
        ok = runThreadsStock(app, stock_warmup, stock_measured, m);
        modes.push_back(m);
    }
    struct BurstSpec {
        const char* mode;
        bool arena;
        bool batch;
    };
    const BurstSpec specs[] = {
        {"reactor_string", false, true},
        {"reactor_arena", true, true},
        {"reactor_perframe", true, false},
    };
    for (const BurstSpec& spec : specs) {
        if (!ok)
            break;
        ModeResult m;
        m.mode = spec.mode;
        ok = runReactorBurst(app, spec.arena, spec.batch,
                             warmup_bursts, measured_bursts, m);
        modes.push_back(m);
    }
    if (!ok) {
        TB_LOG_ERROR("microbench_hotpath: a mode failed to run");
        return 1;
    }

    const bool hook = util::probe::allocHookActive();
    std::printf("\nper request (%s; burst depth %u):\n",
                hook ? "operator-new hook active"
                     : "alloc hook compiled out under sanitizer — "
                       "alloc column reads 0",
                kBurst);
    std::printf("  %-18s %10s %10s %10s %10s %9s\n", "mode", "allocs",
                "notifies", "wr-sysc", "wakes", "reqs");
    for (const ModeResult& m : modes) {
        std::printf("  %-18s %10.3f %10.3f %10.3f %10.3f %9llu\n",
                    m.mode.c_str(), m.allocsPerReq, m.notifiesPerReq,
                    m.writesPerReq, m.wakesPerReq,
                    static_cast<unsigned long long>(m.requests));
    }

    // The two headline ratios, derived from the table.
    const ModeResult& arena_mode = modes[2];
    const ModeResult& perframe = modes[3];
    const double coalesce_ratio = arena_mode.writesPerReq > 0.0
        ? perframe.writesPerReq / arena_mode.writesPerReq
        : 0.0;
    std::printf("\n  write coalescing: %.3f -> %.3f syscalls/req "
                "(%.1fx fewer); arena allocs/req %.3f (baseline "
                "%.3f)\n",
                perframe.writesPerReq, arena_mode.writesPerReq,
                coalesce_ratio, arena_mode.allocsPerReq,
                modes[0].allocsPerReq);

    bench::JsonWriter json;
    json.beginObject();
    json.str("figure", "microbench_hotpath");
    json.str("git_rev", bench::gitRevision());
    json.boolean("alloc_hook_active", hook);
    json.beginObject("config");
    json.num("burst", kBurst);
    json.num("measured_bursts",
             static_cast<double>(measured_bursts));
    json.num("payload_bytes",
             static_cast<double>(sizeof(kPayload) - 1));
    json.boolean("fast", s.fast);
    json.endObject();
    json.beginArray("modes");
    for (const ModeResult& m : modes) {
        json.beginObject();
        json.str("mode", m.mode);
        json.num("requests", static_cast<double>(m.requests));
        json.num("allocs_per_req", m.allocsPerReq);
        json.num("notifies_per_req", m.notifiesPerReq);
        json.num("resp_writes_per_req", m.writesPerReq);
        json.num("eventfd_wakes_per_req", m.wakesPerReq);
        json.endObject();
    }
    json.endArray();
    json.beginObject("summary");
    json.num("coalescing_write_ratio", coalesce_ratio);
    json.num("arena_allocs_per_req", arena_mode.allocsPerReq);
    json.num("baseline_allocs_per_req", modes[0].allocsPerReq);
    json.endObject();
    json.endObject();
    if (bench::writeTextFile("BENCH_microbench_hotpath.json",
                             json.text()))
        std::printf("\n  wrote BENCH_microbench_hotpath.json\n");
    return 0;
}
