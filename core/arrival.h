#ifndef TAILBENCH_CORE_ARRIVAL_H_
#define TAILBENCH_CORE_ARRIVAL_H_

/**
 * @file
 * The arrival-schedule seam: one pluggable object that owns "when does
 * the next request arrive", shared by every harness family —
 * LoadClient (wall-clock ns), SimHarness (virtual ns), and
 * queueing::simulateMgn (virtual ns). The paper's methodology is
 * open-loop Poisson; real traffic is bursty and diurnal, and studies
 * such as TailBench++ need heterogeneous load shapes, so the process
 * is a seam rather than an assumption baked into three generators.
 *
 * Contract:
 *   - Deterministic and seeded: all randomness is drawn from the
 *     caller-supplied util::Rng, so a fixed seed reproduces the exact
 *     schedule (and the caller may interleave other draws, e.g.
 *     payload generation, exactly as the pre-seam generators did).
 *   - Incremental and absolute: reset(originNs) plants the schedule
 *     cursor; each nextArrivalNs() advances it and returns the next
 *     absolute arrival time in ns. Units are whatever the caller's
 *     clock uses — wall-clock or virtual time — because the process
 *     only ever adds gaps to its origin.
 *   - Equal mean load: every implementation is parameterized by a
 *     target mean rate (qps) and converges to it over the run, so
 *     processes are comparable at equal offered load; only the
 *     higher moments (burstiness, modulation) differ.
 *
 * The Poisson implementation reproduces the pre-seam schedules
 * bit-identically (same accumulation arithmetic, same single
 * exponential draw per arrival) — regression safety for every
 * existing figure. scripts/tb_lint.py enforces that interarrival
 * sampling happens here and nowhere else (rule `arrival-seam`).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tb::core {

class ArrivalProcess {
  public:
    virtual ~ArrivalProcess();

    /** Plants the schedule at @p originNs: the next arrival is
     * originNs + first gap. May be called again to restart. */
    virtual void reset(double originNs);

    /** Advances the schedule and returns the next absolute arrival
     * time (ns, double: callers pick their own truncation so legacy
     * schedules stay bit-identical). Draws only from @p rng. */
    virtual double nextArrivalNs(util::Rng& rng) = 0;

    /** Process name for logs and reports ("poisson", "bursts", ...). */
    virtual const char* name() const = 0;

  protected:
    double cursor_ = 0.0;
};

/** Which ArrivalProcess to build; selected via TAILBENCH_ARRIVAL. */
enum class ArrivalKind {
    kPoisson,  // exponential gaps — the paper's open-loop baseline
    kBursts,   // MMPP-style on/off: bursts at ratio*qps, idle valleys
    kDiurnal,  // sinusoidal rate modulation around qps
    kTrace,    // replayed interarrival gaps from a file
};

const char* arrivalKindName(ArrivalKind kind);

/**
 * Arrival-process selection + per-process knobs. The shape knobs are
 * scale-free (expressed in expected-arrival counts or ratios, not
 * seconds) so one spec stresses any qps equally.
 */
struct ArrivalSpec {
    ArrivalKind kind = ArrivalKind::kPoisson;

    // -- bursts (MMPP on/off) --
    /** Burst-phase rate as a multiple of the mean rate (> 1). */
    double burstRatio = 4.0;
    /** Fraction of time spent in the burst phase (0 < duty < 1, and
     * duty * ratio < 1 so the off phase keeps a positive rate). */
    double burstDuty = 0.2;
    /** Mean burst length in expected arrivals at the burst rate. */
    double burstLen = 64.0;

    // -- diurnal (sinusoidal modulation) --
    /** Peak-to-mean amplitude in (0, 1): rate swings qps*(1 +/- amp). */
    double diurnalAmp = 0.5;
    /** Modulation period in expected arrivals at the mean rate. */
    double periodReqs = 2000.0;

    // -- trace --
    /** File of interarrival gaps in ns, one per line ('#' comments);
     * gaps are normalized to the target mean rate and replayed
     * cyclically. Unreadable/empty falls back to Poisson (warns). */
    std::string tracePath;

    /** Reads TAILBENCH_ARRIVAL and the TAILBENCH_ARRIVAL_* shape
     * knobs through the blessed util/env.h seam. */
    static ArrivalSpec fromEnv();
};

/**
 * Builds the process for @p spec at mean rate @p qps (arrivals/sec).
 * Invalid shape knobs are clamped with a warning; a trace that cannot
 * be loaded degrades to Poisson with a warning. Never returns null.
 */
std::unique_ptr<ArrivalProcess> makeArrivalProcess(const ArrivalSpec& spec,
                                                   double qps);

/**
 * Convenience for offline consumers (trace generation, tests): emits
 * @p n absolute arrival times starting from @p originNs.
 */
std::vector<double> emitSchedule(ArrivalProcess& process, util::Rng& rng,
                                 uint64_t n, double originNs);

}  // namespace tb::core

#endif  // TAILBENCH_CORE_ARRIVAL_H_
