#include "net/server_harness.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "net/wire.h"
#include "util/alloc_probe.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/logging.h"

namespace tb::net {

namespace {

/** Initial connection-reader pool size. Persistent connections occupy
 * a reader for their whole lifetime, one-shot connections only while
 * their single frame is read; the accept loop grows the pool whenever
 * live connections outnumber readers, so the threads backend is a
 * true thread-per-connection server at any scale (and fig10 measures
 * exactly that growth against the reactor's fixed pool). */
constexpr unsigned kConnReaders = 4;

/** SOMAXCONN, not a hand-picked constant: fig10 opens thousands of
 * connections back-to-back, and a shorter backlog drops SYNs before
 * the sweep starts. The kernel clamps to net.core.somaxconn either
 * way. */
constexpr int kListenBacklog = SOMAXCONN;

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/** RST on close: skips TIME_WAIT, which would otherwise pin one
 * ephemeral port per request for 60s under the per-request-connection
 * transport. */
void
setLingerRst(int fd)
{
    struct linger lg;
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

}  // namespace

uint16_t
parsePort(const char* s, const char* what)
{
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 1 || v > 65535) {
        TB_LOG_WARN("%s: invalid port \"%s\" ignored (want 1..65535)",
                    what, s);
        return 0;
    }
    return static_cast<uint16_t>(v);
}

int
connectTcp(const std::string& host, uint16_t port)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    // AF_UNSPEC, not AF_INET: on v6-first hosts `localhost` can
    // resolve only to ::1, and pinning v4 made such hosts unreachable.
    // The loop below already tries every returned family in order.
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    const std::string port_str = std::to_string(port);
    if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0)
        return -1;
    int fd = -1;
    for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd >= 0)
        setNoDelay(fd);
    return fd;
}

// ------------------------------------------------------------ TcpServer

/**
 * One accepted connection. `outstanding` counts requests registered
 * by the reader but not yet responded to; the connection is closed by
 * whoever makes (eof && outstanding == 0) true — the reader for an
 * idle end-of-stream, the last responding worker otherwise. The
 * close-predicate state is TB_GUARDED_BY(mu), so that invariant is
 * compile-checked, not just argued.
 */
struct TcpServer::Conn {
    Conn(int fd_in, uint64_t serial_in) : fd(fd_in), serial(serial_in)
    {
    }
    ~Conn()
    {
        // Destruction implies sole ownership (last shared_ptr), but
        // the lock keeps the guarded read visible to the analysis.
        util::MutexLock lock(mu);
        if (!closed && fd >= 0)
            ::close(fd);
    }

    /** The descriptor itself is immutable (close() does not reset
     * it); `closed` under mu says whether it is still valid. */
    const int fd;
    /** Routing key (Request::ctx): unique per accepted connection, so
     * responses find their way home even when separate clients
     * generate overlapping request ids. */
    const uint64_t serial;
    util::Mutex mu;  // serializes response writes and state changes
    uint64_t outstanding TB_GUARDED_BY(mu) = 0;
    bool eof TB_GUARDED_BY(mu) = false;
    bool closed TB_GUARDED_BY(mu) = false;
};

class TcpServer::Port final : public core::ServerPort {
  public:
    Port(TcpServer& server, const core::PortOptions& opts)
        : pool_(opts), server_(server)
    {
    }

    bool
    recvReq(core::Request& out) override
    {
        return pool_.pop(out);
    }

    size_t
    recvReqBatch(std::vector<core::Request>& out, size_t max) override
    {
        return pool_.popBatch(out, max);
    }

    void
    bindWorker(unsigned worker) override
    {
        pool_.bind(worker);
    }

    void
    sendResp(core::Response&& resp) override
    {
        server_.sendResponse(resp);
    }

    void
    sendRespBatch(std::vector<core::Response>& resps) override
    {
        server_.sendResponseBatch(resps);
    }

    /** The per-connection teardown (FIN after the last response) is
     * what ends the client's stream; nothing further to close. */
    void closeResponses() override {}

    /** Request dispatch (single or sharded per core::PortOptions);
     * connection serials are the placement key, so one connection's
     * requests stay on one worker's shard. */
    core::RequestPool pool_;
    util::Mutex map_mu_;
    /** Conn::serial -> connection; inserted at accept, erased at
     * connection close. */
    std::unordered_map<uint64_t, std::shared_ptr<Conn>> routes_
        TB_GUARDED_BY(map_mu_);

  private:
    TcpServer& server_;
};

TcpServer::TcpServer(apps::App& app, unsigned workers, uint16_t port,
                     bool loopbackOnly,
                     const core::PortOptions& portOpts,
                     const core::ServiceOptions& svcOpts,
                     const IoOptions& io)
    : io_(io),
      port_obj_(new Port(*this, core::resolveShards(portOpts, workers))),
      service_(
          new core::ServiceLoop(*port_obj_, app, workers, svcOpts))
{
    // Externally reachable servers (tb_net_server) listen dual-stack:
    // an AF_INET6 socket bound to :: with IPV6_V6ONLY off accepts
    // both ::1 (what `localhost` resolves to first on v6-first hosts)
    // and, v4-mapped, any v4 address — so a remote client's first
    // connect attempt succeeds whichever family its resolver prefers.
    // Loopback-only in-process servers stay AF_INET: their own client
    // transports dial 127.0.0.1, and a ::1-bound v6 socket would
    // refuse v4 loopback (v4-mapped acceptance needs the :: bind).
    // The fallback covers the whole v6 attempt — on hosts with v6
    // disabled at runtime (disable_ipv6 sysctl, common in containers)
    // socket(AF_INET6) still succeeds and only bind() fails, and that
    // must land on the v4 path, not kill the server.
    const auto tryListen = [&](bool v6) {
        const int fd =
            ::socket(v6 ? AF_INET6 : AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        struct sockaddr_storage addr;
        std::memset(&addr, 0, sizeof(addr));
        socklen_t len;
        if (v6) {
            int off = 0;
            if (::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &off,
                             sizeof(off)) != 0) {
                ::close(fd);
                return -1;
            }
            auto* a6 = reinterpret_cast<struct sockaddr_in6*>(&addr);
            a6->sin6_family = AF_INET6;
            a6->sin6_addr = in6addr_any;
            a6->sin6_port = htons(port);
            len = sizeof(struct sockaddr_in6);
        } else {
            auto* a4 = reinterpret_cast<struct sockaddr_in*>(&addr);
            a4->sin_family = AF_INET;
            a4->sin_addr.s_addr =
                htonl(loopbackOnly ? INADDR_LOOPBACK : INADDR_ANY);
            a4->sin_port = htons(port);
            len = sizeof(struct sockaddr_in);
        }
        if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   len) != 0 ||
            ::listen(fd, kListenBacklog) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    };
    if (!loopbackOnly)
        listen_fd_ = tryListen(/*v6=*/true);
    if (listen_fd_ < 0)
        listen_fd_ = tryListen(/*v6=*/false);
    if (listen_fd_ < 0)
        return;
    if (io_.mode == IoMode::kReactor) {
        reactor_pool_ = std::make_unique<ReactorPool>(
            port_obj_->pool_, io_.reactors, io_.payloadArena);
        if (reactor_pool_->reactorCount() == 0) {
            // epoll/eventfd setup failed — refuse to half-start.
            TB_LOG_ERROR("tcp server: reactor backend unavailable");
            ::close(listen_fd_);
            listen_fd_ = -1;
            return;
        }
    }
    struct sockaddr_storage addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<struct sockaddr*>(&addr),
                      &len) == 0)
        port_ = ntohs(
            addr.ss_family == AF_INET6
                ? reinterpret_cast<struct sockaddr_in6*>(&addr)
                      ->sin6_port
                : reinterpret_cast<struct sockaddr_in*>(&addr)
                      ->sin_port);
}

TcpServer::~TcpServer()
{
    stop();
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

unsigned
TcpServer::workers() const
{
    return service_->workers();
}

unsigned
TcpServer::pinnedWorkers() const
{
    return service_->pinnedWorkers();
}

unsigned
TcpServer::reactorCount() const
{
    return reactor_pool_ ? reactor_pool_->reactorCount() : 0;
}

void
TcpServer::start()
{
    if (started_ || listen_fd_ < 0)
        return;
    started_ = true;
    service_->start();
    if (reactor_pool_) {
        reactor_pool_->start(listen_fd_);
        return;
    }
    for (unsigned r = 0; r < kConnReaders; r++)
        reader_threads_.emplace_back([this] { readerLoop(); });
    accept_thread_ = std::thread([this] { acceptLoop(); });
}

void
TcpServer::stop()
{
    if (!started_)
        return;
    started_ = false;

    if (reactor_pool_) {
        // Same strictly downstream order as below, reactor-shaped:
        // beginShutdown returns only once no reactor will push into
        // the pool again, so closing the pool cannot race a push;
        // finish() after the workers drain flushes the responses
        // those workers produced.
        ::shutdown(listen_fd_, SHUT_RDWR);
        reactor_pool_->beginShutdown();
        port_obj_->pool_.close();
        service_->join();
        reactor_pool_->finish();
        return;
    }

    // Wake accept(), then the readers, then the workers — strictly
    // downstream order, so every queued request still drains.
    ::shutdown(listen_fd_, SHUT_RDWR);
    accept_thread_.join();
    pending_.close();
    {
        util::MutexLock lock(conns_mu_);
        for (const std::shared_ptr<Conn>& conn : conns_) {
            util::MutexLock cl(conn->mu);
            if (!conn->closed)
                ::shutdown(conn->fd, SHUT_RD);
        }
    }
    for (std::thread& t : reader_threads_)
        t.join();
    reader_threads_.clear();
    port_obj_->pool_.close();
    service_->join();
    {
        util::MutexLock lock(conns_mu_);
        conns_.clear();  // Conn dtor closes any leftover fd
    }
    {
        util::MutexLock lock(port_obj_->map_mu_);
        port_obj_->routes_.clear();
    }
}

void
TcpServer::acceptLoop()
{
    bool warned_fd_limit = false;
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            // Transient per-connection failures must not kill the
            // accept loop: an RST-ed pending connection
            // (ECONNABORTED) is routine with the per-request
            // transport's SO_LINGER-0 closes, and fd exhaustion
            // (EMFILE/ENFILE) is expected under deliberate-overload
            // probes — back off briefly and keep serving.
            if (errno == EINTR || errno == ECONNABORTED ||
                errno == EPROTO)
                continue;
            if (errno == EMFILE || errno == ENFILE) {
                if (!warned_fd_limit) {
                    TB_LOG_WARN("tcp server: out of file "
                                "descriptors; throttling accepts");
                    warned_fd_limit = true;
                }
                ::usleep(1000);
                continue;
            }
            return;  // listener shut down
        }
        setNoDelay(fd);
        auto conn = std::make_shared<Conn>(fd, next_serial_++);
        {
            util::MutexLock lock(conns_mu_);
            conns_.insert(conn);
        }
        {
            util::MutexLock lock(port_obj_->map_mu_);
            port_obj_->routes_[conn->serial] = conn;
        }
        // Elastic thread-per-connection: keep readers >= live
        // connections, since a persistent connection pins its reader
        // until close. Spawn *before* queueing the connection so it
        // can never wait behind N busy readers. Only this thread
        // grows the pool, and stop() joins it before joining the
        // readers, so the vector needs no lock.
        const size_t live = ++conns_live_;
        while (reader_threads_.size() < live)
            reader_threads_.emplace_back([this] { readerLoop(); });
        pending_.push(std::move(conn));
    }
}

void
TcpServer::readerLoop()
{
    std::shared_ptr<Conn> conn;
    while (pending_.pop(conn)) {
        readConnection(conn);
        conn.reset();
    }
}

void
TcpServer::readConnection(const std::shared_ptr<Conn>& conn)
{
    FdStream stream(conn->fd);
    core::Request req;
    for (;;) {
        const WireResult res = recvRequestFrame(stream, req);
        if (res == WireResult::kOk) {
            req.ctx = conn->serial;
            {
                util::MutexLock lock(conn->mu);
                conn->outstanding++;
            }
            port_obj_->pool_.push(std::move(req));
            continue;
        }
        if (res == WireResult::kBadFrame)
            TB_LOG_WARN("tcp server: dropping connection after a "
                        "malformed frame");
        break;
    }
    bool close_now;
    {
        util::MutexLock lock(conn->mu);
        conn->eof = true;
        close_now = conn->outstanding == 0 && !conn->closed;
    }
    if (close_now)
        closeConn(conn);
}

void
TcpServer::sendResponse(const core::Response& resp)
{
    if (reactor_pool_) {
        reactor_pool_->postResponse(resp);
        return;
    }
    std::shared_ptr<Conn> conn;
    {
        util::MutexLock lock(port_obj_->map_mu_);
        const auto it = port_obj_->routes_.find(resp.ctx);
        if (it != port_obj_->routes_.end())
            conn = it->second;
    }
    if (!conn) {
        TB_LOG_DEBUG("tcp server: response %llu has no connection",
                     static_cast<unsigned long long>(resp.id));
        return;
    }
    bool close_now = false;
    {
        util::MutexLock lock(conn->mu);
        if (!conn->closed) {
            util::probe::add(util::probe::kRespWrites);
            FdStream stream(conn->fd);
            if (!sendResponseFrame(stream, resp))
                TB_LOG_DEBUG("tcp server: response write failed "
                             "(peer gone?)");
        }
        conn->outstanding--;
        close_now = conn->eof && conn->outstanding == 0 &&
            !conn->closed;
    }
    if (close_now)
        closeConn(conn);
}

void
TcpServer::sendResponseBatch(std::vector<core::Response>& resps)
{
    if (reactor_pool_) {
        reactor_pool_->postResponseBatch(resps);
        return;
    }
    // Contiguous same-connection runs coalesce into one write each;
    // worker batches come off per-connection request streams, so a
    // batch is usually a single run.
    const size_t total = resps.size();
    size_t run_start = 0;
    for (size_t i = 1; i <= total; i++) {
        if (i < total && resps[i].ctx == resps[run_start].ctx)
            continue;
        sendResponseRun(&resps[run_start], i - run_start);
        run_start = i;
    }
    resps.clear();
}

void
TcpServer::sendResponseRun(const core::Response* rs, size_t n)
{
    std::shared_ptr<Conn> conn;
    {
        util::MutexLock lock(port_obj_->map_mu_);
        const auto it = port_obj_->routes_.find(rs[0].ctx);
        if (it != port_obj_->routes_.end())
            conn = it->second;
    }
    if (!conn) {
        TB_LOG_DEBUG("tcp server: %zu response(s) have no connection",
                     n);
        return;
    }
    // Response frames are fixed-size, so a whole run encodes into
    // per-thread reusable storage and leaves as one write.
    static thread_local std::vector<uint8_t> t_enc;
    const size_t bytes = n * kResponseFrameBytes;
    if (t_enc.size() < bytes)
        t_enc.resize(bytes);
    for (size_t i = 0; i < n; i++)
        encodeResponseFrame(t_enc.data() + i * kResponseFrameBytes,
                            rs[i]);
    bool close_now = false;
    {
        util::MutexLock lock(conn->mu);
        if (!conn->closed) {
            // Counts coalesced write calls (writeFull splits only on
            // a partial write of the tiny frame run, which is rare on
            // a blocking socket).
            util::probe::add(util::probe::kRespWrites);
            FdStream stream(conn->fd);
            if (!writeFull(stream, t_enc.data(), bytes))
                TB_LOG_DEBUG("tcp server: response write failed "
                             "(peer gone?)");
        }
        conn->outstanding -= n;
        close_now = conn->eof && conn->outstanding == 0 &&
            !conn->closed;
    }
    if (close_now)
        closeConn(conn);
}

void
TcpServer::closeConn(const std::shared_ptr<Conn>& conn)
{
    {
        util::MutexLock lock(conn->mu);
        if (conn->closed)
            return;
        conn->closed = true;
        // Orderly release: FIN after the last response is what the
        // client's recvResponse observes as end-of-stream.
        ::shutdown(conn->fd, SHUT_WR);
        ::close(conn->fd);
    }
    {
        util::MutexLock lock(port_obj_->map_mu_);
        port_obj_->routes_.erase(conn->serial);
    }
    conns_live_--;
    util::MutexLock lock(conns_mu_);
    conns_.erase(conn);
}

// -------------------------------------------------- TcpClientTransport

TcpClientTransport::TcpClientTransport(const std::string& host,
                                       uint16_t port)
    : fd_(connectTcp(host, port))
{
    if (fd_ < 0)
        TB_LOG_ERROR("loopback transport: connect to %s:%u failed",
                     host.c_str(), static_cast<unsigned>(port));
}

TcpClientTransport::~TcpClientTransport()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
TcpClientTransport::sendRequest(core::Request&& req)
{
    if (fd_ < 0)
        return;
    FdStream stream(fd_);
    if (!sendRequestFrame(stream, req))
        TB_LOG_WARN("loopback transport: request write failed");
}

bool
TcpClientTransport::recvResponse(core::Response& out)
{
    if (fd_ < 0)
        return false;
    FdStream stream(fd_);
    const WireResult res = recvResponseFrame(stream, out);
    if (res != WireResult::kOk) {
        if (res == WireResult::kBadFrame)
            TB_LOG_WARN("loopback transport: malformed response "
                        "frame");
        return false;
    }
    // The response-path wire cost belongs to sojourn: completion is
    // when the *client* has the response, not when the server wrote
    // it.
    out.timing.endNs = util::monotonicNs();
    return true;
}

void
TcpClientTransport::finishSend()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

// ------------------------------------------------ MultiConnTcpTransport

MultiConnTcpTransport::MultiConnTcpTransport(const std::string& host,
                                             uint16_t port,
                                             unsigned connections)
{
    const unsigned n = connections == 0 ? 1 : connections;
    fds_.reserve(n);
    for (unsigned c = 0; c < n; c++)
        fds_.push_back(connectTcp(host, port));
    live_ = std::make_unique<std::atomic<bool>[]>(fds_.size());
    for (size_t k = 0; k < fds_.size(); k++)
        live_[k].store(fds_[k] >= 0, std::memory_order_relaxed);
    if (!connected())
        TB_LOG_ERROR("multi-conn transport: connect %u x %s:%u failed",
                     n, host.c_str(), static_cast<unsigned>(port));
}

MultiConnTcpTransport::~MultiConnTcpTransport()
{
    for (int fd : fds_) {
        if (fd >= 0)
            ::close(fd);
    }
}

bool
MultiConnTcpTransport::connected() const
{
    for (int fd : fds_) {
        if (fd < 0)
            return false;
    }
    return !fds_.empty();
}

void
MultiConnTcpTransport::sendRequest(core::Request&& req)
{
    // Round-robin placement across the *live* connections; the
    // server's sharded port then keys on the connection serial, so
    // with one connection per worker this is end-to-end request
    // striping. Skipping retired slots keeps the full offered load on
    // the surviving connections instead of silently dropping 1/N of
    // it after one connection dies.
    const size_t n = fds_.size();
    for (size_t tries = 0; tries < n; tries++) {
        const size_t k = rr_++ % n;
        if (!live_[k].load(std::memory_order_relaxed))
            continue;
        FdStream stream(fds_[k]);
        if (sendRequestFrame(stream, req))
            return;
        live_[k].store(false, std::memory_order_relaxed);
        TB_LOG_WARN("multi-conn transport: request write failed; "
                    "retiring connection %zu",
                    k);
    }
    TB_LOG_WARN("multi-conn transport: no live connections; request "
                "%llu dropped",
                static_cast<unsigned long long>(req.id));
}

bool
MultiConnTcpTransport::recvResponse(core::Response& out)
{
    for (;;) {
        pfds_.clear();
        idx_.clear();
        for (size_t k = 0; k < fds_.size(); k++) {
            if (!live_[k].load(std::memory_order_relaxed) ||
                fds_[k] < 0)
                continue;
            struct pollfd p;
            p.fd = fds_[k];
            p.events = POLLIN;
            p.revents = 0;
            pfds_.push_back(p);
            idx_.push_back(k);
        }
        if (pfds_.empty())
            return false;  // every connection reached end of stream
        const int n = ::poll(pfds_.data(),
                             static_cast<nfds_t>(pfds_.size()), -1);
        if (n <= 0) {
            if (n < 0 && errno != EINTR)
                return false;
            continue;
        }
        for (size_t k = 0; k < pfds_.size(); k++) {
            if (!(pfds_[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            FdStream stream(pfds_[k].fd);
            const WireResult res = recvResponseFrame(stream, out);
            if (res == WireResult::kOk) {
                // Completion is client-side receipt (see
                // TcpClientTransport).
                out.timing.endNs = util::monotonicNs();
                return true;
            }
            if (res == WireResult::kBadFrame)
                TB_LOG_WARN("multi-conn transport: malformed response "
                            "frame");
            // EOF (or poisoned): retire it.
            live_[idx_[k]].store(false, std::memory_order_relaxed);
        }
    }
}

void
MultiConnTcpTransport::finishSend()
{
    for (int fd : fds_) {
        if (fd >= 0)
            ::shutdown(fd, SHUT_WR);
    }
}

// ----------------------------------------------- PerRequestTcpTransport

PerRequestTcpTransport::PerRequestTcpTransport(const std::string& host,
                                               uint16_t port)
    : host_(host), port_(port)
{
}

void
PerRequestTcpTransport::sendRequest(core::Request&& req)
{
    int fd = connectTcp(host_, port_);
    if (fd < 0) {
        TB_LOG_WARN("networked transport: connect to %s:%u failed; "
                    "request %llu dropped",
                    host_.c_str(), static_cast<unsigned>(port_),
                    static_cast<unsigned long long>(req.id));
        return;
    }
    FdStream stream(fd);
    if (!sendRequestFrame(stream, req)) {
        TB_LOG_WARN("networked transport: request write failed");
        ::close(fd);
        return;
    }
    // One frame per connection: FIN right behind it lets the server's
    // reader finish with this connection without waiting for teardown.
    ::shutdown(fd, SHUT_WR);
    inflight_.push(std::move(fd));
}

bool
PerRequestTcpTransport::recvResponse(core::Response& out)
{
    for (;;) {
        // Merge newly sent sockets into the poll set; when nothing is
        // outstanding, block for the next send (or end of stream).
        int fd = -1;
        while (inflight_.tryPop(fd))
            pending_.push_back(fd);
        if (pending_.empty()) {
            if (!inflight_.pop(fd))
                return false;
            pending_.push_back(fd);
            continue;  // re-merge: more may have queued meanwhile
        }

        std::vector<struct pollfd> pfds(pending_.size());
        for (size_t k = 0; k < pending_.size(); k++) {
            pfds[k].fd = pending_[k];
            pfds[k].events = POLLIN;
            pfds[k].revents = 0;
        }
        // Short timeout so sockets sent while we were polling join
        // the set promptly.
        const int n = ::poll(pfds.data(),
                             static_cast<nfds_t>(pfds.size()), 1);
        if (n <= 0)
            continue;
        for (size_t k = 0; k < pfds.size(); k++) {
            if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            fd = pending_[k];
            pending_.erase(pending_.begin() +
                           static_cast<long>(k));
            FdStream stream(fd);
            const WireResult res = recvResponseFrame(stream, out);
            out.timing.endNs = util::monotonicNs();
            setLingerRst(fd);
            ::close(fd);
            if (res == WireResult::kOk)
                return true;
            TB_LOG_WARN("networked transport: response missing "
                        "(server closed early?)");
            break;  // indices shifted; rebuild the poll set
        }
    }
}

void
PerRequestTcpTransport::finishSend()
{
    inflight_.close();
}

// ------------------------------------------------------------ harnesses

core::RunResult
LoopbackHarness::run(apps::App& app, const core::HarnessConfig& cfg)
{
    if (cfg.warmupRequests + cfg.measuredRequests == 0 ||
        cfg.qps <= 0.0)
        return core::RunResult{};

    const unsigned workers =
        cfg.workerThreads == 0 ? 1 : cfg.workerThreads;
    core::ServiceOptions sopts;
    sopts.pinWorkers = cfg.pinWorkers;
    TcpServer server(app, workers, 0, true, opts_.port, sopts,
                     opts_.useEnvIo ? ioOptionsFromEnv() : opts_.io);
    if (!server.listening()) {
        TB_LOG_ERROR("loopback harness: could not listen on "
                     "127.0.0.1");
        return core::RunResult{};
    }
    server.start();
    // connections == 0: one per server worker (TailBench++-style).
    const unsigned conns =
        opts_.connections == 0 ? workers : opts_.connections;
    std::unique_ptr<core::Transport> transport;
    bool connected = false;
    if (conns <= 1) {
        auto t = std::make_unique<TcpClientTransport>("127.0.0.1",
                                                      server.port());
        connected = t->connected();
        transport = std::move(t);
    } else {
        auto t = std::make_unique<MultiConnTcpTransport>(
            "127.0.0.1", server.port(), conns);
        connected = t->connected();
        transport = std::move(t);
    }
    if (!connected) {
        server.stop();
        return core::RunResult{};
    }
    core::LoadClient client;
    core::RunResult result = client.run(app, cfg, *transport);
    server.stop();
    result.serviceWorkers = server.workers();
    result.pinnedWorkers = server.pinnedWorkers();
    TB_LOG_DEBUG("loopback run: app=%s conns=%u queue=%s offered=%.0f "
                 "achieved=%.0f qps p95=%.3f ms",
                 app.name().c_str(), conns,
                 core::queuePolicyName(opts_.port.policy), cfg.qps,
                 result.achievedQps,
                 static_cast<double>(result.latency.sojourn.p95Ns) /
                     1e6);
    return result;
}

NetworkedHarness::NetworkedHarness() : host_("127.0.0.1")
{
    // Through the blessed env seam (util/env.h): envPort is the same
    // strict 1..65535 parse as parsePort, returning 0 (self-serve
    // mode) with a warning on malformed values instead of silently
    // flipping the configuration.
    if (const char* h = util::envString("TAILBENCH_NET_HOST"))
        host_ = h;
    port_ = util::envPort("TAILBENCH_NET_PORT");
}

NetworkedHarness::NetworkedHarness(const core::PortOptions& port)
    : NetworkedHarness()
{
    port_opts_ = port;
}

core::RunResult
NetworkedHarness::run(apps::App& app, const core::HarnessConfig& cfg)
{
    if (cfg.warmupRequests + cfg.measuredRequests == 0 ||
        cfg.qps <= 0.0)
        return core::RunResult{};

    // With no external server configured, serve from this process on
    // an ephemeral port — still real sockets, still per-request
    // connections; an external tb_net_server (possibly on another
    // host) takes its place when TAILBENCH_NET_PORT is set.
    std::unique_ptr<TcpServer> server;
    std::string host = host_;
    uint16_t port = port_;
    if (port == 0) {
        core::ServiceOptions sopts;
        sopts.pinWorkers = cfg.pinWorkers;
        server.reset(new TcpServer(app, cfg.workerThreads, 0, true,
                                   port_opts_, sopts,
                                   ioOptionsFromEnv()));
        if (!server->listening()) {
            TB_LOG_ERROR("networked harness: could not listen on "
                         "127.0.0.1");
            return core::RunResult{};
        }
        server->start();
        host = "127.0.0.1";
        port = server->port();
    }
    PerRequestTcpTransport transport(host, port);
    core::LoadClient client;
    core::RunResult result = client.run(app, cfg, transport);
    if (server) {
        server->stop();
        result.serviceWorkers = server->workers();
        result.pinnedWorkers = server->pinnedWorkers();
    }
    TB_LOG_DEBUG("networked run: app=%s offered=%.0f achieved=%.0f "
                 "qps p95=%.3f ms",
                 app.name().c_str(), cfg.qps, result.achievedQps,
                 static_cast<double>(result.latency.sojourn.p95Ns) /
                     1e6);
    return result;
}

}  // namespace tb::net
