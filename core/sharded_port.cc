#include "core/sharded_port.h"

#include <algorithm>

namespace tb::core {

namespace {

/**
 * Steal re-scan period. A worker whose shard is empty blocks on its
 * own condition variable — producers only notify the shard they push
 * to, so work appearing on a *sibling* shard would not wake it. The
 * timed wait bounds that blindness: an idle worker re-scans victims
 * at this period. At saturation (the regime the sharding targets)
 * shards are never dry and this path is cold; off saturation the
 * worst added steal latency is one period.
 */
constexpr std::chrono::microseconds kStealRescan{200};

/** The calling worker's shard binding (ServiceLoop workers bind once,
 * before their first pop). Thread-local, so concurrently running
 * pools — e.g. back-to-back harness runs, or a TCP server next to an
 * in-process one — cannot see each other's bindings. */
thread_local unsigned t_bound_shard = 0;

}  // namespace

const char*
queuePolicyName(QueuePolicy policy)
{
    switch (policy) {
    case QueuePolicy::kSingleQueue:
        return "single";
    case QueuePolicy::kSharded:
        return "sharded";
    case QueuePolicy::kShardedSteal:
        return "sharded+steal";
    }
    return "?";
}

PortOptions
resolveShards(PortOptions opts, unsigned workers)
{
    const unsigned w = workers == 0 ? 1 : workers;
    if (opts.shards == 0 || opts.shards > w)
        opts.shards = w;
    return opts;
}

std::vector<std::unique_ptr<BlockingQueue<Request>>>
RequestPool::makeShards(QueuePolicy policy, unsigned shards)
{
    const unsigned n = policy == QueuePolicy::kSingleQueue
        ? 1
        : std::max(1u, shards);
    std::vector<std::unique_ptr<BlockingQueue<Request>>> v;
    v.reserve(n);
    for (unsigned s = 0; s < n; s++)
        v.emplace_back(new BlockingQueue<Request>());
    return v;
}

RequestPool::RequestPool(const PortOptions& opts)
    : policy_(opts.policy),
      steal_(opts.policy == QueuePolicy::kShardedSteal),
      batch_max_(opts.policy == QueuePolicy::kSingleQueue
                     ? 1
                     : std::max<size_t>(1, opts.batchMax)),
      shards_(makeShards(opts.policy, opts.shards))
{
}

void
RequestPool::bind(unsigned worker)
{
    t_bound_shard = worker % shardCount();
}

unsigned
RequestPool::boundShard() const
{
    return t_bound_shard % shardCount();
}

void
RequestPool::push(Request&& req)
{
    const unsigned s = placeShard(req, shardCount());
    shards_[s]->push(std::move(req));
}

void
RequestPool::pushBatch(std::vector<Request>& reqs)
{
    const size_t total = reqs.size();
    if (total == 0)
        return;
    const unsigned n = shardCount();
    // Place each request exactly once (ctx-affine, round-robin for
    // ctx == 0), then hand off maximal contiguous same-shard runs.
    size_t run_start = 0;
    unsigned run_shard = placeShard(reqs[0], n);
    for (size_t i = 1; i <= total; i++) {
        const unsigned s =
            i < total ? placeShard(reqs[i], n) : run_shard + 1;
        if (s == run_shard)
            continue;
        shards_[run_shard]->pushBatch(&reqs[run_start],
                                      i - run_start);
        run_start = i;
        run_shard = s;
    }
    reqs.clear();
}

unsigned
RequestPool::placeShard(const Request& req, unsigned shards)
{
    if (req.ctx != 0)
        return static_cast<unsigned>(req.ctx % shards);
    return static_cast<unsigned>(
        rr_.fetch_add(1, std::memory_order_relaxed) % shards);
}

bool
RequestPool::stealFrom(unsigned thief, Request& out)
{
    const unsigned n = shardCount();
    for (unsigned i = 1; i < n; i++) {
        if (shards_[(thief + i) % n]->tryPop(out))
            return true;
    }
    return false;
}

/** Batched steal: a backlogged victim yields a whole batch under one
 * lock, so stolen work gets the same wake/lock amortization the
 * owner's pop does. */
size_t
RequestPool::stealBatchFrom(unsigned thief, std::vector<Request>& out,
                            size_t max)
{
    const unsigned n = shardCount();
    for (unsigned i = 1; i < n; i++) {
        const size_t got =
            shards_[(thief + i) % n]->tryPopBatch(out, max);
        if (got > 0)
            return got;
    }
    return 0;
}

/**
 * Whether a steal-mode worker may exit: its own shard reported
 * kClosed, and every sibling is empty. Sound without a global lock
 * because close() happens only after producers are done — from then
 * on shard sizes are monotonically non-increasing, so per-shard
 * emptiness observations cannot be invalidated later.
 */
bool
RequestPool::finishedAfterClose(unsigned shard) const
{
    const unsigned n = shardCount();
    for (unsigned i = 1; i < n; i++) {
        if (shards_[(shard + i) % n]->size() != 0)
            return false;
    }
    return true;
}

bool
RequestPool::pop(Request& out)
{
    const unsigned own = boundShard();
    BlockingQueue<Request>& mine = *shards_[own];
    if (!steal_)
        return mine.pop(out);
    for (;;) {
        if (mine.tryPop(out))
            return true;
        if (stealFrom(own, out))
            return true;
        switch (mine.popFor(out, kStealRescan)) {
        case PopResult::kItem:
            return true;
        case PopResult::kTimeout:
            break;  // period elapsed: re-scan the victims
        case PopResult::kClosed:
            if (finishedAfterClose(own))
                return false;
            break;  // siblings still hold backlog: keep stealing
        }
    }
}

size_t
RequestPool::popBatch(std::vector<Request>& out, size_t max)
{
    out.clear();
    const size_t cap = std::min(std::max<size_t>(1, max), batch_max_);
    const unsigned own = boundShard();
    BlockingQueue<Request>& mine = *shards_[own];
    if (!steal_)
        return mine.popBatch(out, cap);
    // Steal mode: own shard first, then a batched steal from a
    // victim, then block on the own shard with the re-scan timeout —
    // the same block/steal/exit structure as the scalar pop.
    for (;;) {
        if (mine.tryPopBatch(out, cap) > 0)
            return out.size();
        if (stealBatchFrom(own, out, cap) > 0)
            return out.size();
        Request first;
        switch (mine.popFor(first, kStealRescan)) {
        case PopResult::kItem:
            out.push_back(std::move(first));
            if (cap > 1)
                mine.tryPopBatch(out, cap - 1);
            return out.size();
        case PopResult::kTimeout:
            break;  // period elapsed: re-scan the victims
        case PopResult::kClosed:
            if (finishedAfterClose(own))
                return 0;
            break;  // siblings still hold backlog: keep stealing
        }
    }
}

void
RequestPool::close()
{
    for (auto& shard : shards_)
        shard->close();
}

size_t
RequestPool::size() const
{
    size_t total = 0;
    for (const auto& shard : shards_)
        total += shard->size();
    return total;
}

}  // namespace tb::core
