#include "core/integrated_harness.h"

#include "core/client.h"
#include "core/service.h"
#include "core/transport.h"
#include "util/logging.h"

namespace tb::core {

RunResult
IntegratedHarness::run(apps::App& app, const HarnessConfig& cfg)
{
    const uint64_t total = cfg.warmupRequests + cfg.measuredRequests;
    if (total == 0 || cfg.qps <= 0.0)
        return RunResult{};

    const unsigned workers =
        cfg.workerThreads == 0 ? 1 : cfg.workerThreads;
    InProcessTransport transport(resolveShards(port_, workers));
    ServiceOptions sopts;
    sopts.pinWorkers = cfg.pinWorkers;
    ServiceLoop service(transport.serverPort(), app, workers, sopts);
    service.start();
    LoadClient client;
    RunResult result = client.run(app, cfg, transport);
    service.join();
    result.serviceWorkers = service.workers();
    result.pinnedWorkers = service.pinnedWorkers();

    TB_LOG_DEBUG("integrated run: app=%s offered=%.0f qps achieved=%.0f "
                 "qps threads=%u measured=%llu p95=%.3f ms",
                 app.name().c_str(), cfg.qps, result.achievedQps,
                 cfg.workerThreads == 0 ? 1 : cfg.workerThreads,
                 static_cast<unsigned long long>(
                     result.latency.sojourn.count),
                 static_cast<double>(result.latency.sojourn.p95Ns) /
                     1e6);
    return result;
}

}  // namespace tb::core
