/**
 * Negative compile test (ctest WILL_FAIL, Clang +
 * TAILBENCH_THREAD_SAFETY only): reading a TB_GUARDED_BY member
 * without its mutex must be rejected by -Werror=thread-safety. This
 * is the exact bug class the annotations exist to stop — a "quick
 * read" of shared state that happens to work until it doesn't.
 */

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
  public:
    int
    racyRead()
    {
        return value_;  // BUG under test: no MutexLock on mu_
    }

  private:
    tb::util::Mutex mu_;
    int value_ TB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int
main()
{
    Counter c;
    return c.racyRead();
}
