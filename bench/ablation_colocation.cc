/**
 * @file
 * Colocation ablation: tail latency vs. number of co-located batch
 * threads.
 *
 * Sec. II of the paper explains why datacenter servers idle at 5-30%
 * utilization: "uncontrolled sharing of cores, caches, and power causes
 * high and unpredictable tail latency degradation", so operators refuse
 * to backfill spare capacity with batch work. This driver measures that
 * degradation directly: a latency-critical app at a fixed 30% load,
 * sharing the machine's LLC and DRAM bandwidth with 0..6 batch
 * corunners.
 *
 * The discriminating result is the contrast between rows: moses (19.95
 * L3 MPKI in Table I) melts down, xapian (0.02 L3 MPKI) is nearly
 * immune, and silo sits in between — tiny absolute stall growth, but
 * its requests are so short that the *relative* service-time hit is
 * large and queueing amplifies it. This per-app spread is why
 * interference-aware schedulers (Bubble-Up/Heracles) and cache
 * partitioning (Ubik) need per-app sensitivity profiles rather than a
 * single colocation policy.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();

    // One memory-bound app, one cache-resident app, one in between.
    const std::vector<std::string> app_names = {"moses", "xapian",
                                                "silo"};
    const std::vector<unsigned> corunners = s.fast
        ? std::vector<unsigned>{0, 4}
        : std::vector<unsigned>{0, 1, 2, 4, 6};

    bench::printHeader(
        "Colocation ablation: p95 sojourn (ms) at 30% load vs. batch "
        "corunners (LLC + DRAM-bandwidth interference)");

    std::printf("%-10s", "app");
    for (unsigned n : corunners)
        std::printf(" %8u co", n);
    std::printf("   worst/clean\n");

    for (const auto& name : app_names) {
        auto app = bench::makeBenchApp(name, s);
        sim::SimHarness probe;
        const double sat =
            bench::calibrateSaturation(probe, *app, 1, s);
        const uint64_t budget = bench::requestBudget(name, s);

        std::printf("%-10s", name.c_str());
        double clean = 0.0;
        double worst = 0.0;
        for (unsigned n : corunners) {
            sim::MachineConfig mc;
            mc.batchCorunners = n;
            sim::SimHarness h(mc);
            const core::RunResult r = bench::measureAt(
                h, *app, 0.3 * sat, 1, budget, s.seed);
            const double p95 =
                static_cast<double>(r.latency.sojourn.p95Ns);
            if (n == 0)
                clean = p95;
            worst = std::max(worst, p95);
            std::printf(" %11s", bench::fmtMs(p95).c_str());
        }
        std::printf("   %9.2fx\n", clean > 0.0 ? worst / clean : 0.0);
    }
    std::printf(
        "(check: moses degrades worst by far — with enough corunners "
        "its 30%%-load point is pushed past saturation and p95 "
        "diverges; xapian, whose shared-cache footprint is tiny "
        "(Table I: 0.02 L3 MPKI), is nearly immune. silo's requests "
        "are so short that even a few hundred ns of extra memory "
        "stall time is a large relative service-time hit, which "
        "queueing then amplifies)\n");
    return 0;
}
