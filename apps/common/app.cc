#include "apps/common/app.h"

#include <stdexcept>

#include "apps/common/workloads.h"

namespace tb::apps {

App::~App() = default;

const std::vector<std::string>&
appNames()
{
    return syntheticAppNames();
}

std::unique_ptr<App>
makeApp(const std::string& name)
{
    std::unique_ptr<App> app = makeSyntheticApp(name);
    if (app == nullptr)
        throw std::invalid_argument("unknown TailBench app: " + name);
    return app;
}

}  // namespace tb::apps
