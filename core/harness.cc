#include "core/harness.h"

#include <algorithm>

#include "util/stats.h"

namespace tb::core {

Harness::~Harness() = default;

LatencySummary
summarizeNs(const std::vector<int64_t>& samples)
{
    LatencySummary s;
    s.count = samples.size();
    if (samples.empty())
        return s;
    std::vector<int64_t> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    s.meanNs = util::meanOf(sorted);
    s.p50Ns = util::percentileOfSorted(sorted, 50.0);
    s.p95Ns = util::percentileOfSorted(sorted, 95.0);
    s.p99Ns = util::percentileOfSorted(sorted, 99.0);
    return s;
}

RunResult
buildRunResult(std::vector<RequestTiming>&& timings, bool keepSamples)
{
    RunResult r;
    if (timings.empty())
        return r;
    std::sort(timings.begin(), timings.end(),
              [](const RequestTiming& a, const RequestTiming& b) {
                  return a.genNs < b.genNs;
              });

    std::vector<int64_t> sojourn;
    std::vector<int64_t> queueing;
    std::vector<int64_t> service;
    sojourn.reserve(timings.size());
    queueing.reserve(timings.size());
    service.reserve(timings.size());
    int64_t last_end = timings.front().endNs;
    for (const RequestTiming& t : timings) {
        sojourn.push_back(t.sojournNs());
        queueing.push_back(t.queueNs());
        service.push_back(t.serviceNs());
        last_end = std::max(last_end, t.endNs);
    }
    r.latency.sojourn = summarizeNs(sojourn);
    r.latency.queueing = summarizeNs(queueing);
    r.latency.service = summarizeNs(service);

    // Span: first measured arrival to last measured completion. Under
    // overload completions stretch the span, so achieved < offered.
    const int64_t span = last_end - timings.front().genNs;
    if (span > 0)
        r.achievedQps = static_cast<double>(timings.size()) * 1e9 /
            static_cast<double>(span);

    if (keepSamples)
        r.samples = std::move(timings);
    return r;
}

}  // namespace tb::core
