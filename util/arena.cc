#include "util/arena.h"

#include <cassert>

namespace tb::util {

PayloadArena::PayloadArena(size_t chunkBytes)
    : chunk_bytes_(chunkBytes == 0 ? kDefaultChunkBytes : chunkBytes)
{
}

PayloadArena::~PayloadArena()
{
    // Owners must have released every PayloadRef by now (TcpServer
    // joins the service workers before tearing down the reactor that
    // owns the arena). With all payload refs gone, the only reference
    // left on the current chunk is the producer hold.
    if (cur_ != nullptr) {
        assert(cur_->live.load(std::memory_order_acquire) == 1 &&
               "PayloadArena destroyed with live payload refs");
        delete cur_;
    }
    util::MutexLock lock(mu_);
    for (detail::ArenaChunk* c : free_)
        delete c;
    free_.clear();
}

detail::ArenaChunk*
PayloadArena::refill()
{
    detail::ArenaChunk* c = nullptr;
    {
        util::MutexLock lock(mu_);
        if (!free_.empty()) {
            c = free_.back();
            free_.pop_back();
        }
    }
    if (c == nullptr) {
        c = new detail::ArenaChunk();
        c->owner = this;
        c->buf.reset(new char[chunk_bytes_]);
        c->cap = chunk_bytes_;
        chunks_allocated_.fetch_add(1, std::memory_order_relaxed);
    }
    c->used = 0;
    // No concurrent holders exist (free-listed chunks hit live == 0);
    // downstream threads synchronize via the queue hand-off.
    c->live.store(1, std::memory_order_relaxed);
    return c;
}

PayloadRef
PayloadArena::store(std::string_view data)
{
    if (data.empty())
        return PayloadRef();
    if (data.size() > chunk_bytes_)
        return PayloadRef(std::string(data));  // owning fallback
    if (cur_ == nullptr) {
        cur_ = refill();
    } else if (cur_->used + data.size() > cur_->cap) {
        // Seal: drop the producer hold. If every payload in the chunk
        // is already released, this hits zero and we recycle it here.
        detail::ArenaChunk* full = cur_;
        cur_ = nullptr;
        if (full->live.fetch_sub(1, std::memory_order_acq_rel) == 1)
            recycle(full);
        cur_ = refill();
    }
    char* dst = cur_->buf.get() + cur_->used;
    std::memcpy(dst, data.data(), data.size());
    cur_->used += data.size();
    cur_->live.fetch_add(1, std::memory_order_relaxed);
    return PayloadRef(cur_, dst, data.size());
}

void
PayloadArena::recycle(detail::ArenaChunk* c)
{
    PayloadArena* a = c->owner;
    a->recycles_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(a->mu_);
    a->free_.push_back(c);
}

}  // namespace tb::util
