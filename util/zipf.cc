#include "util/zipf.h"

#include <cmath>

namespace tb::util {

namespace {

/** zeta(n, theta) = sum_{i=1..n} 1/i^theta. Exact for small n; for
 * large n the tail beyond kExactTerms is approximated by the integral
 * of x^-theta (error < one term), which keeps construction O(1)-ish
 * even for 10^7-item keyspaces. */
constexpr uint64_t kExactTerms = 100000;

/** Below this |1 - theta|, the closed forms that divide by (1 - theta)
 * switch to their theta = 1 limits (the integral of x^-theta becomes
 * logarithmic, and the rank exponent 1/(1-theta) is clamped). */
constexpr double kThetaOneEps = 1e-4;

double
zeta(uint64_t n, double theta)
{
    double sum = 0.0;
    const uint64_t exact = n < kExactTerms ? n : kExactTerms;
    for (uint64_t i = 1; i <= exact; i++)
        sum += std::pow(static_cast<double>(i), -theta);
    if (n > exact) {
        // Integral of x^-theta from exact+0.5 to n+0.5 (midpoint rule).
        // At theta = 1 the antiderivative x^(1-theta)/(1-theta)
        // degenerates to log(x); dividing by (1-theta) there returns
        // NaN/inf and silently inverts the skew downstream.
        const double a = static_cast<double>(exact) + 0.5;
        const double b = static_cast<double>(n) + 0.5;
        if (std::fabs(1.0 - theta) < kThetaOneEps)
            sum += std::log(b / a);
        else
            sum += (std::pow(b, 1.0 - theta) -
                    std::pow(a, 1.0 - theta)) /
                (1.0 - theta);
    }
    return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n < 1 ? 1 : n), theta_(theta)
{
    zetan_ = zeta(n_, theta_);
    // Gray et al.'s inversion raises to alpha = 1/(1-theta), which
    // blows up at theta = 1 (classic Zipf). Evaluating the inversion
    // at a theta infinitesimally below 1 keeps every term finite and
    // converges to the theta = 1 distribution; zetan_ itself is exact.
    const double theta_inv = std::fabs(1.0 - theta_) < kThetaOneEps
        ? 1.0 - kThetaOneEps
        : theta_;
    alpha_ = 1.0 / (1.0 - theta_inv);
    const double zeta2 = zeta(2, theta_);
    eta_ = (1.0 -
            std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_inv)) /
        (1.0 - zeta2 / zetan_);
}

uint64_t
ZipfianGenerator::next(Rng& rng) const
{
    if (n_ == 1)
        return 0;
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_ - 1) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace tb::util
