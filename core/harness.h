#ifndef TAILBENCH_CORE_HARNESS_H_
#define TAILBENCH_CORE_HARNESS_H_

/**
 * @file
 * The harness contract every configuration implements: integrated
 * (core/), networked and loopback (net/), and virtual-time simulation
 * (sim/). A harness drives an app with an open-loop Poisson request
 * stream and reports the latency decomposition the methodology needs:
 *
 *   sojourn  = completion - generation   (what the client experiences)
 *   queueing = service start - generation
 *   service  = completion - service start
 *
 * Requests are timestamped at *generation* time, before any queue is
 * involved, which is what makes the measurement free of coordinated
 * omission: a slow server cannot throttle the arrival process or hide
 * the waiting it causes.
 *
 * A Harness is a thin composition of the three API pieces underneath
 * it: a LoadClient (core/client.h — schedule, timestamps, stats), a
 * Transport (core/transport.h — in-process queues or sockets), and a
 * ServiceLoop (core/service.h — the recvReq/process/sendResp worker
 * pool). Only the Transport differs between configurations.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common/app.h"

namespace tb::core {

struct HarnessConfig {
    /** Offered load: mean arrival rate of the Poisson process. */
    double qps = 1000.0;
    unsigned workerThreads = 1;
    /** Leading requests processed but excluded from every statistic
     * (warmup separation; caches, allocator, branch predictors). */
    uint64_t warmupRequests = 0;
    uint64_t measuredRequests = 1000;
    uint64_t seed = 42;
    /** Keep per-request timings in RunResult::samples. */
    bool keepSamples = false;
    /** Pin service workers to CPUs (ServiceOptions::pinWorkers) so
     * per-worker-shard measurements are not confounded by OS thread
     * migration. Real-time harnesses only; the simulator ignores it. */
    bool pinWorkers = false;
};

/** Timestamps of one request's life cycle, all from the same
 * monotonic clock. */
struct RequestTiming {
    int64_t genNs = 0;    // scheduled generation (arrival) time
    int64_t startNs = 0;  // worker begins service
    int64_t endNs = 0;    // completion

    int64_t sojournNs() const { return endNs - genNs; }
    int64_t serviceNs() const { return endNs - startNs; }
    int64_t queueNs() const { return startNs - genNs; }
};

struct LatencySummary {
    double meanNs = 0.0;
    int64_t p50Ns = 0;
    int64_t p95Ns = 0;
    int64_t p99Ns = 0;
    uint64_t count = 0;
};

struct LatencyReport {
    LatencySummary sojourn;
    LatencySummary queueing;
    LatencySummary service;
};

struct RunResult {
    /** Measured completions / measured wall-clock span. */
    double achievedQps = 0.0;
    LatencyReport latency;
    /**
     * Worst lag of the load generator behind its own open-loop
     * schedule: max over requests of (actual push time - scheduled
     * arrival). Zero for virtual-time harnesses. A lag beyond one mean
     * interarrival gap means the generator could not sustain the
     * nominal rate — the offered load was silently lower than
     * configured, which invalidates the run (the harness also logs a
     * warning when that happens).
     */
    int64_t maxGenLagNs = 0;
    /**
     * Effective service-side concurrency: worker threads that served
     * the run, and how many of them were successfully CPU-pinned
     * (0/0 when the harness has no real worker pool, e.g. an external
     * server or the virtual-time simulator).
     */
    unsigned serviceWorkers = 0;
    unsigned pinnedWorkers = 0;
    /** Per-request timings (measured window only), in generation
     * order; populated only when HarnessConfig::keepSamples. */
    std::vector<RequestTiming> samples;
};

class Harness {
  public:
    virtual ~Harness();

    /** Runs one measurement: warmup + measured requests at cfg.qps. */
    virtual RunResult run(apps::App& app, const HarnessConfig& cfg) = 0;

    /** "integrated", "loopback", "networked", "simulation". */
    virtual std::string configName() const = 0;
};

/** Exact summary statistics over a sample vector (harness-internal
 * collection sizes make exact stats affordable; the HDR histogram is
 * for streaming contexts). */
LatencySummary summarizeNs(const std::vector<int64_t>& samples);

/**
 * Shared post-processing: sorts timings by generation time, computes
 * the achieved QPS over the measured span and the three latency
 * summaries, and moves the timings into RunResult::samples when
 * requested.
 */
RunResult buildRunResult(std::vector<RequestTiming>&& timings,
                         bool keepSamples);

}  // namespace tb::core

#endif  // TAILBENCH_CORE_HARNESS_H_
