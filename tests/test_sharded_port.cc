/** Unit tests: core/sharded_port.h RequestPool placement (round-robin
 * and ctx affinity), batched pop, work stealing, close semantics, and
 * the BlockingQueue popFor/popBatch primitives underneath it. */

#include "core/sharded_port.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/integrated_harness.h"
#include "core/methodology.h"

#include "tests/test_util.h"

using tb::core::BlockingQueue;
using tb::core::PopResult;
using tb::core::PortOptions;
using tb::core::QueuePolicy;
using tb::core::Request;
using tb::core::RequestPool;

namespace {

Request
makeReq(uint64_t id, uint64_t ctx = 0)
{
    Request r;
    r.id = id;
    r.ctx = ctx;
    return r;
}

PortOptions
makeOpts(QueuePolicy policy, unsigned shards, size_t batchMax = 16)
{
    PortOptions o;
    o.policy = policy;
    o.shards = shards;
    o.batchMax = batchMax;
    return o;
}

}  // namespace

int
main()
{
    // BlockingQueue::popBatch appends up to max under one wait; the
    // remainder stays queued; 0 only once closed and drained.
    {
        BlockingQueue<int> q;
        for (int i = 0; i < 10; i++)
            q.push(std::move(i));
        std::vector<int> out;
        CHECK_EQ(q.popBatch(out, 4), static_cast<size_t>(4));
        CHECK_EQ(out.size(), static_cast<size_t>(4));
        CHECK_EQ(out[0], 0);
        CHECK_EQ(out[3], 3);
        CHECK_EQ(q.popBatch(out, 100), static_cast<size_t>(6));
        CHECK_EQ(out.size(), static_cast<size_t>(10));  // appended
        CHECK_EQ(out[9], 9);
        q.close();
        CHECK_EQ(q.popBatch(out, 4), static_cast<size_t>(0));
    }

    // BlockingQueue::popFor: item when present, kTimeout on an open
    // empty queue, kClosed once closed and drained.
    {
        BlockingQueue<int> q;
        int v = 0;
        CHECK(q.popFor(v, std::chrono::milliseconds(1)) ==
              PopResult::kTimeout);
        q.push(7);
        CHECK(q.popFor(v, std::chrono::milliseconds(1)) ==
              PopResult::kItem);
        CHECK_EQ(v, 7);
        q.close();
        CHECK(q.popFor(v, std::chrono::milliseconds(1)) ==
              PopResult::kClosed);
    }

    // kSingleQueue degenerates to the classic single shared queue:
    // one shard regardless of the requested count, scalar batches.
    {
        RequestPool pool(makeOpts(QueuePolicy::kSingleQueue, 8, 16));
        CHECK_EQ(pool.shardCount(), 1u);
        CHECK_EQ(pool.batchMax(), static_cast<size_t>(1));
        for (uint64_t i = 0; i < 5; i++)
            pool.push(makeReq(i, /*ctx=*/i * 31));
        pool.close();
        std::vector<Request> batch;
        // Any bound worker reaches the one shard; batches stay scalar.
        pool.bind(3);
        for (uint64_t i = 0; i < 5; i++) {
            CHECK_EQ(pool.popBatch(batch, 16),
                     static_cast<size_t>(1));
            CHECK_EQ(batch[0].id, i);  // FIFO preserved
        }
        CHECK_EQ(pool.popBatch(batch, 16), static_cast<size_t>(0));
    }

    // Sharded affinity: ctx % shards is the placement key, so one
    // ctx's requests stay on one shard, in order, and a worker bound
    // elsewhere never sees them (no steal).
    {
        RequestPool pool(makeOpts(QueuePolicy::kSharded, 4));
        for (uint64_t i = 0; i < 12; i++)
            pool.push(makeReq(i, /*ctx=*/6));  // 6 % 4 == shard 2
        pool.close();
        Request out;
        pool.bind(1);
        CHECK(!pool.pop(out));  // shard 1 stays empty
        pool.bind(2);
        for (uint64_t i = 0; i < 12; i++) {
            CHECK(pool.pop(out));
            CHECK_EQ(out.id, i);
        }
        CHECK(!pool.pop(out));
    }

    // Round-robin placement (ctx == 0) spreads evenly across shards.
    {
        RequestPool pool(makeOpts(QueuePolicy::kSharded, 4));
        for (uint64_t i = 0; i < 20; i++)
            pool.push(makeReq(i));
        pool.close();
        for (unsigned w = 0; w < 4; w++) {
            pool.bind(w);
            Request out;
            unsigned got = 0;
            while (pool.pop(out))
                got++;
            CHECK_EQ(got, 5u);
        }
    }

    // Batched pop amortizes: a backlogged shard comes back max-sized
    // batches, bounded by the pool's batchMax.
    {
        RequestPool pool(makeOpts(QueuePolicy::kSharded, 2,
                                  /*batchMax=*/4));
        for (uint64_t i = 0; i < 10; i++)
            pool.push(makeReq(i, /*ctx=*/2));  // all on shard 0
        pool.close();
        pool.bind(0);
        std::vector<Request> batch;
        CHECK_EQ(pool.popBatch(batch, 100), static_cast<size_t>(4));
        CHECK_EQ(batch[0].id, static_cast<uint64_t>(0));
        CHECK_EQ(pool.popBatch(batch, 2), static_cast<size_t>(2));
        CHECK_EQ(batch[0].id, static_cast<uint64_t>(4));
        CHECK_EQ(pool.popBatch(batch, 100), static_cast<size_t>(4));
        CHECK_EQ(pool.popBatch(batch, 100), static_cast<size_t>(0));
    }

    // Work stealing: a worker whose own shard is dry drains the
    // siblings' backlog instead of exiting early.
    {
        RequestPool pool(
            makeOpts(QueuePolicy::kShardedSteal, 4, 4));
        for (uint64_t i = 0; i < 10; i++)
            pool.push(makeReq(i, /*ctx=*/4));  // 4 % 4 == shard 0
        pool.close();
        pool.bind(1);  // not the owner
        std::set<uint64_t> seen;
        std::vector<Request> batch;
        size_t n;
        while ((n = pool.popBatch(batch, 16)) > 0) {
            for (const Request& r : batch)
                CHECK(seen.insert(r.id).second);
        }
        CHECK_EQ(seen.size(), static_cast<size_t>(10));
    }

    // Steal-mode exit under concurrency: 4 workers, all load on one
    // shard, every request delivered exactly once and every worker
    // terminates (no deadlock, no lost wakeup).
    {
        RequestPool pool(makeOpts(QueuePolicy::kShardedSteal, 4, 8));
        constexpr uint64_t kN = 4000;
        std::mutex seen_mu;
        std::set<uint64_t> seen;
        std::vector<std::thread> workers;
        for (unsigned w = 0; w < 4; w++) {
            workers.emplace_back([&pool, &seen_mu, &seen, w] {
                pool.bind(w);
                std::vector<Request> batch;
                while (pool.popBatch(batch, 8) > 0) {
                    std::lock_guard<std::mutex> lock(seen_mu);
                    for (const Request& r : batch)
                        CHECK(seen.insert(r.id).second);
                }
            });
        }
        for (uint64_t i = 0; i < kN; i++)
            pool.push(makeReq(i, /*ctx=*/8));  // all to shard 0
        pool.close();
        for (auto& t : workers)
            t.join();
        CHECK_EQ(seen.size(), static_cast<size_t>(kN));
    }

    // close() wakes a blocked non-steal popper.
    {
        RequestPool pool(makeOpts(QueuePolicy::kSharded, 2));
        std::atomic<bool> returned{false};
        std::thread consumer([&] {
            pool.bind(1);
            Request out;
            CHECK(!pool.pop(out));
            returned = true;
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        pool.close();
        consumer.join();
        CHECK(returned);
    }

    // End to end: the integrated harness on a sharded+steal port
    // produces the same count/invariant guarantees as the baseline,
    // and tracks the offered rate at low load.
    {
        auto app = tb::apps::makeApp("img-dnn");
        tb::apps::AppConfig acfg;
        acfg.seed = 42;
        acfg.sizeFactor = 0.05;
        app->init(acfg);

        tb::core::IntegratedHarness baseline;
        const double sat = tb::core::estimateSaturationQps(
            baseline, *app, 2, 42, 200);

        PortOptions popts;
        popts.policy = QueuePolicy::kShardedSteal;
        tb::core::IntegratedHarness sharded(popts);
        tb::core::HarnessConfig cfg;
        cfg.qps = 0.2 * sat;
        cfg.workerThreads = 2;
        cfg.warmupRequests = 50;
        cfg.measuredRequests = 400;
        cfg.seed = 42;
        cfg.keepSamples = true;
        cfg.pinWorkers = true;
        const tb::core::RunResult r = sharded.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(400));
        CHECK_EQ(r.samples.size(), static_cast<size_t>(400));
        CHECK_NEAR(r.achievedQps, cfg.qps, 0.25);
        CHECK_EQ(r.serviceWorkers, 2u);
#if defined(__linux__)
        CHECK_EQ(r.pinnedWorkers, 2u);
#endif
        for (const tb::core::RequestTiming& t : r.samples) {
            CHECK(t.startNs >= t.genNs);
            CHECK(t.serviceNs() > 0);
            CHECK(t.sojournNs() >= t.serviceNs());
        }

        // Regression: more shards than workers must be clamped, not
        // honored — without stealing, a shard no worker owns would be
        // drained by nobody and its requests silently dropped.
        PortOptions wide;
        wide.policy = QueuePolicy::kSharded;
        wide.shards = 8;
        tb::core::IntegratedHarness clamped(wide);
        cfg.keepSamples = false;
        cfg.pinWorkers = false;
        const tb::core::RunResult rc = clamped.run(*app, cfg);
        CHECK_EQ(rc.latency.sojourn.count,
                 static_cast<uint64_t>(400));
    }

    return TEST_MAIN_RESULT();
}
