#ifndef TAILBENCH_CORE_METHODOLOGY_H_
#define TAILBENCH_CORE_METHODOLOGY_H_

/**
 * @file
 * Measurement-methodology helpers shared by the bench drivers
 * (paper Sec. IV): saturation estimation, from which every sweep
 * derives its load points.
 */

#include <cstdint>

#include "core/harness.h"

namespace tb::core {

/**
 * Analytic saturation estimate: threads / E[service time], with E[S]
 * measured by a short saturating probe of @p probeRequests through
 * @p harness (service time excludes queueing, so overload does not
 * bias it for queue-based harnesses).
 *
 * This is an *estimate*: it ignores service-time variance, so for
 * heavy-tailed apps the usable capacity is lower. Callers refine it
 * against achieved throughput under deliberate overload
 * (bench::calibrateSaturation).
 */
double estimateSaturationQps(Harness& harness, apps::App& app,
                             unsigned threads, uint64_t seed,
                             uint64_t probeRequests);

}  // namespace tb::core

#endif  // TAILBENCH_CORE_METHODOLOGY_H_
