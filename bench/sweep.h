#ifndef TAILBENCH_BENCH_SWEEP_H_
#define TAILBENCH_BENCH_SWEEP_H_

/**
 * @file
 * The latency-vs-load sweep shared by fig3/fig5/fig6 (and reusable by
 * new drivers): calibrate saturation, measure each app at the
 * standard load fractions across one or more harness configurations,
 * print the familiar table, and emit a machine-readable
 * BENCH_<key>.json via bench::JsonWriter — so a p95 regression in any
 * sweep driver shows up as a diffable number, not only in an eyeballed
 * table (ROADMAP: machine-readable bench reports).
 */

#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/harness.h"

namespace tb::bench {

struct SweepSpec {
    /** Report key: the JSON lands in BENCH_<key>.json. */
    std::string key;
    std::vector<std::string> apps;
    /** Harness configurations, in column order. Non-owning. */
    std::vector<core::Harness*> harnesses;
    unsigned threads = 1;
    /** Which harness calibrates the shared saturation when
     * perHarnessLoad is false (fig3/fig5 calibrate on integrated). */
    size_t calibrateIndex = 0;
    /** True: each harness runs at fractions of its OWN saturation and
     * the x-axis is load (fig6). False: one shared saturation, the
     * x-axis is absolute QPS (fig3/fig5). */
    bool perHarnessLoad = false;
    /** True: single-harness wide table with mean/p95/p99 columns
     * (fig3); false: per-config p95+ach column pairs (fig5/fig6). */
    bool wide = false;
    /** Per-point seed offset multiplier: seed + (uint64_t)(f * scale).
     * fig3 historically used 100, fig5/fig6 1000. */
    uint64_t seedScale = 1000;
};

struct SweepPoint {
    std::string app;
    std::string config;
    double fraction = 0.0;
    double offeredQps = 0.0;
    /** Saturation the fraction was taken of (this point's harness). */
    double satQps = 0.0;
    core::RunResult result;
};

struct SweepOutput {
    std::vector<SweepPoint> points;
    /** Per-app saturation of harnesses[calibrateIndex] (or of each
     * config under perHarnessLoad, keyed "app/config") — for driver
     * postludes like fig5's saturation-delta comparison. */
    std::map<std::string, double> satQps;
};

/**
 * Runs the sweep, printing per-app tables to stdout and writing
 * BENCH_<key>.json to the working directory. Invalid points keep the
 * "!" gen-lag annotation from fmtP95Cell/fmtQpsCell.
 */
SweepOutput runLatencySweep(const SweepSpec& spec, const BenchSettings& s);

}  // namespace tb::bench

#endif  // TAILBENCH_BENCH_SWEEP_H_
