#ifndef TAILBENCH_TESTS_TEST_UTIL_H_
#define TAILBENCH_TESTS_TEST_UTIL_H_

/**
 * @file
 * Dependency-free check macros for the unit tests (the container has
 * no gtest; ctest only needs an exit code). Failures print file:line
 * and the expression, and the test binary exits nonzero.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tb::test {
inline int g_failures = 0;
}

#define CHECK(cond)                                                    \
    do {                                                               \
        if (!(cond)) {                                                 \
            std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__,         \
                         __LINE__, #cond);                             \
            tb::test::g_failures++;                                    \
        }                                                              \
    } while (0)

#define CHECK_EQ(a, b)                                                 \
    do {                                                               \
        if (!((a) == (b))) {                                           \
            std::fprintf(stderr,                                       \
                         "FAIL %s:%d: %s == %s (lhs=%.17g rhs=%.17g)"  \
                         "\n",                                         \
                         __FILE__, __LINE__, #a, #b,                   \
                         static_cast<double>(a),                       \
                         static_cast<double>(b));                      \
            tb::test::g_failures++;                                    \
        }                                                              \
    } while (0)

/** |a - b| <= tol * max(|a|, |b|, 1). */
#define CHECK_NEAR(a, b, tol)                                          \
    do {                                                               \
        const double a_ = static_cast<double>(a);                      \
        const double b_ = static_cast<double>(b);                      \
        const double scale_ = std::max(                                \
            1.0, std::max(std::fabs(a_), std::fabs(b_)));              \
        if (std::fabs(a_ - b_) > (tol)*scale_) {                       \
            std::fprintf(stderr,                                       \
                         "FAIL %s:%d: |%s - %s| <= %g (lhs=%.17g "     \
                         "rhs=%.17g)\n",                               \
                         __FILE__, __LINE__, #a, #b,                   \
                         static_cast<double>(tol), a_, b_);            \
            tb::test::g_failures++;                                    \
        }                                                              \
    } while (0)

#define TEST_MAIN_RESULT()                                             \
    (tb::test::g_failures == 0                                         \
         ? (std::printf("OK\n"), 0)                                    \
         : (std::fprintf(stderr, "%d check(s) failed\n",               \
                         tb::test::g_failures),                        \
            1))

#endif  // TAILBENCH_TESTS_TEST_UTIL_H_
