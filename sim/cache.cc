#include "sim/cache.h"

#include <algorithm>

namespace tb::sim {

namespace {

/** Stream id lives in the key's top byte; set indexing masks it off
 * so all streams share the same sets. */
constexpr unsigned kStreamShift = 56;
constexpr uint64_t kAddrMask = (1ull << kStreamShift) - 1;

/** RRPV width 2: 0 = near re-reference, 3 = distant (victim). */
constexpr uint8_t kRrpvMax = 3;
constexpr uint8_t kRrpvLong = 2;

/** DRRIP set dueling: sets s with s % kDuelMod == 0 are SRRIP
 * leaders, == 1 BRRIP leaders; everyone else follows PSEL. */
constexpr uint32_t kDuelMod = 64;
constexpr int32_t kPselMax = 1023;
constexpr int32_t kPselInit = 512;

/** BRRIP inserts at distant RRPV except every 32nd fill. */
constexpr uint32_t kBrripNearEvery = 32;

}  // namespace

SetAssocCache::SetAssocCache(const CacheGeometry& geo, ReplPolicy policy)
    : geo_(geo), policy_(policy),
      lines_(static_cast<size_t>(geo.sets) * geo.ways),
      psel_(kPselInit)
{
}

uint32_t
SetAssocCache::setOf(uint64_t key) const
{
    return static_cast<uint32_t>((key & kAddrMask) % geo_.sets);
}

SetAssocCache::Line*
SetAssocCache::find(uint64_t key)
{
    Line* set = &lines_[static_cast<size_t>(setOf(key)) * geo_.ways];
    for (uint32_t w = 0; w < geo_.ways; w++) {
        if (set[w].valid && set[w].key == key)
            return &set[w];
    }
    return nullptr;
}

ReplPolicy
SetAssocCache::setPolicy(uint32_t set) const
{
    if (policy_ != ReplPolicy::kDrrip)
        return policy_;
    // With fewer sets than two leader groups (toy test configs),
    // duel degenerates to SRRIP.
    if (geo_.sets < kDuelMod)
        return ReplPolicy::kSrrip;
    if (set % kDuelMod == 0)
        return ReplPolicy::kSrrip;
    if (set % kDuelMod == 1)
        return ReplPolicy::kBrrip;
    return psel_ < kPselInit ? ReplPolicy::kSrrip : ReplPolicy::kBrrip;
}

bool
SetAssocCache::lookup(uint64_t key)
{
    counters_.accesses++;
    if (Line* line = find(key)) {
        line->rrpv = 0;
        line->lruTick = ++tick_;
        return true;
    }
    counters_.misses++;
    // Leader-set misses steer the dueling selector: a miss under a
    // leader's policy is a vote against it.
    if (policy_ == ReplPolicy::kDrrip && geo_.sets >= kDuelMod) {
        const uint32_t set = setOf(key);
        if (set % kDuelMod == 0)
            psel_ = std::min(psel_ + 1, kPselMax);
        else if (set % kDuelMod == 1)
            psel_ = std::max(psel_ - 1, 0);
    }
    return false;
}

uint32_t
SetAssocCache::victimWay(uint32_t set, ReplPolicy policy)
{
    Line* s = &lines_[static_cast<size_t>(set) * geo_.ways];
    for (uint32_t w = 0; w < geo_.ways; w++) {
        if (!s[w].valid)
            return w;
    }
    if (policy == ReplPolicy::kLru) {
        uint32_t victim = 0;
        for (uint32_t w = 1; w < geo_.ways; w++) {
            if (s[w].lruTick < s[victim].lruTick)
                victim = w;
        }
        return victim;
    }
    // RRIP: evict the first distant line, aging the whole set until
    // one exists (bounded: each pass raises the max RRPV).
    for (;;) {
        for (uint32_t w = 0; w < geo_.ways; w++) {
            if (s[w].rrpv >= kRrpvMax)
                return w;
        }
        for (uint32_t w = 0; w < geo_.ways; w++)
            s[w].rrpv++;
    }
}

bool
SetAssocCache::insert(uint64_t key, uint64_t* evicted)
{
    const uint32_t set = setOf(key);
    const ReplPolicy policy = setPolicy(set);
    const uint32_t way = victimWay(set, policy);
    Line& line = lines_[static_cast<size_t>(set) * geo_.ways + way];
    const bool had = line.valid;
    if (had && evicted != nullptr)
        *evicted = line.key;
    line.key = key;
    line.valid = true;
    line.lruTick = ++tick_;
    switch (policy) {
    case ReplPolicy::kLru:
        line.rrpv = 0;
        break;
    case ReplPolicy::kSrrip:
        line.rrpv = kRrpvLong;
        break;
    case ReplPolicy::kBrrip:
    case ReplPolicy::kDrrip:  // only via setPolicy's follower verdict
        line.rrpv =
            (++brripCtr_ % kBrripNearEvery == 0) ? kRrpvLong : kRrpvMax;
        break;
    }
    return had;
}

bool
SetAssocCache::invalidate(uint64_t key)
{
    if (Line* line = find(key)) {
        line->valid = false;
        return true;
    }
    return false;
}

bool
SetAssocCache::contains(uint64_t key) const
{
    const Line* set =
        &lines_[static_cast<size_t>(setOf(key)) * geo_.ways];
    for (uint32_t w = 0; w < geo_.ways; w++) {
        if (set[w].valid && set[w].key == key)
            return true;
    }
    return false;
}

HierarchyConfig
HierarchyConfig::fromMachine(const MachineConfig& m)
{
    HierarchyConfig cfg;
    const double bytes = std::max(m.llcMb, 1.0 / 1024.0) * 1024.0 * 1024.0;
    const uint32_t lines =
        std::max<uint32_t>(16, static_cast<uint32_t>(bytes) / kCacheLineBytes);
    cfg.l3.ways = 16;
    cfg.l3.sets = std::max<uint32_t>(1, lines / cfg.l3.ways);
    return cfg;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig& cfg,
                               unsigned streams)
    : l3_(cfg.l3, cfg.l3Policy)
{
    if (streams == 0)
        streams = 1;
    streams_.reserve(streams);
    for (unsigned s = 0; s < streams; s++) {
        streams_.push_back(
            PerStream{SetAssocCache(cfg.l1i, ReplPolicy::kLru),
                      SetAssocCache(cfg.l1d, ReplPolicy::kLru),
                      SetAssocCache(cfg.l2, ReplPolicy::kLru)});
    }
}

uint64_t
CacheHierarchy::lineKey(uint64_t addr, unsigned stream)
{
    return ((addr / kCacheLineBytes) & kAddrMask) |
        (static_cast<uint64_t>(stream & 0xff) << kStreamShift);
}

int
CacheHierarchy::access(uint64_t addr, AccessKind kind, unsigned stream)
{
    const uint64_t key = lineKey(addr, stream);
    PerStream& ps = streams_[stream];
    SetAssocCache& l1 = kind == AccessKind::kIfetch ? ps.l1i : ps.l1d;
    if (l1.lookup(key))
        return 1;

    int level;
    if (ps.l2.lookup(key)) {
        level = 2;
    } else if (l3_.lookup(key)) {
        level = 3;
    } else {
        level = 4;
        uint64_t victim = 0;
        if (l3_.insert(key, &victim)) {
            // Inclusive L3: the evicted line may no longer live in
            // any private level of the stream that owns it.
            PerStream& vs = streams_[victim >> kStreamShift];
            bool dropped = vs.l2.invalidate(victim);
            dropped = vs.l1i.invalidate(victim) || dropped;
            dropped = vs.l1d.invalidate(victim) || dropped;
            if (dropped)
                back_invals_++;
        }
    }
    // Fill on the way back; private-level evictions are clean drops
    // (no dirty-writeback modeling in the structural pass).
    if (level >= 3)
        ps.l2.insert(key, nullptr);
    l1.insert(key, nullptr);
    return level;
}

void
CacheHierarchy::resetCounters()
{
    for (PerStream& ps : streams_) {
        ps.l1i.resetCounters();
        ps.l1d.resetCounters();
        ps.l2.resetCounters();
    }
    l3_.resetCounters();
    back_invals_ = 0;
}

}  // namespace tb::sim
