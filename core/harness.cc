#include "core/harness.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stats.h"

namespace tb::core {

Harness::~Harness() = default;

LatencySummary
summarizeNs(const std::vector<int64_t>& samples)
{
    LatencySummary s;
    s.count = samples.size();
    if (samples.empty())
        return s;
    std::vector<int64_t> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    s.meanNs = util::meanOf(sorted);
    s.p50Ns = util::percentileOfSorted(sorted, 50.0);
    s.p95Ns = util::percentileOfSorted(sorted, 95.0);
    s.p99Ns = util::percentileOfSorted(sorted, 99.0);
    return s;
}

namespace {

/** Window index for a generation timestamp: equal-width split of
 * [first, first+span], clamped so the last arrival lands in the last
 * window and stray genLag samples cannot index out of range. */
size_t
windowIndex(int64_t genNs, int64_t firstGenNs, int64_t spanNs, size_t nwin)
{
    if (spanNs <= 0 || nwin <= 1)
        return 0;
    const int64_t off = genNs - firstGenNs;
    if (off <= 0)
        return 0;
    const auto scaled = static_cast<size_t>(
        (static_cast<__int128>(off) * static_cast<__int128>(nwin)) / spanNs);
    return scaled >= nwin ? nwin - 1 : scaled;
}

}  // namespace

RunResult
buildRunResult(std::vector<RequestTiming>&& timings,
               const ResultOptions& opts)
{
    RunResult r;
    r.sloTargetNs = opts.sloTargetNs;
    if (timings.empty())
        return r;
    std::sort(timings.begin(), timings.end(),
              [](const RequestTiming& a, const RequestTiming& b) {
                  return a.genNs < b.genNs;
              });

    std::vector<int64_t> sojourn;
    std::vector<int64_t> queueing;
    std::vector<int64_t> service;
    sojourn.reserve(timings.size());
    queueing.reserve(timings.size());
    service.reserve(timings.size());
    int64_t last_end = timings.front().endNs;
    uint64_t slo_met = 0;
    for (const RequestTiming& t : timings) {
        sojourn.push_back(t.sojournNs());
        queueing.push_back(t.queueNs());
        service.push_back(t.serviceNs());
        last_end = std::max(last_end, t.endNs);
        if (opts.sloTargetNs > 0 && t.sojournNs() <= opts.sloTargetNs)
            slo_met++;
    }
    r.latency.sojourn = summarizeNs(sojourn);
    r.latency.queueing = summarizeNs(queueing);
    r.latency.service = summarizeNs(service);
    if (opts.sloTargetNs > 0)
        r.sloAttainment = static_cast<double>(slo_met) /
            static_cast<double>(timings.size());

    // Span: first measured arrival to last measured completion. Under
    // overload completions stretch the span, so achieved < offered.
    const int64_t span = last_end - timings.front().genNs;
    if (span > 0)
        r.achievedQps = static_cast<double>(timings.size()) * 1e9 /
            static_cast<double>(span);

    // Windowed accounting over the generation-time axis. Default window
    // count scales with the sample size so each window keeps enough
    // samples (>= ~40) for its p99 to mean something.
    const int64_t first_gen = timings.front().genNs;
    const int64_t gen_span = timings.back().genNs - first_gen;
    size_t nwin;
    if (opts.windows > 0) {
        nwin = std::min<size_t>(opts.windows, 256);
    } else {
        nwin = std::max<size_t>(
            1, std::min<size_t>(12, timings.size() / 40));
    }
    if (gen_span <= 0)
        nwin = 1;
    r.windows.resize(nwin);
    std::vector<std::vector<int64_t>> win_sojourn(nwin);
    std::vector<uint64_t> win_slo_met(nwin, 0);
    for (size_t w = 0; w < nwin; w++) {
        r.windows[w].startNs = first_gen +
            static_cast<int64_t>(static_cast<__int128>(gen_span) * w / nwin);
        r.windows[w].endNs = first_gen +
            static_cast<int64_t>(
                static_cast<__int128>(gen_span) * (w + 1) / nwin);
    }
    for (const RequestTiming& t : timings) {
        const size_t w = windowIndex(t.genNs, first_gen, gen_span, nwin);
        win_sojourn[w].push_back(t.sojournNs());
        if (opts.sloTargetNs > 0 && t.sojournNs() <= opts.sloTargetNs)
            win_slo_met[w]++;
    }
    if (opts.genLag) {
        for (const GenLagSample& s : *opts.genLag) {
            const size_t w =
                windowIndex(s.genNs, first_gen, gen_span, nwin);
            r.windows[w].maxGenLagNs =
                std::max(r.windows[w].maxGenLagNs, s.lagNs);
        }
    }
    for (size_t w = 0; w < nwin; w++) {
        WindowStats& ws = r.windows[w];
        ws.count = win_sojourn[w].size();
        const LatencySummary s = summarizeNs(win_sojourn[w]);
        ws.sojournP50Ns = s.p50Ns;
        ws.sojournP95Ns = s.p95Ns;
        ws.sojournP99Ns = s.p99Ns;
        if (opts.sloTargetNs > 0 && ws.count > 0)
            ws.sloFrac = static_cast<double>(win_slo_met[w]) /
                static_cast<double>(ws.count);
        if (opts.scheduledMeanGapNs > 0.0 &&
            static_cast<double>(ws.maxGenLagNs) > opts.scheduledMeanGapNs)
            ws.genLagged = true;
    }

    // Coordinated-omission self-check: compare the achieved send
    // timeline (scheduled arrival + generator lag) against the
    // scheduled one. A generator silently degraded to closed-loop
    // stretches the send span and sends a large fraction of requests
    // late; either signal flags the run.
    if (opts.genLag && !opts.genLag->empty() &&
        opts.scheduledMeanGapNs > 0.0) {
        int64_t sched_min = opts.genLag->front().genNs;
        int64_t sched_max = sched_min;
        int64_t send_min = sched_min + opts.genLag->front().lagNs;
        int64_t send_max = send_min;
        uint64_t late = 0;
        for (const GenLagSample& s : *opts.genLag) {
            sched_min = std::min(sched_min, s.genNs);
            sched_max = std::max(sched_max, s.genNs);
            send_min = std::min(send_min, s.genNs + s.lagNs);
            send_max = std::max(send_max, s.genNs + s.lagNs);
            if (static_cast<double>(s.lagNs) > opts.scheduledMeanGapNs)
                late++;
        }
        const double sched_span =
            static_cast<double>(sched_max - sched_min);
        if (sched_span > 0.0)
            r.coSpanStretch =
                static_cast<double>(send_max - send_min) / sched_span;
        r.coLateFrac = static_cast<double>(late) /
            static_cast<double>(opts.genLag->size());
        r.coSuspect = r.coSpanStretch > 1.05 || r.coLateFrac > 0.2;
        if (r.coSuspect)
            TB_LOG_WARN(
                "coordinated-omission check: achieved send span is "
                "%.2fx the scheduled span and %.0f%% of requests went "
                "out more than one mean gap late — the generator "
                "degraded toward closed-loop; treat tails as lower "
                "bounds",
                r.coSpanStretch, r.coLateFrac * 100.0);
    }

    if (opts.keepSamples)
        r.samples = std::move(timings);
    return r;
}

RunResult
buildRunResult(std::vector<RequestTiming>&& timings, bool keepSamples)
{
    ResultOptions opts;
    opts.keepSamples = keepSamples;
    return buildRunResult(std::move(timings), opts);
}

}  // namespace tb::core
