#!/usr/bin/env python3
"""Warn-only perf smoke: check the machine-readable bench reports
against conservative floor thresholds.

Usage: perf_check.py [dir-with-BENCH_*.json]   (default: cwd)

Reads BENCH_fig10.json, BENCH_microbench_hotpath.json, and
BENCH_fig11.json, produced by running fig10_connection_scaling,
microbench_hotpath, and fig11_burst_scenarios in the given directory,
and checks the headline claims:

  fig10      the reactor backend's saturation QPS at the largest
             connection count must clear an absolute floor — a
             regression that costs the C10k path an order of
             magnitude shows up here even on a noisy CI host.
  microbench reactor+arena steady state must be allocation-free
             (< 0.01 heap allocs/request; skipped when the JSON says
             the operator-new hook is compiled out, i.e. sanitizer
             builds), and response-write coalescing must save >= 4x
             syscalls versus the per-frame path.
  fig11      the arrival processes must deliver equal mean load (per
             harness, max/min achieved QPS across processes <= 1.3 —
             a process that silently under-drives would fake a better
             tail), and burst tails must dominate: bursts p99 >=
             poisson p99 per harness, else the arrival seam is not
             actually shaping the schedule.

Exit codes: 0 all checks pass, 1 a check failed, 2 a report is
missing/unparseable. CI runs this step with continue-on-error — the
thresholds are floors against collapse, not a benchmarking service;
absolute QPS on shared runners is too noisy to gate merges on.
"""

import json
import os
import sys

# Floors, not targets: an unloaded dev box exceeds these by >10x; CI
# runners by ~2-5x. They exist to catch collapse (a serialization bug,
# an accidental O(n^2)), not drift.
FIG10_REACTOR_MIN_SAT_QPS = 2000.0
ARENA_MAX_ALLOCS_PER_REQ = 0.01
MIN_COALESCING_WRITE_RATIO = 4.0
# "Equal mean load" tolerance: the processes share one offered rate;
# achieved QPS may wobble with scheduler noise and end-of-run idle
# gaps (diurnal troughs), but a 30% spread means a process is not
# actually delivering its mean.
FIG11_MAX_ACHIEVED_SPREAD = 1.3


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print(f"perf_check: cannot read {path}: {e}")
        return None
    except ValueError as e:
        print(f"perf_check: cannot parse {path}: {e}")
        return None


def check_fig10(report):
    """Reactor saturation at the deepest connection sweep point."""
    failures = []
    best = {}  # io backend -> max saturation over its sweep
    for point in report.get("points", []):
        backend = point.get("io", "?")
        sat = point.get("saturation_qps")
        if isinstance(sat, (int, float)):
            best[backend] = max(best.get(backend, 0.0), sat)
    sat = best.get("reactor")
    if sat is None:
        failures.append("fig10: no reactor point carries saturation_qps")
    elif sat < FIG10_REACTOR_MIN_SAT_QPS:
        failures.append(
            f"fig10: reactor saturation {sat:.0f} qps is below the "
            f"{FIG10_REACTOR_MIN_SAT_QPS:.0f} qps floor"
        )
    else:
        print(
            f"perf_check: fig10 reactor saturation {sat:.0f} qps "
            f"(floor {FIG10_REACTOR_MIN_SAT_QPS:.0f}) ok"
        )
    return failures


def check_microbench(report):
    failures = []
    modes = {m.get("mode"): m for m in report.get("modes", [])}

    hook = report.get("alloc_hook_active", False)
    arena = modes.get("reactor_arena", {})
    allocs = arena.get("allocs_per_req")
    if not hook:
        print(
            "perf_check: alloc hook inactive (sanitizer build) — "
            "skipping the allocs/request criterion"
        )
    elif not isinstance(allocs, (int, float)):
        failures.append("microbench: reactor_arena lacks allocs_per_req")
    elif allocs >= ARENA_MAX_ALLOCS_PER_REQ:
        failures.append(
            f"microbench: reactor_arena allocates {allocs:.3f}/request "
            f"(must be < {ARENA_MAX_ALLOCS_PER_REQ})"
        )
    else:
        print(
            f"perf_check: reactor_arena {allocs:.3f} allocs/request "
            f"(< {ARENA_MAX_ALLOCS_PER_REQ}) ok"
        )

    ratio = report.get("summary", {}).get("coalescing_write_ratio")
    if not isinstance(ratio, (int, float)):
        failures.append("microbench: summary lacks coalescing_write_ratio")
    elif ratio < MIN_COALESCING_WRITE_RATIO:
        failures.append(
            f"microbench: coalescing saves only {ratio:.2f}x write "
            f"syscalls (must be >= {MIN_COALESCING_WRITE_RATIO}x)"
        )
    else:
        print(
            f"perf_check: write coalescing {ratio:.1f}x "
            f"(>= {MIN_COALESCING_WRITE_RATIO}x) ok"
        )
    return failures


def check_fig11(report):
    """Equal mean load across processes; burst tails dominate."""
    failures = []
    by_config = {}  # harness config -> process -> point
    for point in report.get("points", []):
        cfg = point.get("config", "?")
        by_config.setdefault(cfg, {})[point.get("process", "?")] = point
    if not by_config:
        return ["fig11: report carries no points"]
    for cfg, procs in sorted(by_config.items()):
        achieved = [
            p["achieved_qps"]
            for p in procs.values()
            if isinstance(p.get("achieved_qps"), (int, float))
            and p["achieved_qps"] > 0
        ]
        if len(achieved) < 2:
            failures.append(f"fig11: {cfg} lacks achieved_qps points")
        else:
            spread = max(achieved) / min(achieved)
            if spread > FIG11_MAX_ACHIEVED_SPREAD:
                failures.append(
                    f"fig11: {cfg} achieved-QPS spread {spread:.2f}x "
                    f"across processes (must be <= "
                    f"{FIG11_MAX_ACHIEVED_SPREAD}x for an equal-mean-"
                    f"load comparison)"
                )
            else:
                print(
                    f"perf_check: fig11 {cfg} achieved-QPS spread "
                    f"{spread:.2f}x (<= {FIG11_MAX_ACHIEVED_SPREAD}x) ok"
                )
        poisson = procs.get("poisson", {}).get("p99_ns")
        bursts = procs.get("bursts", {}).get("p99_ns")
        if not isinstance(poisson, (int, float)) or not isinstance(
            bursts, (int, float)
        ):
            failures.append(
                f"fig11: {cfg} lacks poisson/bursts p99_ns points"
            )
        elif bursts < poisson:
            failures.append(
                f"fig11: {cfg} bursts p99 {bursts / 1e6:.2f} ms is "
                f"below poisson p99 {poisson / 1e6:.2f} ms — the "
                f"arrival seam is not shaping the schedule"
            )
        else:
            print(
                f"perf_check: fig11 {cfg} bursts p99 "
                f"{bursts / 1e6:.2f} ms >= poisson p99 "
                f"{poisson / 1e6:.2f} ms ok"
            )
    return failures


def main():
    where = sys.argv[1] if len(sys.argv) > 1 else "."
    reports = {
        name: load(os.path.join(where, name))
        for name in (
            "BENCH_fig10.json",
            "BENCH_microbench_hotpath.json",
            "BENCH_fig11.json",
        )
    }
    if any(r is None for r in reports.values()):
        return 2
    failures = check_fig10(reports["BENCH_fig10.json"])
    failures += check_microbench(reports["BENCH_microbench_hotpath.json"])
    failures += check_fig11(reports["BENCH_fig11.json"])
    for f in failures:
        print(f"perf_check: FAIL: {f}")
    if not failures:
        print("perf_check: all checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
