/**
 * @file
 * Connection scaling: tail latency, saturation throughput and server
 * thread cost across connection count x connection-IO backend.
 *
 *   io backend   threads (one reader thread per live connection — the
 *                classic baseline, thread count grows with clients) vs
 *                reactor (fixed pool of epoll event loops feeding the
 *                same RequestPool; net/reactor.h)
 *   connections  persistent loopback connections, swept into the
 *                thousands — the regime TailBench++-style many-client
 *                load needs and thread-per-connection cannot reach
 *                without thread explosion
 *
 * Expected shape: at a handful of connections the two backends
 * coincide (the reactor's event loop costs about what a blocked
 * reader costs). As connections grow, the threads backend's thread
 * count grows 1:1 with them — visible in the `thr` column read from
 * /proc/self/status — while the reactor column stays flat at
 * workers + reactors + client threads, with no worse saturation at
 * equal offered load. The service capacity itself is worker-bound, so
 * the `sat` columns should match across backends; what the reactor
 * buys is reaching high connection counts at all on a fixed thread
 * budget.
 *
 * Both ends run in this process (loopback), so the `thr` column
 * counts client + server threads together; the cross-backend *delta*
 * at equal connection count isolates the server's IO-thread cost.
 *
 * Load is calibrated once (threads backend, minimum connection
 * count) and the same offered rates then drive every cell: the
 * saturation run offers a deep overload (a large multiple of the
 * calibrated capacity, so the achieved rate is the measured ceiling
 * rather than an echo of the offered rate; median of repeated runs
 * in full mode), and the tail-latency run offers 70% of the
 * calibrated capacity. Identical offered load across backends and
 * down each column is what makes the cross-cell differences
 * attributable to the backend and the connection count alone.
 *
 * Besides the table, the run writes BENCH_fig10.json (run config, git
 * rev, per-cell p50/p95/p99 and achieved-vs-offered QPS) into the
 * working directory for machine-readable perf tracking.
 */

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/client.h"
#include "net/server_harness.h"
#include "util/alloc_probe.h"
#include "util/logging.h"
#include "util/stats.h"

using namespace tb;

namespace {

/** Peak process thread count, from /proc/self/status. 0 when the
 * psuedo-file is unavailable (non-Linux). */
unsigned
processThreads()
{
    FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr)
        return 0;
    unsigned threads = 0;
    char line[128];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::sscanf(line, "Threads: %u", &threads) == 1)
            break;
    }
    std::fclose(f);
    return threads;
}

/** The sweep opens conns sockets on each end of the loopback, plus
 * reader threads' incidental fds; a 1024-default soft limit (CI) dies
 * at the first ≥512-connection cell, so raise it to what the sweep
 * needs (clamped to the hard limit, warning when that still falls
 * short). */
void
raiseFdLimit(unsigned max_conns)
{
    const rlim_t want = 4 * static_cast<rlim_t>(max_conns) + 256;
    struct rlimit rl;
    if (::getrlimit(RLIMIT_NOFILE, &rl) != 0)
        return;
    if (rl.rlim_cur >= want)
        return;
    rl.rlim_cur = want < rl.rlim_max ? want : rl.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &rl) != 0 || rl.rlim_cur < want)
        TB_LOG_WARN("fig10: fd limit %llu below the %llu the sweep "
                    "wants; large cells may throttle",
                    static_cast<unsigned long long>(rl.rlim_cur),
                    static_cast<unsigned long long>(want));
}

/**
 * One (backend, connection-count) server+client composition as a
 * Harness, so calibrateSaturation / measureAt drive it like any
 * other configuration. Each run spins up a fresh loopback TcpServer
 * with the requested IO backend and a MultiConnTcpTransport with
 * `conns` persistent connections, and records the peak process
 * thread count observed while both are alive.
 */
class ConnScaledHarness final : public core::Harness {
  public:
    ConnScaledHarness(const net::IoOptions& io, unsigned conns)
        : io_(io), conns_(conns)
    {
    }

    core::RunResult
    run(apps::App& app, const core::HarnessConfig& cfg) override
    {
        if (cfg.warmupRequests + cfg.measuredRequests == 0 ||
            cfg.qps <= 0.0)
            return core::RunResult{};
        core::ServiceOptions sopts;
        sopts.pinWorkers = cfg.pinWorkers;
        net::TcpServer server(app, cfg.workerThreads, 0, true, {},
                              sopts, io_);
        if (!server.listening()) {
            TB_LOG_ERROR("fig10: could not listen on 127.0.0.1");
            return core::RunResult{};
        }
        server.start();
        net::MultiConnTcpTransport transport("127.0.0.1",
                                             server.port(), conns_);
        if (!transport.connected()) {
            server.stop();
            return core::RunResult{};
        }
        core::LoadClient client;
        core::RunResult result = client.run(app, cfg, transport);
        // Sample while the server's readers/reactors are still up:
        // reader threads persist until stop() even after their
        // connections drain, so this is the run's peak.
        const unsigned threads = processThreads();
        if (threads > peak_threads_)
            peak_threads_ = threads;
        server.stop();
        result.serviceWorkers = server.workers();
        result.pinnedWorkers = server.pinnedWorkers();
        return result;
    }

    std::string
    configName() const override
    {
        return std::string("connscaled-") + net::ioModeName(io_.mode);
    }

    unsigned peakThreads() const { return peak_threads_; }

  private:
    const net::IoOptions io_;
    const unsigned conns_;
    unsigned peak_threads_ = 0;
};

struct Cell {
    std::string io;
    unsigned conns = 0;
    double offeredQps = 0.0;
    double satQps = 0.0;
    core::RunResult at70;
    unsigned threads = 0;
    /** Response-path write syscalls per request during the 70%-load
     * run (kRespWrites delta / requests incl. warmup) — the
     * coalescing win, measured. */
    double writesPerReq = 0.0;
};

}  // namespace

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    // Always-on here: the wr/req column is part of the figure, and
    // the counters are relaxed-atomic cheap.
    util::probe::setEnabled(true);
    bench::printHeader(
        "Fig. 10: connection scaling — io backend x connection "
        "count");

    // Connection counts: past 1000 in both modes, so the claim
    // "reactor sustains C10k-class connection counts on a fixed
    // thread budget" is measured, not asserted. Fast mode keeps one
    // small and one ≥1000 point.
    const std::vector<unsigned> conn_counts = s.fast
        ? std::vector<unsigned>{64, 1024}
        : std::vector<unsigned>{64, 256, 1024, 2048};
    raiseFdLimit(conn_counts.back());

    const net::IoOptions io_threads;  // defaults: kThreads
    net::IoOptions io_reactor;
    io_reactor.mode = net::IoMode::kReactor;
    const net::IoOptions io_modes[] = {io_threads, io_reactor};

    const std::string app_name = "img-dnn";
    const unsigned workers = 2;
    auto app = bench::makeBenchApp(app_name, s);
    const uint64_t budget = bench::requestBudget(app_name, s);

    // One shared calibration (threads backend, smallest connection
    // count): both backends are then measured at identical offered
    // rates. The saturation rate is a deep overload — far enough
    // past capacity that the achieved rate is the server's ceiling,
    // not the generator's schedule.
    double cap = 0.0;
    {
        ConnScaledHarness h(io_threads, conn_counts.front());
        cap = bench::calibrateSaturation(h, *app, workers, s,
                                         s.pinWorkers);
    }
    const double sat_offered = 20.0 * cap;
    const double lat_offered = 0.7 * cap;
    // The calibration budget is sized for latency stability; the
    // throughput ceiling needs a longer window (and, in full mode, a
    // median over repeats) to shrug off scheduler preemptions.
    const uint64_t sat_budget =
        std::max<uint64_t>(budget, s.fast ? 2000 : 6000);
    const unsigned sat_reps = s.fast ? 1 : 3;

    std::printf("\n%s — workers=%u, io=threads vs io=reactor, "
                "calibrated capacity %.0f qps, saturation offered "
                "%.0f qps\n",
                app_name.c_str(), workers, cap, sat_offered);
    std::printf("  %6s", "conns");
    for (int m = 0; m < 2; m++)
        std::printf("  %8s:sat %8s %6s %7s",
                    net::ioModeName(io_modes[m].mode), "p95@70%",
                    "thr", "wr/req");
    std::printf("\n");

    std::vector<Cell> cells;
    for (unsigned conns : conn_counts) {
        std::printf("  %6u", conns);
        for (int m = 0; m < 2; m++) {
            Cell cell;
            cell.io = net::ioModeName(io_modes[m].mode);
            cell.conns = conns;
            ConnScaledHarness h(io_modes[m], conns);
            // Saturation at this connection count: deep overload,
            // the median achieved QPS over repeats is the measured
            // ceiling.
            std::vector<double> achieved;
            for (unsigned rep = 0; rep < sat_reps; rep++) {
                const core::RunResult over = bench::measureAt(
                    h, *app, sat_offered, workers, sat_budget,
                    s.seed + conns + 1000 * rep,
                    /*keep_samples=*/false, s.pinWorkers);
                achieved.push_back(over.achievedQps);
            }
            cell.satQps = util::percentileOf(achieved, 50.0);
            // Tail latency at equal (70% of calibrated capacity)
            // load, with the response-write syscall count taken
            // around the same run.
            cell.offeredQps = lat_offered;
            const uint64_t wr_before =
                util::probe::value(util::probe::kRespWrites);
            cell.at70 = bench::measureAt(
                h, *app, cell.offeredQps, workers, budget,
                s.seed + conns + 1, /*keep_samples=*/false,
                s.pinWorkers);
            const uint64_t wr_after =
                util::probe::value(util::probe::kRespWrites);
            const uint64_t total_reqs =
                budget + std::max<uint64_t>(50, budget / 10);
            cell.writesPerReq = static_cast<double>(
                                    wr_after - wr_before) /
                static_cast<double>(total_reqs);
            cell.threads = h.peakThreads();
            std::printf(" %12.0f %8s %6u %7.3f", cell.satQps,
                        bench::fmtP95Cell(cell.at70, cell.offeredQps)
                            .c_str(),
                        cell.threads, cell.writesPerReq);
            cells.push_back(std::move(cell));
        }
        std::printf("\n");
    }

    // The tentpole claim, as a summary line: at the largest
    // connection count the threads backend has spawned about one
    // thread per connection while the reactor column stayed flat,
    // at no saturation cost.
    const Cell& big_threads = cells[cells.size() - 2];
    const Cell& big_reactor = cells[cells.size() - 1];
    std::printf("\n  @%u conns: threads backend %u process threads, "
                "reactor %u; saturation reactor/threads = %.2f\n",
                conn_counts.back(), big_threads.threads,
                big_reactor.threads,
                big_threads.satQps > 0.0
                    ? big_reactor.satQps / big_threads.satQps
                    : 0.0);

    // Machine-readable report.
    bench::JsonWriter json;
    json.beginObject();
    json.str("figure", "fig10_connection_scaling");
    json.str("git_rev", bench::gitRevision());
    json.beginObject("config");
    json.str("app", app_name);
    json.num("workers", workers);
    json.num("reactors_default", 2);
    json.num("calibrated_capacity_qps", cap);
    json.num("saturation_offered_qps", sat_offered);
    json.num("saturation_budget",
             static_cast<double>(sat_budget));
    json.num("saturation_repeats", sat_reps);
    json.num("size_factor", s.sizeFactor);
    json.num("seed", static_cast<double>(s.seed));
    json.boolean("fast", s.fast);
    json.boolean("pin_workers", s.pinWorkers);
    json.num("request_budget", static_cast<double>(budget));
    json.endObject();
    json.beginArray("points");
    for (const Cell& c : cells) {
        json.beginObject();
        json.str("io", c.io);
        json.num("connections", c.conns);
        json.num("saturation_qps", c.satQps);
        json.num("offered_qps", c.offeredQps);
        json.num("achieved_qps", c.at70.achievedQps);
        json.num("p50_ns",
                 static_cast<double>(c.at70.latency.sojourn.p50Ns));
        json.num("p95_ns",
                 static_cast<double>(c.at70.latency.sojourn.p95Ns));
        json.num("p99_ns",
                 static_cast<double>(c.at70.latency.sojourn.p99Ns));
        json.num("process_threads", c.threads);
        json.num("write_syscalls_per_req", c.writesPerReq);
        json.boolean("gen_lagged",
                     bench::genLagInvalidates(c.at70, c.offeredQps));
        json.endObject();
    }
    json.endArray();
    json.endObject();
    if (bench::writeTextFile("BENCH_fig10.json", json.text()))
        std::printf("\n  wrote BENCH_fig10.json\n");
    return 0;
}
