#ifndef TAILBENCH_UTIL_ALLOC_PROBE_H_
#define TAILBENCH_UTIL_ALLOC_PROBE_H_

/**
 * @file
 * Hot-path overhead counters: heap allocations, queue wakeups,
 * response write syscalls, eventfd wakes. The measurement side of the
 * zero-allocation / syscall-batched serving path — microbench_hotpath
 * and fig10_connection_scaling report these per request.
 *
 * The allocation count comes from a global operator new replacement
 * (alloc_probe.cc) that bumps a relaxed atomic when the probe is
 * enabled; disabled, the hook is a single relaxed load on top of
 * malloc. Under ASan/TSan the replacement is compiled out entirely —
 * the sanitizers interpose their own allocator and must keep it — so
 * kHeapAllocs reads 0 there; the other counters still work.
 *
 * The counters are process-global and intentionally crude: drivers
 * snapshot before/after a measured window and divide deltas by the
 * request count. Enable programmatically (setEnabled) or via the
 * TAILBENCH_ALLOC_PROBE env knob (initFromEnv, called by the bench
 * drivers' settings loader).
 */

#include <atomic>
#include <cstdint>

namespace tb::util::probe {

enum Counter : unsigned {
    kHeapAllocs = 0,    // operator new calls (0 under sanitizers)
    kQueueNotifies,     // BlockingQueue condvar notify calls
    kRespWrites,        // server response send()/write() syscalls
    kEventfdWakes,      // reactor cross-thread eventfd writes
    kCounterCount,
};

/** "heap_allocs", "queue_notifies", ... — for tables and JSON keys. */
const char* counterName(Counter c);

// Storage lives in alloc_probe.cc; exposed so add() inlines to a
// relaxed load + (when enabled) a relaxed increment.
extern std::atomic<bool> g_enabled;
extern std::atomic<uint64_t> g_counters[kCounterCount];

inline void
add(Counter c, uint64_t n = 1)
{
    if (g_enabled.load(std::memory_order_relaxed))
        g_counters[c].fetch_add(n, std::memory_order_relaxed);
}

inline bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void setEnabled(bool on);

/** Current value of one counter. */
uint64_t value(Counter c);

/** Zeroes every counter (enabled state unchanged). */
void reset();

/** Enables the probe when TAILBENCH_ALLOC_PROBE is set. */
void initFromEnv();

/** True when the operator-new hook is compiled in (i.e. not a
 * sanitizer build) — lets drivers label an expected-zero column. */
bool allocHookActive();

}  // namespace tb::util::probe

#endif  // TAILBENCH_UTIL_ALLOC_PROBE_H_
