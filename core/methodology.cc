#include "core/methodology.h"

#include <algorithm>

namespace tb::core {

double
estimateSaturationQps(Harness& harness, apps::App& app, unsigned threads,
                      uint64_t seed, uint64_t probeRequests)
{
    HarnessConfig cfg;
    // Offered load far beyond any plausible capacity: the queue is
    // never empty, so workers run back to back and the probe measures
    // pure service times.
    cfg.qps = 1e9;
    cfg.workerThreads = threads;
    cfg.warmupRequests = std::max<uint64_t>(8, probeRequests / 8);
    cfg.measuredRequests = std::max<uint64_t>(16, probeRequests);
    cfg.seed = seed;
    const RunResult r = harness.run(app, cfg);
    const double mean_service_ns = r.latency.service.meanNs;
    if (mean_service_ns <= 0.0)
        return 1.0;
    return static_cast<double>(std::max(1u, threads)) * 1e9 /
        mean_service_ns;
}

}  // namespace tb::core
