#ifndef TAILBENCH_CORE_TRANSPORT_H_
#define TAILBENCH_CORE_TRANSPORT_H_

/**
 * @file
 * The transport seam of the harness API. The paper's methodology is a
 * *client library* (open-loop generation + timestamping) decoupled
 * from a *server request loop* (the paper's tb_recv_req /
 * tb_send_resp); everything configuration-specific — in-memory queue,
 * loopback socket, real NIC — lives behind this pair of interfaces:
 *
 *   client side                      server side
 *   Transport::sendRequest   --->   ServerPort::recvReq
 *   Transport::recvResponse  <---   ServerPort::sendResp
 *
 * The LoadClient (core/client.h) drives the client side; the
 * ServiceLoop (core/service.h) drives the server side. Neither knows
 * which transport connects them, which is what lets the integrated,
 * loopback and networked configurations share one measurement code
 * path (paper Sec. III).
 *
 * Timestamp ownership: genNs is stamped by the client *before*
 * sendRequest (coordinated-omission-free by construction); startNs and
 * endNs are stamped by the service loop around App::process. A
 * transport that crosses a real network additionally restamps
 * timing.endNs at client-side receipt, so the response path's network
 * cost lands in sojourn — the in-process transport leaves the
 * service-side stamp untouched (there is no hop to pay).
 */

#include <vector>

#include "core/harness.h"
#include "core/request_queue.h"
#include "core/sharded_port.h"

namespace tb::core {

/** One completed request, traveling service -> client. The timing
 * carries the echoed genNs plus the service-side start/end stamps;
 * ctx echoes Request::ctx (see request_queue.h). */
struct Response {
    uint64_t id = 0;
    uint64_t checksum = 0;
    RequestTiming timing;
    uint64_t ctx = 0;
};

/** Client side of a harness transport. sendRequest is called only
 * from the generator thread, recvResponse only from the collector
 * thread; implementations need not support more callers. */
class Transport {
  public:
    virtual ~Transport();

    /** Hands one request to the service side. Must not block on the
     * service (open loop): queue or socket-buffer the request. */
    virtual void sendRequest(Request&& req) = 0;

    /**
     * Blocks for the next completed response. Returns false when the
     * stream is finished: finishSend() was called and every response
     * has been delivered.
     */
    virtual bool recvResponse(Response& out) = 0;

    /** Signals that no further request will be sent; after the service
     * drains, recvResponse unblocks with false. */
    virtual void finishSend() = 0;
};

/** Server side of a harness transport — the paper's tb_recv_req /
 * tb_send_resp pair, consumed by the shared ServiceLoop. */
class ServerPort {
  public:
    virtual ~ServerPort();

    /** Blocks for the next request; false when the client finished
     * sending and the backlog is drained — workers exit then. May be
     * called from many worker threads. */
    virtual bool recvReq(Request& out) = 0;

    /**
     * Batched variant: blocks like recvReq, then delivers up to
     * @p max requests into @p out (cleared first). Returns the count;
     * 0 means the stream is finished, exactly like recvReq's false.
     * The default degrades to one scalar recvReq, so ports without a
     * batch-capable queue behind them need not override — the shared
     * ServiceLoop always calls this form.
     */
    virtual size_t recvReqBatch(std::vector<Request>& out, size_t max);

    /**
     * Called once by each service worker (with its 0-based index)
     * before its first recvReq, from the worker's own thread. Ports
     * with per-worker state — the sharded RequestPool binds the
     * calling thread to its shard here — override it; the default is
     * a no-op.
     */
    virtual void bindWorker(unsigned worker);

    /** Delivers one completed response toward the client. May be
     * called from many worker threads. */
    virtual void sendResp(Response&& resp) = 0;

    /**
     * Batched variant: delivers every response in @p resps (emptied on
     * return, capacity kept for the caller's reuse). The ServiceLoop
     * sends each recvReqBatch's worth of responses through this, so a
     * port that can coalesce — one queue hand-off, one socket write,
     * one cross-thread wake for the run — gets the whole batch at
     * once. The default degrades to per-response sendResp. May be
     * called from many worker threads.
     */
    virtual void sendRespBatch(std::vector<Response>& resps);

    /** Called exactly once, by the last worker to exit the service
     * loop: no further sendResp will happen. */
    virtual void closeResponses() = 0;
};

/**
 * The integrated configuration's transport: both sides in one process,
 * connected by the request pool and an unbounded response queue. Zero
 * marshalling, zero copies beyond the queue hand-off — the
 * lowest-overhead transport, which is why the paper uses the
 * integrated setup as the reference the networked ones are validated
 * against.
 *
 * The request side is a RequestPool (core/sharded_port.h): the
 * default PortOptions keep the classic single shared queue; a sharded
 * policy gives each service worker its own shard with batched pop and
 * optional stealing. Resolve PortOptions::shards to the worker count
 * before constructing.
 */
class InProcessTransport final : public Transport {
  public:
    explicit InProcessTransport(const PortOptions& opts = {});

    ServerPort& serverPort() { return port_; }

    void sendRequest(Request&& req) override;
    bool recvResponse(Response& out) override;
    void finishSend() override;

  private:
    class Port final : public ServerPort {
      public:
        explicit Port(InProcessTransport& owner) : owner_(owner) {}
        bool recvReq(Request& out) override;
        size_t recvReqBatch(std::vector<Request>& out,
                            size_t max) override;
        void bindWorker(unsigned worker) override;
        void sendResp(Response&& resp) override;
        void sendRespBatch(std::vector<Response>& resps) override;
        void closeResponses() override;

      private:
        InProcessTransport& owner_;
    };

    RequestPool requests_;
    BlockingQueue<Response> responses_;
    Port port_;
    /** Collector-side buffer: recvResponse (collector thread only,
     * per the Transport contract) drains the whole response backlog
     * in one popAll swap, then serves from here allocation-free. */
    std::vector<Response> rx_;
    size_t rx_head_ = 0;
};

}  // namespace tb::core

#endif  // TAILBENCH_CORE_TRANSPORT_H_
