#ifndef TAILBENCH_NET_REACTOR_H_
#define TAILBENCH_NET_REACTOR_H_

/**
 * @file
 * Event-loop (epoll) IO backend for the TCP server: C10k connection
 * counts on a fixed thread budget, where the thread-per-connection
 * backend spawns one reader per live connection.
 *
 *   ReactorPool   N Reactor threads. Reactor 0 owns the (nonblocking)
 *                 listening socket and distributes accepted
 *                 connections round-robin by connection serial —
 *                 serial % N is the owning reactor, so response
 *                 routing needs no shared map at all.
 *   Reactor       one epoll loop. Reads are nonblocking into a
 *                 per-reactor reusable IO buffer and framed
 *                 incrementally (net/wire.h tryDecodeRequestFrameView
 *                 — the same validation as the blocking ByteStream
 *                 framing); every complete request in a read window
 *                 is collected and pushed into the shared
 *                 core::RequestPool as ONE batch with ctx =
 *                 connection serial (one queue lock, at most one
 *                 wakeup, for the whole window), so the ServiceLoop
 *                 workers and every harness run unchanged on top.
 *                 Responses are encoded as fixed-size frames into
 *                 per-thread reusable storage and sent *inline from
 *                 the service-worker thread* under a per-connection
 *                 write mutex — a whole batch of same-connection
 *                 responses coalesces into a single send() — so
 *                 saturation throughput does not pay an extra wakeup
 *                 or a syscall per response. Only a partial write
 *                 falls back to the owning reactor for EPOLLOUT
 *                 continuation: what the socket will not take now
 *                 waits in the connection's output ring.
 *
 * The hot path is allocation-free in steady state: the per-reactor
 * read scratch and each connection's input/output buffers grow once
 * and are reused for the connection's whole life, and decoded request
 * payloads are copied into a per-reactor epoch-recycled bump arena
 * (util/arena.h; TAILBENCH_PAYLOAD_ARENA=0 falls back to owning
 * std::string payloads for A/B measurement).
 *
 * Close protocol mirrors the thread-per-connection backend: a
 * connection is closed by whichever event makes (read-side closed &&
 * no outstanding requests && output drained) true, so the FIN after
 * the last response is what ends the client's response stream.
 *
 * Select the backend per server with IoOptions (TcpServer), the
 * `io=threads|reactor` argument of tb_net_server, or the
 * TAILBENCH_IO_MODE / TAILBENCH_REACTORS environment knobs
 * (ioOptionsFromEnv — the harness-internal servers read them, so
 * every existing driver can run either backend unmodified).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/sharded_port.h"
#include "core/transport.h"

namespace tb::net {

enum class IoMode {
    kThreads,  // one reader thread per live connection (baseline)
    kReactor,  // fixed pool of epoll event loops
};

/** "threads" / "reactor" — for driver tables and logs. */
const char* ioModeName(IoMode mode);

struct IoOptions {
    IoMode mode = IoMode::kThreads;
    /** Reactor (event-loop) threads; 0 = default (2). Ignored under
     * kThreads. */
    unsigned reactors = 0;
    /** Store decoded request payloads in the per-reactor bump arena
     * (steady-state allocation-free). Off = owning std::string per
     * payload, kept as the measurable baseline. kReactor only. */
    bool payloadArena = true;
};

/** TAILBENCH_IO_MODE=threads|reactor, TAILBENCH_REACTORS=<n>,
 * TAILBENCH_PAYLOAD_ARENA=0|1 — with the same warn-and-keep-default
 * handling of malformed values as every other env knob (a typo must
 * not silently flip the measured configuration). */
IoOptions ioOptionsFromEnv();

class Reactor;

/**
 * The fixed set of event-loop threads behind a reactor-mode
 * TcpServer. Decoded requests are pushed into @p sink (which must
 * outlive the pool); responses come back via postResponse from any
 * service-worker thread.
 *
 * Shutdown is two-phase, mirroring TcpServer::stop's strictly
 * downstream order: beginShutdown() synchronously stops accepting
 * and read-closes every connection (after it returns, no further
 * request will be pushed into the sink — the caller may close the
 * RequestPool without racing push); finish(), called after the
 * service workers have drained, flushes pending responses and joins
 * the loops.
 */
class ReactorPool {
  public:
    ReactorPool(core::RequestPool& sink, unsigned reactors,
                bool payloadArena = true);
    ~ReactorPool();

    ReactorPool(const ReactorPool&) = delete;
    ReactorPool& operator=(const ReactorPool&) = delete;

    /** Spawns the loops; reactor 0 adopts @p listenFd (made
     * nonblocking; not owned — the server still closes it). */
    void start(int listenFd);

    /** Routes one completed response to the owning reactor
     * (resp.ctx is the connection serial). Any-thread safe. */
    void postResponse(const core::Response& resp);

    /** Batched variant: contiguous same-ctx runs in @p resps coalesce
     * into one encode + one send() on the owning reactor (worker
     * batches arrive connection-ordered from the per-connection read
     * windows, so run detection is a single pass). Empties @p resps,
     * keeping its capacity. Any-thread safe. */
    void postResponseBatch(std::vector<core::Response>& resps);

    void beginShutdown();
    void finish();

    unsigned reactorCount() const
    {
        return static_cast<unsigned>(reactors_.size());
    }

  private:
    friend class Reactor;

    /** Accept-side distribution: assigns the next serial and hands
     * the connection to reactor (serial % N). */
    void dispatch(int fd);

    core::RequestPool& sink_;
    std::vector<std::unique_ptr<Reactor>> reactors_;
    std::atomic<uint64_t> next_serial_{1};
    const bool payload_arena_;
};

}  // namespace tb::net

#endif  // TAILBENCH_NET_REACTOR_H_
