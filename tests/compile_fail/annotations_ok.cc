/**
 * Positive control for the thread-safety harness: correctly annotated
 * code must build (and run) under every compiler, with or without
 * TAILBENCH_THREAD_SAFETY. If this binary stops compiling, the
 * compile_fail cases prove nothing — a harness that rejects
 * everything "passes" both of them.
 */

#include <cstdio>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
  public:
    void
    increment()
    {
        tb::util::MutexLock lock(mu_);
        incrementLocked();
    }

    int
    value()
    {
        tb::util::MutexLock lock(mu_);
        return value_;
    }

    void
    waitForPositive()
    {
        tb::util::MutexLock lock(mu_);
        while (value_ <= 0)
            cv_.wait(lock);
    }

    void
    notify()
    {
        cv_.notifyAll();
    }

  private:
    void
    incrementLocked() TB_REQUIRES(mu_)
    {
        value_++;
    }

    tb::util::Mutex mu_;
    tb::util::CondVar cv_;
    int value_ TB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int
main()
{
    Counter c;
    c.increment();
    c.increment();
    c.notify();
    c.waitForPositive();
    if (c.value() != 2) {
        std::fprintf(stderr, "annotated counter miscounted\n");
        return 1;
    }
    std::printf("annotations_ok: pass\n");
    return 0;
}
