#ifndef TAILBENCH_UTIL_RNG_H_
#define TAILBENCH_UTIL_RNG_H_

/**
 * @file
 * Seeded pseudo-random number generator for load generation and
 * synthetic workloads.
 *
 * xoshiro256++ with a splitmix64-expanded seed: fast enough for the
 * open-loop generator's hot path (sub-ns next()) and fully
 * deterministic, which the whole methodology depends on — the same
 * TAILBENCH_SEED must produce the same request stream, the same
 * arrival schedule, and the same per-app service-time draws.
 */

#include <cmath>
#include <cstdint>

namespace tb::util {

/** splitmix64 step; also used standalone to derive sub-seeds. */
inline uint64_t
splitmix64(uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Mixes two 64-bit values into one (for per-app / per-request seeds). */
inline uint64_t
mix64(uint64_t a, uint64_t b)
{
    uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitmix64(s);
}

class Rng {
  public:
    explicit Rng(uint64_t seed = 42)
    {
        uint64_t sm = seed;
        for (auto& w : s_)
            w = splitmix64(sm);
    }

    /** Uniform 64-bit value (xoshiro256++). */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, n); returns 0 when n == 0. */
    uint64_t
    nextInt(uint64_t n)
    {
        return n == 0 ? 0 : next() % n;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * Exponentially distributed sample with the given mean — the
     * open-loop Poisson arrival process draws its interarrival gaps
     * here. log1p(-u) keeps precision for small u and never takes
     * log(0) since u < 1.
     */
    double
    nextExponential(double mean)
    {
        return -mean * std::log1p(-nextDouble());
    }

    /** Standard normal sample (Box-Muller, one value per call). */
    double
    nextGaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = nextDouble();
        while (u1 <= 0.0)
            u1 = nextDouble();
        const double u2 = nextDouble();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
    double cached_ = 0.0;
    bool have_cached_ = false;
};

}  // namespace tb::util

#endif  // TAILBENCH_UTIL_RNG_H_
