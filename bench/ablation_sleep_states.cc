/**
 * @file
 * Sleep-state ablation: tail latency vs. deep-sleep wake latency across
 * load levels.
 *
 * The paper's motivation (Sec. II): "deep sleep states have transition
 * latencies of hundreds of microseconds" — the same timescale as the
 * short-request applications, so idle power management and tail latency
 * are in direct tension (PowerNap, DreamWeaver). This driver quantifies
 * that tension on the simulated machine: at low load nearly every request
 * lands on a cold core and pays the full transition, while at high load
 * cores rarely idle long enough to enter the state. The interesting
 * output is the low-load rows: energy-proportional idling is exactly
 * what hurts the p95/p99 most.
 *
 * Columns: per wake-latency setting, p95 sojourn and the fraction of
 * requests that paid a wake transition.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();

    // silo and specjbb: the paper's two shortest-request applications,
    // where a 100 us transition is ~ the whole service time.
    const std::vector<std::string> app_names = {"silo", "specjbb"};
    const std::vector<double> wake_us = {0.0, 50.0, 200.0, 1000.0};
    const std::vector<double> loads = s.fast
        ? std::vector<double>{0.1, 0.5}
        : std::vector<double>{0.05, 0.1, 0.3, 0.5, 0.7};

    for (const auto& name : app_names) {
        bench::printHeader(
            "Sleep-state ablation: " + name +
            " p95 sojourn (ms) and %% of requests paying the wake");
        auto app = bench::makeBenchApp(name, s);
        sim::SimHarness probe;
        const double sat =
            bench::calibrateSaturation(probe, *app, 1, s);
        const uint64_t n = bench::requestBudget(name, s);

        std::printf("%8s", "load");
        for (double w : wake_us)
            std::printf("     wake=%4.0fus      ", w);
        std::printf("\n");

        for (double load : loads) {
            std::printf("%7.0f%%", load * 100.0);
            for (double w : wake_us) {
                sim::MachineConfig mc;
                // Entry threshold: a typical deep C-state target
                // residency; the wake cost is the sweep variable.
                mc.sleepEntryNs = 50'000.0;
                mc.sleepWakeNs = w * 1000.0;
                sim::SimHarness h(mc);
                const core::RunResult r = bench::measureAt(
                    h, *app, load * sat, 1, n, s.seed);
                const double woke = 100.0 *
                    static_cast<double>(h.lastStats().sleepWakeups) /
                    static_cast<double>(r.latency.sojourn.count);
                std::printf(" %9s ms %4.0f%%",
                            bench::fmtMs(static_cast<double>(
                                r.latency.sojourn.p95Ns)).c_str(),
                            woke);
            }
            std::printf("\n");
        }
        std::printf("(check: the wake=0 column is flat across the row "
                    "family; deeper states inflate low-load tails by up "
                    "to the full transition, and the effect fades as "
                    "load rises)\n");
    }
    return 0;
}
