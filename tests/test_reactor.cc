/** Stress test: the epoll reactor backend (net/reactor.h) at
 * many-connection scale — ≥512 concurrent persistent connections
 * against one fixed-thread server, every request answered on its own
 * connection, every stream ended by the server's FIN; plus shutdown
 * with connections still open, and repeated start/stop cycles. */

#include "net/reactor.h"

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/server_harness.h"
#include "net/wire.h"
#include "util/clock.h"
#include "util/rng.h"

#include "tests/test_util.h"

using tb::core::Request;
using tb::core::Response;

namespace {

std::unique_ptr<tb::apps::App>
makeTestApp()
{
    auto app = tb::apps::makeApp("img-dnn");
    tb::apps::AppConfig cfg;
    cfg.seed = 42;
    cfg.sizeFactor = 0.05;  // mean service ~25 us
    app->init(cfg);
    return app;
}

/** Both socket ends live in this process: N connections need ~2N fds
 * plus slack, and CI's default soft limit (1024) is below what the
 * 512-connection stress uses. Raise toward the hard limit; return the
 * connection count the resulting limit safely supports. */
unsigned
connectionBudget(unsigned want)
{
    const rlim_t need = 4 * static_cast<rlim_t>(want) + 256;
    struct rlimit rl;
    if (::getrlimit(RLIMIT_NOFILE, &rl) != 0)
        return want;
    if (rl.rlim_cur < need) {
        rl.rlim_cur = need < rl.rlim_max ? need : rl.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &rl);
        ::getrlimit(RLIMIT_NOFILE, &rl);
    }
    if (rl.rlim_cur >= need)
        return want;
    const rlim_t usable = rl.rlim_cur > 256 ? rl.rlim_cur - 256 : 0;
    return static_cast<unsigned>(usable / 4);
}

}  // namespace

int
main()
{
    // ≥512 concurrent persistent connections, a fixed 2-reactor /
    // 2-worker server, a few requests per connection with ids reused
    // across *all* connections — per-connection routing is the only
    // thing that can keep the responses straight.
    {
        const unsigned kConns = connectionBudget(512);
        CHECK(kConns >= 512u);  // the environment must allow the claim
        constexpr uint64_t kPerConn = 3;

        auto app = makeTestApp();
        tb::net::IoOptions io;
        io.mode = tb::net::IoMode::kReactor;
        io.reactors = 2;
        tb::core::PortOptions popts;
        popts.policy = tb::core::QueuePolicy::kSharded;
        tb::net::TcpServer server(*app, 2, 0, true, popts, {}, io);
        CHECK(server.listening());
        CHECK_EQ(server.reactorCount(), 2u);
        server.start();

        std::vector<int> fds(kConns, -1);
        for (unsigned c = 0; c < kConns; c++) {
            fds[c] = tb::net::connectTcp("127.0.0.1", server.port());
            CHECK(fds[c] >= 0);
        }

        // Every connection sends ids 0..kPerConn-1; genNs carries the
        // connection index so cross-connection leaks are detectable.
        tb::util::Rng rng(31);
        for (unsigned c = 0; c < kConns; c++) {
            tb::net::FdStream s(fds[c]);
            for (uint64_t i = 0; i < kPerConn; i++) {
                Request req;
                req.id = i;
                req.payload = app->genRequest(rng);
                req.genNs = static_cast<int64_t>(c) * 1000 +
                    static_cast<int64_t>(i);
                CHECK(tb::net::sendRequestFrame(s, req));
            }
            ::shutdown(fds[c], SHUT_WR);
        }

        // Collect every stream: exactly kPerConn responses, each
        // carrying this connection's genNs tags, then clean EOF.
        for (unsigned c = 0; c < kConns; c++) {
            tb::net::FdStream s(fds[c]);
            std::set<uint64_t> ids;
            Response resp;
            for (uint64_t i = 0; i < kPerConn; i++) {
                CHECK(tb::net::recvResponseFrame(s, resp) ==
                      tb::net::WireResult::kOk);
                CHECK(ids.insert(resp.id).second);
                CHECK_EQ(resp.timing.genNs / 1000,
                         static_cast<int64_t>(c));
                CHECK(resp.timing.endNs > resp.timing.startNs);
            }
            CHECK(tb::net::recvResponseFrame(s, resp) ==
                  tb::net::WireResult::kEof);
            ::close(fds[c]);
        }
        server.stop();
    }

    // Shutdown with connections still open and idle: stop() must
    // read-close them, drain, and join without hanging; the clients
    // then observe EOF.
    {
        auto app = makeTestApp();
        tb::net::IoOptions io;
        io.mode = tb::net::IoMode::kReactor;
        tb::net::TcpServer server(*app, 1, 0, true, {}, {}, io);
        CHECK(server.listening());
        server.start();
        std::vector<int> fds;
        for (unsigned c = 0; c < 32; c++) {
            const int fd =
                tb::net::connectTcp("127.0.0.1", server.port());
            CHECK(fd >= 0);
            fds.push_back(fd);
        }
        // One in-flight request on the first connection: its response
        // must still be flushed through the shutdown.
        tb::util::Rng rng(37);
        {
            tb::net::FdStream s(fds[0]);
            Request req;
            req.id = 9;
            req.payload = app->genRequest(rng);
            req.genNs = tb::util::monotonicNs();
            CHECK(tb::net::sendRequestFrame(s, req));
            Response resp;
            CHECK(tb::net::recvResponseFrame(s, resp) ==
                  tb::net::WireResult::kOk);
            CHECK_EQ(resp.id, static_cast<uint64_t>(9));
        }
        server.stop();
        for (const int fd : fds) {
            tb::net::FdStream s(fd);
            Response resp;
            CHECK(tb::net::recvResponseFrame(s, resp) ==
                  tb::net::WireResult::kEof);
            ::close(fd);
        }
    }

    // Hostile small-buffer peer: a client with a tiny receive buffer
    // that pipelines a deep burst WITHOUT reading forces the server's
    // coalesced sends to go partial — the remainder must be buffered
    // and continued via EPOLLOUT, and every response must eventually
    // arrive intact and exactly once. This is the partial-write
    // continuation path of the write-coalescing fast path.
    {
        auto app = makeTestApp();
        tb::net::IoOptions io;
        io.mode = tb::net::IoMode::kReactor;
        io.reactors = 1;
        tb::net::TcpServer server(*app, 1, 0, true, {}, {}, io);
        CHECK(server.listening());
        server.start();

        const int fd = tb::net::connectTcp("127.0.0.1", server.port());
        CHECK(fd >= 0);
        // Shrink the client's receive window so the server's socket
        // buffer + our window fill long before the burst's responses
        // do (2000 responses = 96 KB). Must be set before data flows.
        int rcv = 1024;
        CHECK(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv,
                           sizeof(rcv)) == 0);

        constexpr uint64_t kBurst = 2000;
        tb::util::Rng rng(43);
        {
            tb::net::FdStream s(fd);
            for (uint64_t i = 0; i < kBurst; i++) {
                Request req;
                req.id = i;
                req.payload = app->genRequest(rng);
                req.genNs = tb::util::monotonicNs();
                CHECK(tb::net::sendRequestFrame(s, req));
            }
            ::shutdown(fd, SHUT_WR);
        }

        // Only now start reading: the server has been writing into a
        // wall the whole time. Every id must come back exactly once,
        // then clean EOF (server FIN after the last response).
        {
            tb::net::FdStream s(fd);
            std::set<uint64_t> ids;
            Response resp;
            for (uint64_t i = 0; i < kBurst; i++) {
                CHECK(tb::net::recvResponseFrame(s, resp) ==
                      tb::net::WireResult::kOk);
                CHECK(ids.insert(resp.id).second);
            }
            CHECK_EQ(ids.size(), static_cast<size_t>(kBurst));
            CHECK(tb::net::recvResponseFrame(s, resp) ==
                  tb::net::WireResult::kEof);
        }
        ::close(fd);
        server.stop();
    }

    // Lifecycle: repeated servers in one process (fresh epoll/eventfd
    // sets each time) and stop() idempotence.
    {
        auto app = makeTestApp();
        for (int round = 0; round < 3; round++) {
            tb::net::IoOptions io;
            io.mode = tb::net::IoMode::kReactor;
            io.reactors = 1;
            tb::net::TcpServer server(*app, 1, 0, true, {}, {}, io);
            CHECK(server.listening());
            server.start();
            tb::net::TcpClientTransport t("127.0.0.1",
                                          server.port());
            CHECK(t.connected());
            tb::util::Rng rng(41);
            Request req;
            req.id = static_cast<uint64_t>(round);
            req.payload = app->genRequest(rng);
            req.genNs = tb::util::monotonicNs();
            t.sendRequest(std::move(req));
            Response resp;
            CHECK(t.recvResponse(resp));
            CHECK_EQ(resp.id, static_cast<uint64_t>(round));
            t.finishSend();
            CHECK(!t.recvResponse(resp));
            server.stop();
            server.stop();  // idempotent
        }
    }

    return TEST_MAIN_RESULT();
}
