/**
 * Negative compile test (ctest WILL_FAIL, Clang +
 * TAILBENCH_THREAD_SAFETY only): calling a TB_REQUIRES function
 * without holding the named mutex must be rejected by
 * -Werror=thread-safety. This covers the *Locked-helper discipline
 * (flushLocked, closeFdLocked, wakeLocked): the suffix is a promise
 * the analysis, not the reader, enforces.
 */

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Flusher {
  public:
    void
    flushWithoutLock()
    {
        flushLocked();  // BUG under test: mu_ not held
    }

  private:
    void
    flushLocked() TB_REQUIRES(mu_)
    {
        pending_ = 0;
    }

    tb::util::Mutex mu_;
    int pending_ TB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int
main()
{
    Flusher f;
    f.flushWithoutLock();
    return 0;
}
