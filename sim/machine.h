#ifndef TAILBENCH_SIM_MACHINE_H_
#define TAILBENCH_SIM_MACHINE_H_

/**
 * @file
 * Simulated machine description, mirroring the paper's Table II
 * (8-core Xeon E5-2670 class, 20 MB LLC, DDR3-1333).
 *
 * Two consumers share this contract:
 *
 *  - the virtual-time timing model (sim/sim_harness.h, PR 2), which
 *    prices requests from freqGhz, the hit latencies, the DRAM
 *    parameters, idealMemory, batchCorunners, and the sleep knobs;
 *  - the structural cache hierarchy (sim/cache.h), which reads ONLY
 *    llcMb — L3 ways are fixed at 16 and sets derive from llcMb (see
 *    HierarchyConfig::fromMachine). The hit latencies are deliberately
 *    unused there: the structural pass counts where each access was
 *    served, and the timing model is what prices those events.
 */

#include <cstdint>

namespace tb::sim {

struct MachineConfig {
    /** Core clock; 2.4 GHz nominal (DVFS sweeps override). */
    double freqGhz = 2.4;

    // Cache hierarchy (hit latencies in core cycles; L1 hits are
    // folded into the base CPI).
    double l2HitCycles = 12.0;
    double l3HitCycles = 30.0;
    double llcMb = 20.0;

    // DRAM: DDR3-1333, two channels.
    double dramLatencyNs = 70.0;
    double dramPeakGBs = 21.3;

    double branchPenaltyCycles = 17.0;

    /** Zero-latency, infinite-bandwidth memory (Fig. 8 case study). */
    bool idealMemory = false;

    /** Batch corunners contending for LLC and DRAM bandwidth. */
    unsigned batchCorunners = 0;

    /** Deep-sleep model: enter after idling sleepEntryNs; pay
     * sleepWakeNs on the next request. 0 disables. */
    double sleepEntryNs = 0.0;
    double sleepWakeNs = 0.0;
};

/** Counters the timing simulator accumulates per run. Defined with
 * the config so drivers share one vocabulary; populated by
 * SimHarness over the measured window (lastStats()). */
struct MachineStats {
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t l1iMisses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t l3Misses = 0;
    uint64_t branchMisses = 0;
    uint64_t sleepWakeups = 0;

    double
    mpki(uint64_t misses) const
    {
        return instructions == 0
            ? 0.0
            : static_cast<double>(misses) * 1000.0 /
                static_cast<double>(instructions);
    }
};

}  // namespace tb::sim

#endif  // TAILBENCH_SIM_MACHINE_H_
