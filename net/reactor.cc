#include "net/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/wire.h"
#include "util/alloc_probe.h"
#include "util/arena.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace tb::net {

namespace {

constexpr unsigned kDefaultReactors = 2;
constexpr int kMaxEpollEvents = 128;
/** Per-reactor read scratch: one recv's worth of bytes, shared by
 * every connection the reactor owns (decode happens before the next
 * read reuses it). */
constexpr size_t kReadScratchBytes = 64 * 1024;
/** Compact a connection's input buffer once this much consumed
 * prefix accumulates (partial frames keep the tail alive). */
constexpr size_t kCompactThreshold = 4096;
/** Upper bound on the post-stop flush: a peer that stopped reading
 * must not wedge server shutdown. */
constexpr auto kStopFlushDeadline = std::chrono::seconds(3);

void
setNoDelayFd(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** accept4 gives us the new socket already nonblocking in one
 * syscall where the platform has it; elsewhere fall back to
 * accept + fcntl. */
int
acceptNonBlocking(int listenFd)
{
#if defined(SOCK_NONBLOCK)
    return ::accept4(listenFd, nullptr, nullptr, SOCK_NONBLOCK);
#else
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd >= 0 && !setNonBlocking(fd)) {
        ::close(fd);
        errno = EINVAL;
        return -1;
    }
    return fd;
#endif
}

}  // namespace

const char*
ioModeName(IoMode mode)
{
    return mode == IoMode::kReactor ? "reactor" : "threads";
}

IoOptions
ioOptionsFromEnv()
{
    // Both knobs come through the blessed env seam (util/env.h):
    // TAILBENCH_REACTORS gets the shared strict integer parse with
    // warn-and-default; the mode string is validated here since only
    // this file knows the legal values.
    IoOptions io;
    if (const char* m = util::envString("TAILBENCH_IO_MODE")) {
        const std::string mode = m;
        if (mode == "reactor")
            io.mode = IoMode::kReactor;
        else if (mode != "threads" && !mode.empty())
            TB_LOG_WARN("TAILBENCH_IO_MODE=\"%s\" is not "
                        "threads|reactor; keeping threads",
                        m);
    }
    io.reactors = static_cast<unsigned>(
        util::envU64("TAILBENCH_REACTORS", 0, 1, 1024));
    // envFlag is presence-only, but this knob's interesting direction
    // is *disabling* a default-on optimization, so parse the value.
    if (const char* v = util::envString("TAILBENCH_PAYLOAD_ARENA")) {
        const std::string arena = v;
        if (arena == "0" || arena == "off" || arena == "false")
            io.payloadArena = false;
        else if (arena != "1" && arena != "on" && arena != "true")
            TB_LOG_WARN("TAILBENCH_PAYLOAD_ARENA=\"%s\" is not 0|1; "
                        "keeping arena on",
                        v);
    }
    return io;
}

// --------------------------------------------------------------- Reactor

/**
 * One epoll event-loop thread.
 *
 * Thread model: the loop thread owns reads, frame decode, epoll
 * registration and every fd close. The response *write* path runs on
 * the service-worker threads: when a connection has no write backlog,
 * the worker sends the frame inline under the connection's write
 * mutex — the same zero-extra-hop hot path the thread-per-connection
 * backend has — and only a partial write, an existing backlog, or the
 * final response of a read-closed connection wakes the loop thread
 * (for EPOLLOUT continuation / the close). Cross-thread requests
 * (adopted connections, those notifications, shutdown control) travel
 * a task queue woken by an eventfd.
 */
class Reactor {
  public:
    Reactor(ReactorPool& pool, unsigned index, bool payloadArena)
        : pool_(pool), index_(index), arena_enabled_(payloadArena)
    {
    }

    ~Reactor()
    {
        if (epoll_fd_ >= 0)
            ::close(epoll_fd_);
        if (event_fd_ >= 0)
            ::close(event_fd_);
    }

    bool
    init()
    {
        epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
        event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        if (epoll_fd_ < 0 || event_fd_ < 0)
            return false;
        struct epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.ptr = &event_tag_;
        return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_,
                           &ev) == 0;
    }

    void
    start()
    {
        thread_ = std::thread([this] { run(); });
    }

    /** Reactor 0 only: watch @p fd for incoming connections. Queued
     * like any cross-thread task so the listener is registered from
     * the loop thread. */
    void
    adoptListener(int fd)
    {
        setNonBlocking(fd);
        {
            util::MutexLock lock(mu_);
            pending_listener_ = fd;
        }
        wake();
    }

    void
    postAdopt(int fd, uint64_t serial)
    {
        {
            util::MutexLock lock(mu_);
            adopts_.push_back(Adopt{fd, serial});
        }
        wake();
    }

    void
    postResponse(const core::Response& resp)
    {
        postResponseRun(&resp, 1);
    }

    /**
     * Hot path, called from any service-worker thread with a run of
     * @p n responses that all belong to the same connection
     * (rs[0].ctx). The run is encoded into per-thread reusable
     * storage and, with no write backlog, sent inline right here as
     * ONE send() — the steady-state cycle costs the worker one map
     * lookup, one uncontended mutex and one write syscall for the
     * whole run, and wakes the loop thread not at all. The loop is
     * woken only to continue a partial write under EPOLLOUT or to
     * close a drained read-closed connection.
     */
    void
    postResponseRun(const core::Response* rs, size_t n)
    {
        // Reused per worker thread: steady state encodes into
        // already-grown storage, no allocation per run.
        static thread_local std::vector<uint8_t> t_enc;
        const size_t total = n * kResponseFrameBytes;
        if (t_enc.size() < total)
            t_enc.resize(total);
        for (size_t i = 0; i < n; i++)
            encodeResponseFrame(t_enc.data() + i * kResponseFrameBytes,
                                rs[i]);
        const uint64_t serial = rs[0].ctx;
        std::shared_ptr<RConn> c;
        {
            util::MutexLock lock(conns_mu_);
            const auto it = conns_.find(serial);
            if (it != conns_.end())
                c = it->second;
        }
        if (!c) {
            TB_LOG_DEBUG("reactor %u: %zu response(s) for vanished "
                         "connection %llu",
                         index_, n,
                         static_cast<unsigned long long>(serial));
            return;
        }
        bool need_notify = false;
        {
            util::MutexLock lock(c->out_mu);
            if (c->fd >= 0) {
                if (c->out_head >= c->out.size()) {
                    c->out.clear();
                    c->out_head = 0;
                    size_t sent = 0;
                    while (sent < total) {
                        const ssize_t w = ::send(
                            c->fd, t_enc.data() + sent, total - sent,
                            MSG_NOSIGNAL);
                        util::probe::add(util::probe::kRespWrites);
                        if (w > 0) {
                            sent += static_cast<size_t>(w);
                            continue;
                        }
                        if (w < 0 && errno == EINTR)
                            continue;
                        // EAGAIN or a dead peer: buffer the rest and
                        // let the loop continue (and, on the hard
                        // error, close — fd teardown is loop-only).
                        break;
                    }
                    if (sent < total) {
                        c->out.insert(c->out.end(),
                                      t_enc.data() + sent,
                                      t_enc.data() + total);
                        need_notify = true;
                    }
                } else {
                    // Backlog exists: order the run behind it.
                    c->out.insert(c->out.end(), t_enc.data(),
                                  t_enc.data() + total);
                    need_notify = true;
                }
            }
        }
        // Decrement strictly after the frames are written or
        // buffered, so outstanding == 0 implies every response byte
        // is accounted for when the close condition is evaluated.
        if (c->outstanding.fetch_sub(n) == n && c->rd_closed.load())
            need_notify = true;
        if (need_notify)
            postNotify(serial);
    }

    /** Synchronous: returns only after the loop thread has
     * read-closed every connection and stopped accepting — after
     * which this reactor never pushes into the RequestPool again. */
    void
    stopReads()
    {
        util::MutexLock lock(mu_);
        ctrl_stop_reads_ = true;
        wakeLocked();
        while (!reads_stopped_)
            ctrl_cv_.wait(lock);
    }

    void
    requestStop()
    {
        {
            util::MutexLock lock(mu_);
            ctrl_stop_ = true;
        }
        wake();
    }

    void
    join()
    {
        if (thread_.joinable())
            thread_.join();
    }

  private:
    struct Adopt {
        int fd;
        uint64_t serial;
    };

    /**
     * One connection. Loop-thread-only: `in`/`in_head` (undecoded
     * tail) — unannotated because the safety argument is thread
     * identity, not a lock. Shared with the worker write path under
     * `out_mu` (TB_GUARDED_BY, compile-checked): the output backlog
     * `out`/`out_head`, `fd` (writers read it; only the loop thread
     * sets it to -1, under the same lock, so a worker never writes
     * into a closed descriptor) and `armed` (the epoll registration
     * mask, recomputed from guarded state). `outstanding`/`rd_closed`
     * are atomic because the close condition (read-closed &&
     * outstanding == 0 && output drained) is decided on the loop
     * thread from inputs that change on worker threads. When the
     * socket dies before its outstanding responses arrive, the
     * fd = -1 shell survives in the map until the count drains,
     * keeping the bookkeeping exact.
     *
     * Lock order: conns_mu_ before out_mu wherever both are held
     * (anyPendingOutput, teardown); maybeClose releases out_mu
     * before taking conns_mu_ for the erase to respect it.
     */
    struct RConn {
        RConn(int fd_in, uint64_t serial_in)
            : fd(fd_in), serial(serial_in)
        {
        }

        util::Mutex out_mu;
        int fd TB_GUARDED_BY(out_mu);
        const uint64_t serial;
        std::vector<uint8_t> in;
        size_t in_head = 0;
        std::vector<uint8_t> out TB_GUARDED_BY(out_mu);
        size_t out_head TB_GUARDED_BY(out_mu) = 0;
        std::atomic<uint64_t> outstanding{0};
        std::atomic<bool> rd_closed{false};
        /** Events currently registered with epoll; recomputed under
         * out_mu (updateEvents) since it is a function of guarded
         * state. */
        uint32_t armed TB_GUARDED_BY(out_mu) = EPOLLIN;
    };

    void
    postNotify(uint64_t serial)
    {
        {
            util::MutexLock lock(mu_);
            notifies_.push_back(serial);
        }
        wake();
    }

    void
    wake()
    {
        util::MutexLock lock(mu_);
        wakeLocked();
    }

    void
    wakeLocked() TB_REQUIRES(mu_)
    {
        if (wake_armed_)
            return;
        wake_armed_ = true;
        util::probe::add(util::probe::kEventfdWakes);
        const uint64_t one = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(event_fd_, &one, sizeof(one));
    }

    void
    run()
    {
        std::vector<Adopt> adopts;
        std::vector<uint64_t> notifies;
        bool stop_seen = false;
        std::chrono::steady_clock::time_point stop_deadline{};
        for (;;) {
            bool do_stop_reads = false;
            {
                util::MutexLock lock(mu_);
                adopts.swap(adopts_);
                notifies.swap(notifies_);
                if (pending_listener_ >= 0) {
                    listen_fd_ = pending_listener_;
                    pending_listener_ = -1;
                }
                do_stop_reads = ctrl_stop_reads_ && !reads_stopped_;
                if (ctrl_stop_ && !stop_seen) {
                    stop_seen = true;
                    stop_deadline = std::chrono::steady_clock::now() +
                        kStopFlushDeadline;
                }
            }
            if (listen_fd_ >= 0 && !listener_registered_)
                registerListener();
            for (const Adopt& a : adopts)
                handleAdopt(a);
            adopts.clear();
            for (const uint64_t serial : notifies)
                handleNotify(serial);
            notifies.clear();
            if (do_stop_reads)
                handleStopReads();

            if (stop_seen) {
                // Exit once every pending response byte is flushed
                // (or the deadline says a dead peer is wedging us).
                if (!anyPendingOutput() ||
                    std::chrono::steady_clock::now() >= stop_deadline)
                    break;
            }

            struct epoll_event evs[kMaxEpollEvents];
            const int n = ::epoll_wait(epoll_fd_, evs,
                                       kMaxEpollEvents,
                                       stop_seen ? 50 : -1);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                TB_LOG_ERROR("reactor %u: epoll_wait: %s", index_,
                             std::strerror(errno));
                break;
            }
            for (int i = 0; i < n; i++) {
                if (evs[i].data.ptr == &event_tag_)
                    drainEventFd();
                else if (evs[i].data.ptr == &listener_tag_)
                    handleAccept();
                else
                    handleIo(static_cast<RConn*>(evs[i].data.ptr),
                             evs[i].events);
            }
        }
        teardown();
    }

    void
    drainEventFd()
    {
        uint64_t v;
        [[maybe_unused]] const ssize_t n =
            ::read(event_fd_, &v, sizeof(v));
        util::MutexLock lock(mu_);
        wake_armed_ = false;
    }

    void
    registerListener()
    {
        struct epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.ptr = &listener_tag_;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) ==
            0)
            listener_registered_ = true;
        else
            TB_LOG_ERROR("reactor %u: cannot watch listener: %s",
                         index_, std::strerror(errno));
    }

    void
    dropListener()
    {
        if (!listener_registered_)
            return;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        listener_registered_ = false;
        listen_fd_ = -1;
    }

    void
    handleAccept()
    {
        for (;;) {
            const int fd = acceptNonBlocking(listen_fd_);
            if (fd < 0) {
                if (errno == EINTR || errno == ECONNABORTED ||
                    errno == EPROTO)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return;
                if (errno == EMFILE || errno == ENFILE) {
                    // Same throttle as the threads backend: fd
                    // exhaustion is expected under deliberate
                    // overload; level-triggered epoll re-offers the
                    // pending connections after the pause.
                    if (!warned_fd_limit_) {
                        TB_LOG_WARN("reactor: out of file "
                                    "descriptors; throttling "
                                    "accepts");
                        warned_fd_limit_ = true;
                    }
                    // Deliberate pause: with zero spare fds there is
                    // no useful work to interleave, and returning
                    // immediately would spin on EMFILE.
                    ::usleep(1000);  // tb-lint: allow(reactor-block)
                    return;
                }
                dropListener();  // listener shut down
                return;
            }
            setNoDelayFd(fd);
            pool_.dispatch(fd);
        }
    }

    void
    handleAdopt(const Adopt& a)
    {
        if (reads_stopped_flag_) {
            // Raced past shutdown: this connection must not produce
            // requests anymore; refuse it.
            ::close(a.fd);
            return;
        }
        auto conn = std::make_shared<RConn>(a.fd, a.serial);
        struct epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.ptr = conn.get();
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, a.fd, &ev) != 0) {
            TB_LOG_WARN("reactor %u: cannot watch fd %d: %s", index_,
                        a.fd, std::strerror(errno));
            ::close(a.fd);
            return;
        }
        util::MutexLock lock(conns_mu_);
        conns_.emplace(a.serial, std::move(conn));
    }

    /** A worker asked for write continuation or a close check. */
    void
    handleNotify(uint64_t serial)
    {
        std::shared_ptr<RConn> c;
        {
            util::MutexLock lock(conns_mu_);
            const auto it = conns_.find(serial);
            if (it != conns_.end())
                c = it->second;
        }
        if (!c)
            return;
        {
            util::MutexLock lock(c->out_mu);
            flushLocked(c.get());
        }
        updateEvents(c.get());
        maybeClose(c.get());
    }

    void
    handleStopReads()
    {
        dropListener();
        std::vector<std::shared_ptr<RConn>> all;
        {
            util::MutexLock lock(conns_mu_);
            all.reserve(conns_.size());
            for (const auto& [serial, conn] : conns_)
                all.push_back(conn);
        }
        for (const std::shared_ptr<RConn>& c : all) {
            if (!c->rd_closed.load()) {
                c->rd_closed.store(true);
                {
                    util::MutexLock lock(c->out_mu);
                    if (c->fd >= 0)
                        ::shutdown(c->fd, SHUT_RD);
                }
                updateEvents(c.get());
            }
            maybeClose(c.get());
        }
        reads_stopped_flag_ = true;
        {
            util::MutexLock lock(mu_);
            reads_stopped_ = true;
        }
        ctrl_cv_.notifyAll();
    }

    void
    handleIo(RConn* c, uint32_t events)
    {
        if ((events & EPOLLIN) && !c->rd_closed.load())
            handleRead(c);
        if (events & EPOLLOUT) {
            {
                util::MutexLock lock(c->out_mu);
                flushLocked(c);
            }
            updateEvents(c);
        }
        if (events & (EPOLLERR | EPOLLHUP)) {
            // Peer fully gone and nothing left to write through it.
            util::MutexLock lock(c->out_mu);
            if (c->fd >= 0 && c->rd_closed.load() &&
                c->out_head >= c->out.size())
                closeFdLocked(c);
        }
        maybeClose(c);
    }

    void
    handleRead(RConn* c)
    {
        // fd closes are loop-thread-only and this runs on the loop
        // thread, so a snapshot taken under out_mu here cannot go
        // stale across the read loop.
        int fd;
        {
            util::MutexLock lock(c->out_mu);
            fd = c->fd;
        }
        if (fd < 0)
            return;
        for (;;) {
            const ssize_t n =
                ::read(fd, scratch_.data(), scratch_.size());
            if (n > 0) {
                if (!feed(c, scratch_.data(),
                          static_cast<size_t>(n))) {
                    TB_LOG_WARN("reactor: dropping connection after "
                                "a malformed frame");
                    c->rd_closed.store(true);
                    break;
                }
                continue;
            }
            if (n == 0) {
                c->rd_closed.store(true);  // clean EOF at client FIN
                break;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            if (errno == EINTR)
                continue;
            // Abortive: the peer is gone; pending output is
            // undeliverable.
            c->rd_closed.store(true);
            {
                util::MutexLock lock(c->out_mu);
                c->out.clear();
                c->out_head = 0;
                closeFdLocked(c);
            }
            return;
        }
        updateEvents(c);
    }

    /** Frames @p len fresh bytes. Decodes straight out of the shared
     * scratch when the connection holds no partial frame (the common
     * case — zero copies besides the payload), else appends to the
     * connection tail and decodes from there. */
    bool
    feed(RConn* c, const uint8_t* p, size_t len)
    {
        if (c->in_head >= c->in.size()) {
            c->in.clear();
            c->in_head = 0;
            size_t used = 0;
            if (!drainFrames(c, p, len, used))
                return false;
            if (used < len)
                c->in.assign(p + used, p + len);
            return true;
        }
        c->in.insert(c->in.end(), p, p + len);
        size_t used = 0;
        if (!drainFrames(c, c->in.data() + c->in_head,
                         c->in.size() - c->in_head, used))
            return false;
        c->in_head += used;
        if (c->in_head >= c->in.size()) {
            c->in.clear();
            c->in_head = 0;
        } else if (c->in_head > kCompactThreshold) {
            c->in.erase(c->in.begin(),
                        c->in.begin() +
                            static_cast<long>(c->in_head));
            c->in_head = 0;
        }
        return true;
    }

    /** Decodes every complete frame in the window into batch_ and
     * hands the whole batch to the RequestPool at once: one queue
     * lock and at most one consumer wakeup per read window instead of
     * one per frame. Payloads are copied into the per-reactor arena
     * (or an owning string when the arena is disabled) — the view
     * decode itself allocates nothing. */
    bool
    drainFrames(RConn* c, const uint8_t* data, size_t len,
                size_t& used)
    {
        used = 0;
        batch_.clear();
        bool ok = true;
        for (;;) {
            RequestFrameView view;
            size_t consumed = 0;
            const DecodeResult dr = tryDecodeRequestFrameView(
                data + used, len - used, view, consumed);
            if (dr == DecodeResult::kBadFrame) {
                ok = false;  // frames decoded before it still count
                break;
            }
            if (dr == DecodeResult::kNeedMore)
                break;
            core::Request req;
            req.id = view.id;
            req.genNs = view.genNs;
            req.ctx = c->serial;
            const std::string_view payload(
                reinterpret_cast<const char*>(view.payload),
                view.payloadLen);
            if (arena_enabled_)
                req.payload = arena_.store(payload);
            else
                req.payload = std::string(payload);
            batch_.push_back(std::move(req));
            used += consumed;
        }
        if (!batch_.empty()) {
            // Register before push: the worker answering these
            // requests must never observe outstanding == 0 while its
            // own response is in flight.
            c->outstanding.fetch_add(batch_.size());
            pool_.sink_.pushBatch(batch_);  // empties batch_
        }
        return ok;
    }

    /** Writes as much pending output as the socket takes (out_mu
     * held, loop thread); partial-write continuation happens via
     * EPOLLOUT. A hard write error tears the fd down on the spot —
     * closes are loop-thread-only, and this runs only on the loop. */
    void
    flushLocked(RConn* c) TB_REQUIRES(c->out_mu)
    {
        if (c->fd < 0)
            return;
        while (c->out_head < c->out.size()) {
            const ssize_t n = ::send(c->fd, c->out.data() + c->out_head,
                                     c->out.size() - c->out_head,
                                     MSG_NOSIGNAL);
            util::probe::add(util::probe::kRespWrites);
            if (n > 0) {
                c->out_head += static_cast<size_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return;
            if (n < 0 && errno == EINTR)
                continue;
            TB_LOG_DEBUG("reactor: response write failed (peer "
                         "gone?)");
            c->out.clear();
            c->out_head = 0;
            c->rd_closed.store(true);
            closeFdLocked(c);
            return;
        }
        c->out.clear();
        c->out_head = 0;
    }

    /** Re-arms epoll to exactly what the connection needs: EPOLLIN
     * until read-closed (a drained half-closed socket stays
     * level-triggered readable forever — it must be de-registered,
     * not ignored), EPOLLOUT only while output is pending. A worker
     * appending output right after the mask is computed is not lost:
     * that worker also posts a notify, which re-runs this. */
    void
    updateEvents(RConn* c)
    {
        util::MutexLock lock(c->out_mu);
        if (c->fd < 0)
            return;
        const uint32_t want =
            (c->rd_closed.load() ? 0u
                                 : static_cast<uint32_t>(EPOLLIN)) |
            (c->out_head < c->out.size()
                 ? static_cast<uint32_t>(EPOLLOUT)
                 : 0u);
        if (want == c->armed)
            return;
        struct epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = want;
        ev.data.ptr = c;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev) == 0)
            c->armed = want;
    }

    /** De-registers and closes the socket (out_mu held, loop thread
     * only); workers see fd == -1 under the same lock and stop
     * writing. */
    void
    closeFdLocked(RConn* c) TB_REQUIRES(c->out_mu)
    {
        if (c->fd < 0)
            return;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
        ::close(c->fd);
        c->fd = -1;
    }

    /** The close condition, checked after every loop-side state
     * change and on worker notify: read side finished, every
     * registered request answered, every response byte written. The
     * FIN from the orderly shutdown here is what ends the client's
     * response stream. */
    void
    maybeClose(RConn* c)
    {
        if (!c->rd_closed.load() || c->outstanding.load() != 0)
            return;
        const uint64_t serial = c->serial;
        {
            util::MutexLock lock(c->out_mu);
            if (c->fd >= 0) {
                if (c->out_head < c->out.size())
                    return;  // still flushing
                ::shutdown(c->fd, SHUT_WR);
                closeFdLocked(c);
            }
        }
        // Lock order is conns_mu_ -> out_mu everywhere else, so the
        // erase must happen after out_mu is released.
        util::MutexLock lock(conns_mu_);
        conns_.erase(serial);
    }

    bool
    anyPendingOutput()
    {
        util::MutexLock lock(conns_mu_);
        for (const auto& [serial, conn] : conns_) {
            util::MutexLock out_lock(conn->out_mu);
            if (conn->fd >= 0 && conn->out_head < conn->out.size())
                return true;
        }
        return false;
    }

    void
    teardown()
    {
        {
            util::MutexLock lock(conns_mu_);
            for (auto& [serial, conn] : conns_) {
                util::MutexLock out_lock(conn->out_mu);
                closeFdLocked(conn.get());
            }
            conns_.clear();
        }
        dropListener();
        // A stopReads that raced the stop must still be answered.
        {
            util::MutexLock lock(mu_);
            reads_stopped_ = true;
            reads_stopped_flag_ = true;
        }
        ctrl_cv_.notifyAll();
    }

    ReactorPool& pool_;
    const unsigned index_;

    int epoll_fd_ = -1;
    int event_fd_ = -1;
    int listen_fd_ = -1;
    bool listener_registered_ = false;
    bool warned_fd_limit_ = false;
    /** Loop-thread mirror of reads_stopped_, readable without the
     * task-queue lock. */
    bool reads_stopped_flag_ = false;

    std::thread thread_;
    /** serial -> connection. Shared with the worker write path for
     * lookup under conns_mu_; all map mutation is loop-thread. */
    util::Mutex conns_mu_;
    std::unordered_map<uint64_t, std::shared_ptr<RConn>> conns_
        TB_GUARDED_BY(conns_mu_);
    std::vector<uint8_t> scratch_ =
        std::vector<uint8_t>(kReadScratchBytes);
    /** Arena for decoded payloads; the loop thread is the single
     * producer (store), worker-held PayloadRefs release from any
     * thread. */
    util::PayloadArena arena_;
    const bool arena_enabled_;
    /** Per-read-window request batch; loop-thread-only, reused so the
     * steady state allocates nothing (pushBatch returns capacity). */
    std::vector<core::Request> batch_;

    // Cross-thread task queue. wake_armed_ collapses redundant
    // eventfd writes.
    util::Mutex mu_;
    util::CondVar ctrl_cv_;
    std::vector<Adopt> adopts_ TB_GUARDED_BY(mu_);
    std::vector<uint64_t> notifies_ TB_GUARDED_BY(mu_);
    int pending_listener_ TB_GUARDED_BY(mu_) = -1;
    bool ctrl_stop_reads_ TB_GUARDED_BY(mu_) = false;
    bool reads_stopped_ TB_GUARDED_BY(mu_) = false;
    bool ctrl_stop_ TB_GUARDED_BY(mu_) = false;
    bool wake_armed_ TB_GUARDED_BY(mu_) = false;

    // epoll_event.data tags for the two non-connection fds.
    int event_tag_ = 0;
    int listener_tag_ = 0;
};

// ----------------------------------------------------------- ReactorPool

ReactorPool::ReactorPool(core::RequestPool& sink, unsigned reactors,
                         bool payloadArena)
    : sink_(sink), payload_arena_(payloadArena)
{
    const unsigned n = reactors == 0 ? kDefaultReactors : reactors;
    reactors_.reserve(n);
    for (unsigned i = 0; i < n; i++) {
        auto r = std::make_unique<Reactor>(*this, i, payload_arena_);
        if (!r->init()) {
            TB_LOG_ERROR("reactor %u: init failed: %s", i,
                         std::strerror(errno));
            break;
        }
        reactors_.push_back(std::move(r));
    }
}

ReactorPool::~ReactorPool()
{
    finish();
}

void
ReactorPool::start(int listenFd)
{
    if (reactors_.empty())
        return;
    reactors_[0]->adoptListener(listenFd);
    for (auto& r : reactors_)
        r->start();
}

void
ReactorPool::dispatch(int fd)
{
    const uint64_t serial = next_serial_.fetch_add(1);
    reactors_[serial % reactors_.size()]->postAdopt(fd, serial);
}

void
ReactorPool::postResponse(const core::Response& resp)
{
    if (reactors_.empty())
        return;
    reactors_[resp.ctx % reactors_.size()]->postResponse(resp);
}

void
ReactorPool::postResponseBatch(std::vector<core::Response>& resps)
{
    if (reactors_.empty()) {
        resps.clear();
        return;
    }
    // Contiguous same-connection runs coalesce into one encode + one
    // send(); worker batches come from per-connection read windows,
    // so in practice a batch is usually one run.
    const size_t total = resps.size();
    size_t run_start = 0;
    for (size_t i = 1; i <= total; i++) {
        if (i < total && resps[i].ctx == resps[run_start].ctx)
            continue;
        const uint64_t ctx = resps[run_start].ctx;
        reactors_[ctx % reactors_.size()]->postResponseRun(
            &resps[run_start], i - run_start);
        run_start = i;
    }
    resps.clear();
}

void
ReactorPool::beginShutdown()
{
    for (auto& r : reactors_)
        r->stopReads();
}

void
ReactorPool::finish()
{
    for (auto& r : reactors_)
        r->requestStop();
    for (auto& r : reactors_)
        r->join();
}

}  // namespace tb::net
