#ifndef TAILBENCH_UTIL_THREAD_ANNOTATIONS_H_
#define TAILBENCH_UTIL_THREAD_ANNOTATIONS_H_

/**
 * @file
 * Clang thread-safety-analysis attribute macros (tier 1 of the
 * static-analysis layer): lock invariants written in the type system,
 * so "field X is guarded by mutex M" and "f() must be called with M
 * held" are compile-time facts instead of comment lore.
 *
 * Under Clang with -Wthread-safety (the TAILBENCH_THREAD_SAFETY CMake
 * option turns it on as -Werror=thread-safety), an unguarded access
 * to a TB_GUARDED_BY field or a call missing its TB_REQUIRES lock is
 * a build error; tests/compile_fail/ seeds exactly those violations
 * and asserts they are rejected, proving the annotations fire. Under
 * GCC (which has no such analysis) every macro expands to nothing.
 *
 * Use through util/mutex.h (annotated Mutex/MutexLock/CondVar); raw
 * std::mutex is invisible to the analysis. Policy (see README
 * "Static analysis & concurrency invariants"): every new
 * mutex-guarded member must carry TB_GUARDED_BY, and every function
 * with a locking precondition TB_REQUIRES.
 */

#if defined(__clang__) && (!defined(SWIG))
#define TB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TB_THREAD_ANNOTATION(x)  // no-op: GCC has no -Wthread-safety
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define TB_CAPABILITY(x) TB_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its
 * dtor. */
#define TB_SCOPED_CAPABILITY TB_THREAD_ANNOTATION(scoped_lockable)

/** Field or variable readable/writable only with @p x held. */
#define TB_GUARDED_BY(x) TB_THREAD_ANNOTATION(guarded_by(x))

/** Pointer whose *pointee* is guarded by @p x (the pointer itself is
 * not). */
#define TB_PT_GUARDED_BY(x) TB_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function precondition: the listed capabilities are held by the
 * caller (and still held on return). */
#define TB_REQUIRES(...) \
    TB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define TB_ACQUIRE(...) \
    TB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define TB_RELEASE(...) \
    TB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p ... (first arg
 * is the success value). */
#define TB_TRY_ACQUIRE(...) \
    TB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must be entered with the listed capabilities NOT held
 * (it will acquire them itself) — documents and checks against
 * self-deadlock. */
#define TB_EXCLUDES(...) TB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares a lock-ordering edge: this capability is acquired before
 * @p x wherever both are held. */
#define TB_ACQUIRED_BEFORE(...) \
    TB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Declares the reverse ordering edge. */
#define TB_ACQUIRED_AFTER(...) \
    TB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returns a reference to the capability guarding its
 * result. */
#define TB_RETURN_CAPABILITY(x) TB_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch for code whose safety argument the analysis cannot
 * represent (e.g. "loop-thread-only by construction"). Always pair
 * with a comment stating the manual proof. */
#define TB_NO_THREAD_SAFETY_ANALYSIS \
    TB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // TAILBENCH_UTIL_THREAD_ANNOTATIONS_H_
