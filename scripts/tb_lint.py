#!/usr/bin/env python3
"""Tier 3 of the static-analysis layer: project-specific rules that
neither the compiler nor clang-tidy knows about.

Rules (each one guards a measurement-validity or liveness invariant
this repo has been burned by, or nearly so):

  env-seam      no raw std::getenv / ::getenv / getenv( outside the
                blessed seam (util/env.cc reads the environment;
                util/env.h documents it). Raw reads grow hand-rolled
                parsers that coerce malformed knobs to 0 and silently
                change the measured configuration.
  measurement   no rand()/srand() and no std::chrono::system_clock in
                measurement-path code (core/, sim/, queueing/, net/,
                apps/): seeded determinism is what makes runs
                comparable, and wall clocks make latency numbers lie
                across NTP steps. Tests and scripts are exempt; so is
                the one sanctioned monotonic seam (util/clock.*).
  ctest-timeout every add_test(NAME ...) must be covered by a
                set_tests_properties(... TIMEOUT ...) in the same
                file (directly or via a foreach variable) — a hung
                test must fail, not wedge CI.
  reactor-block no blocking syscalls (sleep/usleep/nanosleep/poll/
                select/std::this_thread::sleep_for) in net/reactor.cc
                — one blocked loop thread stalls every connection it
                owns. epoll_wait is the loop's one sanctioned wait.
  arrival-seam  no inline interarrival sampling (nextExponential) in
                measurement-path or bench code outside core/arrival.cc
                — hand-rolled schedules drift from the pluggable
                ArrivalProcess seam, and a driver that samples its own
                gaps silently ignores TAILBENCH_ARRIVAL. Tests and
                util/ (the RNG's own home) are exempt.

A line ending in `// tb-lint: allow(<rule>)` waives that rule for
that line; the waiver is grep-able, so exceptions stay auditable.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_DIRS = ("apps", "bench", "core", "net", "queueing", "sim",
               "util", "tests")
CXX_EXT = (".cc", ".h")

ENV_SEAM_ALLOWED = {"util/env.cc"}
MEASUREMENT_DIRS = ("core", "sim", "queueing", "net", "apps")
CLOCK_SEAM_ALLOWED = {"util/clock.h", "util/clock.cc"}
ARRIVAL_SEAM_DIRS = ("core", "sim", "queueing", "net", "apps", "bench")
ARRIVAL_SEAM_ALLOWED = {"core/arrival.cc"}

ALLOW_RE = re.compile(r"//\s*tb-lint:\s*allow\(([a-z-]+)\)\s*$")
LINE_COMMENT_RE = re.compile(r"//.*$")

GETENV_RE = re.compile(r"(?<![\w.])(?:std::|::)?getenv\s*\(")
RAND_RE = re.compile(r"(?<![\w.])(?:std::|::)?s?rand\s*\(")
SYSCLOCK_RE = re.compile(r"std::chrono::system_clock")
BLOCKING_RE = re.compile(
    r"(?<![\w.])(?:::)?(?:sleep|usleep|nanosleep|poll|select)\s*\("
    r"|std::this_thread::sleep_for")
NEXT_EXP_RE = re.compile(r"\bnextExponential\s*\(")

ADD_TEST_RE = re.compile(r"add_test\s*\(\s*NAME\s+([^\s)]+)", re.I)
PROPS_RE = re.compile(r"set_tests_properties\s*\(([^)]*)\)",
                      re.I | re.S)


def rel(path):
    return os.path.relpath(path, REPO).replace(os.sep, "/")


def iter_source_files():
    for d in SOURCE_DIRS:
        root_dir = os.path.join(REPO, d)
        for dirpath, _, names in os.walk(root_dir):
            for name in sorted(names):
                if name.endswith(CXX_EXT):
                    yield os.path.join(dirpath, name)


def strip_strings(line):
    """Blank out string literal contents so a rule regex cannot match
    inside a log message or a help string."""
    out = []
    in_str = False
    quote = ""
    i = 0
    while i < len(line):
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                in_str = False
                out.append(c)
            i += 1
            continue
        if c in ('"', "'"):
            in_str = True
            quote = c
        out.append(c)
        i += 1
    return "".join(out)


def waived(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group(1) == rule


def check_cxx(path, findings):
    r = rel(path)
    in_measurement = r.startswith(tuple(d + "/" for d in
                                        MEASUREMENT_DIRS))
    in_arrival_scope = r.startswith(tuple(d + "/" for d in
                                          ARRIVAL_SEAM_DIRS))
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = LINE_COMMENT_RE.sub("", strip_strings(raw))

            if (GETENV_RE.search(line) and r not in ENV_SEAM_ALLOWED
                    and not waived(raw, "env-seam")):
                findings.append(
                    (r, lineno, "env-seam",
                     "raw getenv outside util/env.cc — add a typed "
                     "knob to the env seam instead"))

            if in_measurement and r not in CLOCK_SEAM_ALLOWED:
                if (RAND_RE.search(line)
                        and not waived(raw, "measurement")):
                    findings.append(
                        (r, lineno, "measurement",
                         "rand()/srand() in measurement-path code — "
                         "use the seeded per-run RNG"))
                if (SYSCLOCK_RE.search(line)
                        and not waived(raw, "measurement")):
                    findings.append(
                        (r, lineno, "measurement",
                         "system_clock in measurement-path code — "
                         "timestamps come from util/clock.h "
                         "(monotonic)"))

            if (in_arrival_scope and r not in ARRIVAL_SEAM_ALLOWED
                    and NEXT_EXP_RE.search(line)
                    and not waived(raw, "arrival-seam")):
                findings.append(
                    (r, lineno, "arrival-seam",
                     "inline interarrival sampling outside "
                     "core/arrival.cc — schedule through the "
                     "pluggable ArrivalProcess seam"))

            if (r == "net/reactor.cc" and BLOCKING_RE.search(line)
                    and not waived(raw, "reactor-block")):
                findings.append(
                    (r, lineno, "reactor-block",
                     "blocking syscall in the reactor — one blocked "
                     "loop thread stalls every connection it owns"))


def check_ctest_timeouts(findings):
    for dirpath, _, names in os.walk(REPO):
        if os.path.basename(dirpath) in (".git", "build"):
            continue
        for name in names:
            if name != "CMakeLists.txt":
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            tests = ADD_TEST_RE.findall(text)
            if not tests:
                continue
            covered = set()
            for body in PROPS_RE.findall(text):
                if not re.search(r"\bTIMEOUT\b", body, re.I):
                    continue
                # Every token before PROPERTIES is a test name (a
                # multi-name call covers them all).
                names = re.split(r"\bPROPERTIES\b", body,
                                 flags=re.I)[0]
                covered.update(names.split())
            for t in tests:
                # A foreach-driven add_test(NAME ${x}) is covered by a
                # set_tests_properties(${x} ... TIMEOUT) using the
                # same variable; exact-string matching handles both.
                if t not in covered:
                    findings.append(
                        (rel(path), 1, "ctest-timeout",
                         f"test '{t}' has no TIMEOUT property — a "
                         "hang must fail, not wedge CI"))


def main():
    findings = []
    for path in iter_source_files():
        check_cxx(path, findings)
    check_ctest_timeouts(findings)
    if findings:
        for r, lineno, rule, msg in findings:
            print(f"{r}:{lineno}: [{rule}] {msg}")
        print(f"tb_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tb_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
