/** Unit tests: core/service.cc shutdown ordering under many workers —
 * closeResponses must fire exactly once, after every response of a
 * racy drain has been sent, for the single-queue and both sharded
 * ports. Also covers worker CPU pinning accounting. */

#include "core/service.h"

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_port.h"

#include "tests/test_util.h"

using tb::core::BlockingQueue;
using tb::core::PortOptions;
using tb::core::QueuePolicy;
using tb::core::Request;
using tb::core::RequestPool;
using tb::core::Response;
using tb::core::ServiceLoop;
using tb::core::ServiceOptions;

namespace {

/** Near-zero-cost app: the stress below is about queue/shutdown
 * races, not workload compute. */
class NopApp final : public tb::apps::App {
  public:
    const std::string& name() const override { return name_; }
    void init(const tb::apps::AppConfig&) override {}
    std::string genRequest(tb::util::Rng&) override { return "x"; }
    uint64_t process(std::string_view request) override
    {
        return request.size();
    }
    int64_t serviceNsFor(std::string_view) const override
    {
        return 1;
    }
    tb::apps::AppProfile profile() const override { return {}; }

  private:
    std::string name_ = "nop";
};

/** ServerPort over a RequestPool that counts closeResponses calls
 * and collects every response. */
class CountingPort final : public tb::core::ServerPort {
  public:
    explicit CountingPort(const PortOptions& opts) : pool_(opts) {}

    bool
    recvReq(Request& out) override
    {
        return pool_.pop(out);
    }

    size_t
    recvReqBatch(std::vector<Request>& out, size_t max) override
    {
        return pool_.popBatch(out, max);
    }

    void
    bindWorker(unsigned worker) override
    {
        pool_.bind(worker);
    }

    void
    sendResp(Response&& resp) override
    {
        responses_.push(std::move(resp));
    }

    void
    closeResponses() override
    {
        closes_.fetch_add(1);
        responses_.close();
    }

    RequestPool pool_;
    BlockingQueue<Response> responses_;
    std::atomic<unsigned> closes_{0};
};

/**
 * One racy drain: start @p workers workers, push requests concurrently
 * with their consumption (mixed affinity/round-robin placement), close
 * mid-flight, and verify every request was answered exactly once
 * before the single closeResponses.
 */
void
stressShutdown(QueuePolicy policy, unsigned workers, uint64_t requests)
{
    PortOptions opts;
    opts.policy = policy;
    opts.shards = workers;
    opts.batchMax = 8;
    CountingPort port(opts);
    NopApp app;
    ServiceLoop service(port, app, workers);

    // Collector first: responses stream while requests still flow.
    std::set<uint64_t> seen;
    std::thread collector([&] {
        Response resp;
        while (port.responses_.pop(resp)) {
            CHECK(seen.insert(resp.id).second);
        }
    });

    service.start();
    for (uint64_t i = 0; i < requests; i++) {
        Request r;
        r.id = i;
        // Mix placements: some connection-affine, some round-robin.
        r.ctx = i % 3 == 0 ? 0 : i;
        r.payload = "x";
        port.pool_.push(std::move(r));
        if (i == requests / 2)
            std::this_thread::yield();  // let the drain race the feed
    }
    port.pool_.close();
    service.join();
    collector.join();

    CHECK_EQ(port.closes_.load(), 1u);
    // A closeResponses racing ahead of a straggler's sendResp would
    // end the collector early and lose that response — full delivery
    // IS the ordering check.
    CHECK_EQ(seen.size(), static_cast<size_t>(requests));
}

}  // namespace

int
main()
{
    const QueuePolicy policies[] = {QueuePolicy::kSingleQueue,
                                    QueuePolicy::kSharded,
                                    QueuePolicy::kShardedSteal};
    // Several iterations per policy: the interesting interleavings
    // (last worker racing the drain, stealers racing close) are
    // probabilistic.
    for (QueuePolicy policy : policies) {
        for (int iter = 0; iter < 5; iter++)
            stressShutdown(policy, 8, 4000);
    }

    // Empty run: close with nothing queued still fires closeResponses
    // exactly once.
    for (QueuePolicy policy : policies)
        stressShutdown(policy, 8, 0);

    // Pinning accounting: on Linux every worker pin succeeds and is
    // reported; with the flag off the count stays 0.
    {
        PortOptions opts;
        opts.policy = QueuePolicy::kSharded;
        opts.shards = 4;
        CountingPort port(opts);
        NopApp app;
        ServiceOptions sopts;
        sopts.pinWorkers = true;
        ServiceLoop service(port, app, 4, sopts);
        service.start();
        port.pool_.close();
        service.join();
        CHECK_EQ(service.workers(), 4u);
#if defined(__linux__)
        CHECK_EQ(service.pinnedWorkers(), 4u);
#else
        CHECK_EQ(service.pinnedWorkers(), 0u);
#endif
        Response resp;
        while (port.responses_.pop(resp)) {
        }
    }
    {
        PortOptions opts;
        CountingPort port(opts);
        NopApp app;
        ServiceLoop service(port, app, 2);
        service.start();
        port.pool_.close();
        service.join();
        CHECK_EQ(service.pinnedWorkers(), 0u);
        Response resp;
        while (port.responses_.pop(resp)) {
        }
    }

    return TEST_MAIN_RESULT();
}
