/**
 * @file
 * Component microbenchmarks (google-benchmark): the harness's hot-path
 * primitives and each application's request-processing cost. These are
 * the costs that must stay small relative to request interarrival gaps
 * for the open-loop methodology to hold.
 */

#include <benchmark/benchmark.h>

#include "apps/common/app.h"
#include "apps/common/bptree.h"
#include "core/request_queue.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace tb;

void
BM_RngNext(benchmark::State& state)
{
    util::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngExponential(benchmark::State& state)
{
    util::Rng rng(2);
    for (auto _ : state)
        // Benchmarks the sampler itself, not a schedule.
        benchmark::DoNotOptimize(
            rng.nextExponential(1000.0));  // tb-lint: allow(arrival-seam)
}
BENCHMARK(BM_RngExponential);

void
BM_ZipfNext(benchmark::State& state)
{
    util::ZipfianGenerator zipf(static_cast<uint64_t>(state.range(0)),
                                0.99);
    util::Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng));
}
BENCHMARK(BM_ZipfNext)->Arg(1000)->Arg(100000)->Arg(10000000);

void
BM_HistogramRecord(benchmark::State& state)
{
    util::HdrHistogram h;
    util::Rng rng(4);
    for (auto _ : state)
        h.record(1000 + rng.nextInt(1'000'000'000));
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void
BM_HistogramPercentile(benchmark::State& state)
{
    util::HdrHistogram h;
    util::Rng rng(5);
    for (int i = 0; i < 100000; i++)
        h.record(1000 + rng.nextInt(1'000'000'000));
    for (auto _ : state)
        benchmark::DoNotOptimize(h.percentile(95.0));
}
BENCHMARK(BM_HistogramPercentile);

void
BM_RequestQueuePushPop(benchmark::State& state)
{
    core::RequestQueue q;
    for (auto _ : state) {
        core::Request r;
        r.id = 1;
        r.payload = "x";
        q.push(std::move(r));
        core::Request out;
        q.pop(out);
        benchmark::DoNotOptimize(out.id);
    }
}
BENCHMARK(BM_RequestQueuePushPop);

void
BM_BPlusTreeFind(benchmark::State& state)
{
    apps::BPlusTree<uint64_t> tree;
    util::Rng rng(6);
    const uint64_t n = static_cast<uint64_t>(state.range(0));
    for (uint64_t i = 0; i < n; i++)
        tree.insert(i * 0x9e3779b97f4a7c15ull, i);
    for (auto _ : state) {
        const uint64_t k = rng.nextInt(n) * 0x9e3779b97f4a7c15ull;
        benchmark::DoNotOptimize(tree.find(k));
    }
}
BENCHMARK(BM_BPlusTreeFind)->Arg(10000)->Arg(1000000);

void
BM_BPlusTreeInsert(benchmark::State& state)
{
    apps::BPlusTree<uint64_t> tree;
    util::Rng rng(7);
    for (auto _ : state)
        tree.insert(rng.next(), 1);
    benchmark::DoNotOptimize(tree.size());
}
BENCHMARK(BM_BPlusTreeInsert);

/** Per-application request processing cost (integrated-config hot path).
 * Apps use small datasets so fixture setup stays quick; relative
 * ordering across apps is what matters (Table I). */
class AppFixture : public benchmark::Fixture {
  public:
    void
    SetUp(const benchmark::State& state) override
    {
        static const char* names[] = {"xapian", "masstree", "moses",
                                      "sphinx", "img-dnn", "specjbb",
                                      "silo", "shore"};
        const int idx = static_cast<int>(state.range(0));
        app = apps::makeApp(names[idx]);
        apps::AppConfig cfg;
        cfg.seed = 42;
        cfg.sizeFactor = 0.1;
        app->init(cfg);
        app->setRealtimeIo(false);
        rng = std::make_unique<util::Rng>(9);
    }

    void
    TearDown(const benchmark::State&) override
    {
        app.reset();
    }

    std::unique_ptr<apps::App> app;
    std::unique_ptr<util::Rng> rng;
};

BENCHMARK_DEFINE_F(AppFixture, ProcessRequest)(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        const std::string req = app->genRequest(*rng);
        state.ResumeTiming();
        benchmark::DoNotOptimize(app->process(req));
    }
}
BENCHMARK_REGISTER_F(AppFixture, ProcessRequest)
    ->DenseRange(0, 7)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
