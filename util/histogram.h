#ifndef TAILBENCH_UTIL_HISTOGRAM_H_
#define TAILBENCH_UTIL_HISTOGRAM_H_

/**
 * @file
 * Fixed-footprint high-dynamic-range latency histogram.
 *
 * Geometric buckets at 100 per decade: bucket i covers
 * [10^(i/100), 10^((i+1)/100)) nanoseconds, so the worst-case
 * representation error of the bucket midpoint is
 * 10^(1/200) - 1 ~ 1.16% — within the ~1% the methodology requires of
 * the collector (paper Sec. IV-C), with O(1) record() and a footprint
 * small enough to keep one histogram per worker thread.
 *
 * Range: 1 ns .. 10^12 ns (1000 s); values outside are clamped. The
 * exact min and max are tracked separately so extreme percentiles
 * never report a value outside the observed range.
 */

#include <cstdint>
#include <vector>

namespace tb::util {

class HdrHistogram {
  public:
    static constexpr int kSubBucketsPerDecade = 100;
    static constexpr int kDecades = 12;
    static constexpr int kNumBuckets = kSubBucketsPerDecade * kDecades;

    HdrHistogram();

    /** Records one value (nanoseconds); 0 is clamped to 1. */
    void record(uint64_t valueNs);

    /** Merges another histogram into this one (per-worker collection). */
    void merge(const HdrHistogram& other);

    uint64_t count() const { return count_; }
    uint64_t minValue() const { return count_ ? min_ : 0; }
    uint64_t maxValue() const { return max_; }
    double mean() const;

    /**
     * Value at the given percentile in [0, 100]: the midpoint of the
     * bucket containing the target rank, clamped to [min, max].
     * Returns 0 when empty.
     */
    int64_t percentile(double pct) const;

    void clear();

  private:
    static int indexFor(uint64_t valueNs);

    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
    double sum_ = 0.0;
};

}  // namespace tb::util

#endif  // TAILBENCH_UTIL_HISTOGRAM_H_
