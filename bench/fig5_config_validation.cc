/**
 * @file
 * Reproduces Fig. 5: 95th-percentile latency vs. QPS for single-threaded
 * instances of each application, across the four setups — networked,
 * loopback, integrated (real time) and simulation (virtual time).
 *
 * Expected results (paper Sec. VI-B): the three real-system setups nearly
 * coincide for the six longer-request apps; for the short-request apps,
 * networked/loopback saturate earlier than integrated (paper: -23%
 * specjbb, -39% silo); simulation shows the same shape at a
 * constant-factor QPS offset. The driver prints the saturation deltas.
 *
 * Cells with a trailing "!" are points where the open-loop generator
 * (including the transport's per-request send cost) could not hold its
 * own schedule — the offered load was below the nominal rate, which for
 * the networked setup is exactly the saturation behavior Fig. 5 probes.
 */

#include <cstdio>
#include <map>

#include "bench/common.h"
#include "bench/sweep.h"
#include "core/integrated_harness.h"
#include "net/server_harness.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 5: p95 vs. QPS across harness configurations (1 thread)");

    core::IntegratedHarness integrated;
    net::LoopbackHarness loopback;
    net::NetworkedHarness networked;
    sim::SimHarness simulation;

    bench::SweepSpec spec;
    spec.key = "fig5";
    spec.apps = apps::appNames();
    spec.harnesses = {&networked, &loopback, &integrated, &simulation};
    spec.calibrateIndex = 2;  // shared saturation from integrated
    const bench::SweepOutput out = bench::runLatencySweep(spec, s);

    // Saturation throughput per configuration (heavy overload), and
    // the networked-vs-integrated delta the paper quotes.
    std::printf("\nsaturation deltas (achieved qps under 2.5x "
                "overload):\n");
    for (const auto& name : spec.apps) {
        const auto it_sat = out.satQps.find(name);
        if (it_sat == out.satQps.end() || it_sat->second <= 0.0)
            continue;
        const double sat = it_sat->second;
        auto app = bench::makeBenchApp(name, s);
        const uint64_t budget = bench::requestBudget(name, s);
        std::printf("  %s:", name.c_str());
        std::map<std::string, double> sat_qps;
        for (core::Harness* h : spec.harnesses) {
            const core::RunResult r = bench::measureAt(
                *h, *app, 2.5 * sat, 1,
                std::max<uint64_t>(200, budget / 2), s.seed + 99);
            sat_qps[h->configName()] = r.achievedQps;
            std::printf(" %s:%.0f", h->configName().c_str(),
                        r.achievedQps);
        }
        // Look configs up by their own configName() — a missing or
        // zero entry must skip the delta line, not divide by a
        // default-constructed 0.0.
        const auto it_int = sat_qps.find(integrated.configName());
        const auto it_net = sat_qps.find(networked.configName());
        if (it_int != sat_qps.end() && it_net != sat_qps.end() &&
            it_int->second > 0.0) {
            const double delta = 100.0 *
                (it_int->second - it_net->second) / it_int->second;
            std::printf("  networked-vs-integrated: %.0f%%\n", delta);
        } else {
            std::printf("  networked-vs-integrated: n/a\n");
        }
    }
    std::printf("(paper: 39%% silo, 23%% specjbb, small otherwise)\n");
    return 0;
}
