#include "util/logging.h"

#include <cstdio>
#include <cstring>

#include "util/clock.h"
#include "util/env.h"

namespace tb::util {

namespace {

LogLevel
parseThreshold()
{
    // envString never logs, so routing the log threshold through the
    // env seam cannot recurse into logAt.
    const char* env = envString("TAILBENCH_LOG");
    if (env == nullptr)
        return LogLevel::kWarn;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::kInfo;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::kError;
    return LogLevel::kWarn;
}

const char*
tagFor(LogLevel level)
{
    switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    }
    return "?";
}

}  // namespace

LogLevel
logThreshold()
{
    static const LogLevel threshold = parseThreshold();
    return threshold;
}

void
logAt(LogLevel level, const char* fmt, ...)
{
    if (static_cast<int>(level) < static_cast<int>(logThreshold()))
        return;
    const double t = static_cast<double>(monotonicNs()) / 1e9;
    std::fprintf(stderr, "[%12.6f] %-5s ", t, tagFor(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

}  // namespace tb::util
