#ifndef TAILBENCH_APPS_COMMON_APP_H_
#define TAILBENCH_APPS_COMMON_APP_H_

/**
 * @file
 * The TailBench application interface.
 *
 * Every workload — kv stores (silo, masstree), search (xapian,
 * sphinx), ML inference (img-dnn), translation (moses), OLTP (shore),
 * middleware (specjbb) — sits behind this interface so the harnesses
 * (core/, sim/, net/) can drive any of them interchangeably:
 *
 *   generator thread:  payload = app.genRequest(rng)
 *   worker thread:     checksum = app.process(payload)
 *
 * genRequest() is called only from the load generator; process() may
 * be called concurrently from many worker threads and must be
 * thread-safe over a read-mostly dataset built by init().
 *
 * Reproducibility contract: the service time a request induces is a
 * deterministic function of (payload, AppConfig::seed), exposed via
 * serviceNsFor(). The same seed therefore yields the same service-time
 * distribution run after run — the property the whole methodology's
 * repeated-runs comparisons rest on.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace tb::apps {

/** Per-app scale and seeding, set once via App::init(). */
struct AppConfig {
    uint64_t seed = 42;
    /** Dataset size factor; 1.0 = paper scale, default bench 0.25. */
    double sizeFactor = 0.25;
};

/**
 * Static characterization of a workload: the paper's Table I
 * microarchitectural profile (MPKI targets for the cache-hierarchy
 * simulator) plus the service-time taxonomy the synthetic kernel
 * implements. Values are per-app constants, not measurements.
 */
struct AppProfile {
    double l1iMpki = 0.0;
    double l1dMpki = 0.0;
    double l2Mpki = 0.0;
    double l3MpkiFull = 0.0;
    double branchMpki = 0.0;
    /** Mean service time at sizeFactor = 1.0, microseconds. */
    double meanServiceUs = 0.0;
    /** Lognormal shape of the service distribution (0 ~ constant). */
    double serviceSigma = 0.0;
    /** Probability / multiplier of the heavy-tail mixture component. */
    double tailProb = 0.0;
    double tailMult = 1.0;
};

/**
 * Nominal instruction retire rate (instructions per nanosecond) used
 * only as an upper bound when estimating an app's DRAM traffic for
 * bandwidth-contention modeling. It does NOT set
 * MachineStats::instructions — the simulator derives that from the
 * model service time and the profile's per-instruction cost, so the
 * implied IPC stays consistent with the timing model.
 */
inline constexpr double kRefInstructionsPerNs = 2.0;

/**
 * Deterministic virtual cost of one request — what the virtual-time
 * simulator charges instead of executing the wall-clock kernel.
 * serviceNs is the model service time on the reference machine (the
 * same draw process() paces against). instructions may carry an
 * app-level instruction count for apps that model one; 0 (the
 * default) tells the simulator to derive the count from serviceNs and
 * the AppProfile's per-instruction cost on the reference machine.
 */
struct RequestCost {
    int64_t serviceNs = 0;
    uint64_t instructions = 0;
};

class App {
  public:
    virtual ~App();

    virtual const std::string& name() const = 0;

    /** Builds the dataset; must be called before any other method. */
    virtual void init(const AppConfig& cfg) = 0;

    /**
     * Produces one request payload. Single-threaded (generator only);
     * all randomness comes from @p rng, so a seeded Rng reproduces the
     * exact request stream.
     */
    virtual std::string genRequest(util::Rng& rng) = 0;

    /**
     * Processes one request, doing real work against the dataset for
     * the request's deterministic service time. Thread-safe. Returns a
     * checksum so the work cannot be optimized away.
     *
     * Takes a string_view so the serving hot path can hand over an
     * arena-backed payload without materializing a std::string
     * (std::string arguments still convert implicitly). The view is
     * NOT guaranteed NUL-terminated — implementations must parse
     * bounded, never via c_str()-style APIs.
     */
    virtual uint64_t process(std::string_view request) = 0;

    /**
     * The deterministic model service time (ns) for @p request at the
     * current config — what process() targets. Used for
     * reproducibility checks and by the virtual-time simulator.
     */
    virtual int64_t serviceNsFor(std::string_view request) const = 0;

    /**
     * Virtual cost hook for the simulator: the model service time of
     * @p request plus an instruction count at kRefInstructionsPerNs.
     * Pure function of (payload, AppConfig::seed), like serviceNsFor;
     * apps with a real instruction model can override.
     */
    virtual RequestCost costFor(std::string_view request) const;

    virtual AppProfile profile() const = 0;

    /**
     * When false, process() performs a fixed amount of work derived
     * from the model service time instead of pacing against the real
     * clock. Microbenchmarks use this to measure pure compute cost;
     * harness runs leave it on.
     */
    void setRealtimeIo(bool on) { realtime_io_ = on; }
    bool realtimeIo() const { return realtime_io_; }

  protected:
    bool realtime_io_ = true;
};

/**
 * The eight TailBench workloads, in the paper's Table I order:
 * xapian, masstree, moses, sphinx, img-dnn, specjbb, silo, shore.
 */
const std::vector<std::string>& appNames();

/** Instantiates an app by name; throws std::invalid_argument on an
 * unknown name. init() must still be called. */
std::unique_ptr<App> makeApp(const std::string& name);

}  // namespace tb::apps

#endif  // TAILBENCH_APPS_COMMON_APP_H_
