#include "core/service.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/clock.h"

namespace tb::core {

namespace {

/**
 * Best-effort pin of the calling thread to the @p worker-th *allowed*
 * CPU (mod the allowed count). Enumerating the current affinity mask
 * instead of raw CPU ids keeps pinning working under cpuset-restricted
 * environments (taskset, container --cpuset-cpus), where
 * hardware_concurrency() counts CPUs the process may not use. True
 * when the affinity call took.
 */
bool
pinSelfToCpu(unsigned worker)
{
#if defined(__linux__)
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0)
        return false;
    const int ncpus = CPU_COUNT(&allowed);
    if (ncpus <= 0)
        return false;
    int want = static_cast<int>(worker % static_cast<unsigned>(ncpus));
    int cpu = -1;
    for (int c = 0; c < CPU_SETSIZE; c++) {
        if (!CPU_ISSET(c, &allowed))
            continue;
        if (want-- == 0) {
            cpu = c;
            break;
        }
    }
    if (cpu < 0)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
        0;
#else
    (void)worker;
    return false;
#endif
}

/**
 * Sanity bound passed to recvReqBatch: the port's own batchMax
 * (PortOptions) is the real knob and always governs — this only
 * protects the loop from a hypothetical port that returns unbounded
 * batches.
 */
constexpr size_t kBatchBound = 1024;

}  // namespace

ServiceLoop::ServiceLoop(ServerPort& port, apps::App& app,
                         unsigned workers, const ServiceOptions& opts)
    : port_(port), app_(app), workers_(workers == 0 ? 1 : workers),
      opts_(opts)
{
}

ServiceLoop::~ServiceLoop()
{
    join();
}

void
ServiceLoop::start()
{
    active_ = workers_;
    threads_.reserve(workers_);
    for (unsigned w = 0; w < workers_; w++)
        threads_.emplace_back([this, w] { workerBody(w); });
}

void
ServiceLoop::join()
{
    for (std::thread& t : threads_) {
        if (t.joinable())
            t.join();
    }
    threads_.clear();
}

void
ServiceLoop::workerBody(unsigned worker)
{
    if (opts_.pinWorkers && pinSelfToCpu(worker))
        pinned_.fetch_add(1);
    port_.bindWorker(worker);
    std::vector<Request> batch;
    std::vector<Response> resps;
    while (port_.recvReqBatch(batch, kBatchBound) > 0) {
        for (Request& req : batch) {
            const int64_t start = util::monotonicNs();
            const uint64_t checksum =
                app_.process(req.payload.view());
            const int64_t end = util::monotonicNs();
            Response resp;
            resp.id = req.id;
            resp.checksum = checksum;
            resp.timing.genNs = req.genNs;
            resp.timing.startNs = start;
            resp.timing.endNs = end;
            resp.ctx = req.ctx;
            if (opts_.batchResponses)
                resps.push_back(std::move(resp));
            else
                port_.sendResp(std::move(resp));
        }
        if (!resps.empty())
            port_.sendRespBatch(resps);  // clears resps
    }
    if (active_.fetch_sub(1) == 1)
        port_.closeResponses();
}

}  // namespace tb::core
