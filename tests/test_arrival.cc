/**
 * @file
 * The arrival-schedule seam (core/arrival.h) and the windowed/SLO
 * measurement layer it feeds (core/harness.h):
 *
 *  - Poisson bit-identity: the seam's Poisson process reproduces the
 *    pre-refactor generator loop draw-for-draw, including when the
 *    caller interleaves extra RNG consumption (payload generation) —
 *    the regression guarantee every existing figure rests on.
 *  - Golden-sequence determinism per process kind, and divergence
 *    across seeds.
 *  - Trace replay: mean-gap normalization is exact, gaps repeat
 *    cyclically, and a missing file degrades to Poisson.
 *  - Empirical mean-rate convergence: every process converges to the
 *    same configured mean rate (equal offered load by construction).
 *  - Windowed accounting + SLO attainment on synthetic timings.
 *  - Coordinated-omission self-check: fires on a fabricated
 *    closed-loop lag pattern and on a real LoadClient run over a
 *    deliberately stalled transport; stays quiet on healthy input.
 *  - Non-Poisson tails dominate at equal mean load in both
 *    virtual-time harness families (SimHarness, M/G/n model).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/arrival.h"
#include "core/client.h"
#include "core/methodology.h"
#include "core/request_queue.h"
#include "core/transport.h"
#include "queueing/mgn_sim.h"
#include "sim/sim_harness.h"
#include "tests/test_util.h"
#include "util/clock.h"
#include "util/rng.h"

using namespace tb;

namespace {

std::unique_ptr<apps::App>
makeTestApp()
{
    auto app = apps::makeApp("img-dnn");
    apps::AppConfig cfg;
    cfg.sizeFactor = 0.05;
    app->init(cfg);
    return app;
}

void
testPoissonBitIdentity()
{
    const uint64_t seed = 12345;
    const double qps = 2000.0;
    const double origin = 777.25;
    const uint64_t n = 5000;

    // The exact pre-refactor generator arithmetic, with an interleaved
    // extra draw standing in for app.genRequest(rng).
    std::vector<double> legacy;
    std::vector<uint64_t> legacy_extra;
    {
        util::Rng rng(seed);
        const double gap_mean_ns = 1e9 / qps;
        double next = origin;
        for (uint64_t i = 0; i < n; i++) {
            next += rng.nextExponential(gap_mean_ns);
            legacy.push_back(next);
            legacy_extra.push_back(rng.next());
        }
    }

    core::ArrivalSpec spec;  // poisson default
    const auto process = core::makeArrivalProcess(spec, qps);
    CHECK(std::string(process->name()) == "poisson");
    util::Rng rng(seed);
    process->reset(origin);
    for (uint64_t i = 0; i < n; i++) {
        const double t = process->nextArrivalNs(rng);
        CHECK(t == legacy[i]);  // bitwise, not approximately
        CHECK_EQ(rng.next(), legacy_extra[i]);
    }
}

void
testGoldenDeterminism()
{
    const double qps = 5000.0;
    for (const core::ArrivalKind kind :
         {core::ArrivalKind::kPoisson, core::ArrivalKind::kBursts,
          core::ArrivalKind::kDiurnal}) {
        core::ArrivalSpec spec;
        spec.kind = kind;
        const auto p1 = core::makeArrivalProcess(spec, qps);
        const auto p2 = core::makeArrivalProcess(spec, qps);
        util::Rng r1(99);
        util::Rng r2(99);
        const auto s1 = core::emitSchedule(*p1, r1, 2000, 0.0);
        const auto s2 = core::emitSchedule(*p2, r2, 2000, 0.0);
        CHECK(s1 == s2);
        // Monotone nondecreasing arrivals.
        CHECK(std::is_sorted(s1.begin(), s1.end()));
        // A different seed diverges (same process object is reusable
        // after reset).
        util::Rng r3(100);
        const auto s3 = core::emitSchedule(*p1, r3, 2000, 0.0);
        CHECK(s3 != s1);
        // reset() replants: rerunning with an equal RNG reproduces.
        util::Rng r4(99);
        const auto s4 = core::emitSchedule(*p1, r4, 2000, 0.0);
        CHECK(s4 == s1);
    }
}

void
testTraceReplay()
{
    const char* path = "test_arrival_trace.txt";
    {
        FILE* f = std::fopen(path, "w");
        CHECK(f != nullptr);
        std::fputs("# comment line\n100\n300\n\n50\n1550\n", f);
        std::fclose(f);
    }
    const double qps = 1000.0;  // mean gap must normalize to 1e6 ns
    core::ArrivalSpec spec;
    spec.kind = core::ArrivalKind::kTrace;
    spec.tracePath = path;
    const auto process = core::makeArrivalProcess(spec, qps);
    CHECK(std::string(process->name()) == "trace");

    util::Rng rng(1);
    (void)rng.next();
    util::Rng rng_check(1);
    (void)rng_check.next();
    const auto sched = core::emitSchedule(*process, rng, 8, 0.0);
    // Trace replay consumes no RNG.
    CHECK_EQ(rng.next(), rng_check.next());

    // File mean gap is (100+300+50+1550)/4 = 500; scale = 1e6/500.
    std::vector<double> gaps;
    double prev = 0.0;
    for (const double t : sched) {
        gaps.push_back(t - prev);
        prev = t;
    }
    CHECK_NEAR(gaps[0], 100 * 2000.0, 1e-9);
    CHECK_NEAR(gaps[1], 300 * 2000.0, 1e-9);
    CHECK_NEAR(gaps[2], 50 * 2000.0, 1e-9);
    CHECK_NEAR(gaps[3], 1550 * 2000.0, 1e-9);
    // Wraps cyclically.
    CHECK_NEAR(gaps[4], gaps[0], 1e-12);
    CHECK_NEAR(gaps[7], gaps[3], 1e-12);
    // Mean gap over one full cycle is exactly 1e9/qps.
    CHECK_NEAR((sched[3] - 0.0) / 4.0, 1e6, 1e-9);

    // Missing file falls back to poisson (never null).
    core::ArrivalSpec missing;
    missing.kind = core::ArrivalKind::kTrace;
    missing.tracePath = "does_not_exist_arrival.txt";
    const auto fallback = core::makeArrivalProcess(missing, qps);
    CHECK(std::string(fallback->name()) == "poisson");
    std::remove(path);
}

void
testMeanRateConvergence()
{
    // All processes are parameterized by the same mean rate; over a
    // long schedule the empirical rate must converge to it — that is
    // what makes cross-process comparisons "at equal mean load". The
    // bursts process needs the largest n: its rate estimator's std is
    // ~1/sqrt(cycles) with ~80 arrivals per on/off cycle, so 400k
    // arrivals = 5000 cycles puts 5% at ~4 sigma.
    const double qps = 10000.0;
    const uint64_t n = 400000;
    for (const core::ArrivalKind kind :
         {core::ArrivalKind::kPoisson, core::ArrivalKind::kBursts,
          core::ArrivalKind::kDiurnal}) {
        core::ArrivalSpec spec;
        spec.kind = kind;
        const auto process = core::makeArrivalProcess(spec, qps);
        util::Rng rng(4242);
        const auto sched = core::emitSchedule(*process, rng, n, 0.0);
        const double rate =
            static_cast<double>(n - 1) / (sched.back() - sched.front()) *
            1e9;
        CHECK_NEAR(rate, qps, 0.05);
    }
}

std::vector<core::RequestTiming>
syntheticTimings()
{
    // 1000 requests, 1 us apart; first half fast (1 us sojourn),
    // second half slow (9 us).
    std::vector<core::RequestTiming> timings;
    for (int i = 0; i < 1000; i++) {
        core::RequestTiming t;
        t.genNs = static_cast<int64_t>(i) * 1000;
        t.startNs = t.genNs;
        t.endNs = t.genNs + (i < 500 ? 1000 : 9000);
        timings.push_back(t);
    }
    return timings;
}

void
testWindowsAndSlo()
{
    core::ResultOptions opts;
    opts.windows = 2;
    opts.sloTargetNs = 5000;
    const core::RunResult r =
        core::buildRunResult(syntheticTimings(), opts);
    CHECK_EQ(r.windows.size(), 2u);
    CHECK_EQ(r.windows[0].count, 500u);
    CHECK_EQ(r.windows[1].count, 500u);
    CHECK_EQ(r.windows[0].sojournP99Ns, 1000);
    CHECK_EQ(r.windows[1].sojournP99Ns, 9000);
    CHECK_NEAR(r.sloAttainment, 0.5, 1e-12);
    CHECK_NEAR(r.windows[0].sloFrac, 1.0, 1e-12);
    CHECK_NEAR(r.windows[1].sloFrac, 0.0, 1e-12);
    CHECK_EQ(r.sloTargetNs, 5000);
    // No genLag series: CO check silent, no window flagged.
    CHECK(!r.coSuspect);
    CHECK(!r.windows[0].genLagged);

    // Default window count scales with samples: 1000/40 = 25 -> cap 12.
    const core::RunResult d =
        core::buildRunResult(syntheticTimings(), core::ResultOptions{});
    CHECK_EQ(d.windows.size(), 12u);
    // SLO accounting off by default.
    CHECK_NEAR(d.sloAttainment, -1.0, 1e-12);
    CHECK_NEAR(d.windows[0].sloFrac, -1.0, 1e-12);
}

void
testCoSelfCheck()
{
    // Fabricated closed-loop degradation: lag grows linearly to 500 us
    // — achieved sends stretch the scheduled span by ~1.5x.
    std::vector<core::GenLagSample> lag;
    for (int i = 0; i < 1000; i++)
        lag.push_back({static_cast<int64_t>(i) * 1000,
                       static_cast<int64_t>(i) * 500});
    core::ResultOptions opts;
    opts.windows = 2;
    opts.scheduledMeanGapNs = 1000.0;
    opts.genLag = &lag;
    const core::RunResult r =
        core::buildRunResult(syntheticTimings(), opts);
    CHECK(r.coSuspect);
    CHECK_NEAR(r.coSpanStretch, 1.5, 0.01);
    CHECK(r.coLateFrac > 0.9);
    // The lag lands in the window where it happened.
    CHECK(r.windows[1].maxGenLagNs > r.windows[0].maxGenLagNs);
    CHECK(r.windows[1].genLagged);

    // Healthy control: on-schedule sends must not trip the check.
    std::vector<core::GenLagSample> ok;
    for (int i = 0; i < 1000; i++)
        ok.push_back({static_cast<int64_t>(i) * 1000, 0});
    core::ResultOptions opts2;
    opts2.scheduledMeanGapNs = 1000.0;
    opts2.genLag = &ok;
    const core::RunResult h =
        core::buildRunResult(syntheticTimings(), opts2);
    CHECK(!h.coSuspect);
    CHECK_NEAR(h.coSpanStretch, 1.0, 1e-9);
    CHECK_NEAR(h.coLateFrac, 0.0, 1e-12);
}

/**
 * A transport whose sendRequest stalls the generator thread (~200 us
 * per request, 10x the configured interarrival gap): the classic
 * coordinated-omission setup where the sender cannot hold its own
 * schedule. Responses echo back immediately so the run completes.
 */
class StalledEchoTransport final : public core::Transport {
  public:
    void
    sendRequest(core::Request&& req) override
    {
        const int64_t until = util::monotonicNs() + 200000;
        while (util::monotonicNs() < until) {
        }
        core::Response resp;
        resp.id = req.id;
        resp.timing.genNs = req.genNs;
        resp.timing.startNs = util::monotonicNs();
        resp.timing.endNs = resp.timing.startNs;
        responses_.push(std::move(resp));
    }

    bool
    recvResponse(core::Response& out) override
    {
        return responses_.pop(out);
    }

    void finishSend() override { responses_.close(); }

  private:
    core::BlockingQueue<core::Response> responses_;
};

void
testStalledGeneratorFiresCoCheck()
{
    auto app = makeTestApp();
    core::HarnessConfig cfg;
    cfg.qps = 50000.0;  // 20 us gap vs the transport's 200 us stall
    cfg.warmupRequests = 20;
    cfg.measuredRequests = 300;
    cfg.seed = 7;
    cfg.windows = 4;
    StalledEchoTransport transport;
    core::LoadClient client;
    const core::RunResult r = client.run(*app, cfg, transport);
    CHECK_EQ(r.latency.sojourn.count, 300u);
    // The generator could not hold 50k qps: the self-check must fire
    // and the lag must be visible both globally and per window.
    CHECK(r.coSuspect);
    CHECK(r.coLateFrac > 0.2);
    CHECK(r.coSpanStretch > 1.05);
    CHECK(r.maxGenLagNs > 1e9 / cfg.qps);
    unsigned lagged = 0;
    for (const core::WindowStats& w : r.windows)
        if (w.genLagged)
            lagged++;
    CHECK(lagged > 0);
}

void
testBurstTailsDominateVirtualTime()
{
    // M/G/n model, deterministic: constant 50 us service, one server,
    // 70% mean load. The burst phase offers 4x the mean rate — 2.8x
    // capacity — so queues build and p99 must strictly dominate
    // Poisson's at the same mean rate; achieved QPS stays equal (the
    // equal-mean-load contract).
    const std::vector<int64_t> svc(64, 50000);
    queueing::MgnConfig qc;
    qc.lambda = 14000.0;
    qc.servers = 1;
    qc.warmup = 500;
    // Virtual time is free; a long run keeps the achieved-rate
    // estimator's burst-cycle noise (~80 arrivals/cycle) well inside
    // the equality tolerance below.
    qc.measured = 120000;
    qc.seed = 11;
    const queueing::MgnResult poisson = queueing::simulateMgn(svc, qc);
    qc.arrival.kind = core::ArrivalKind::kBursts;
    const queueing::MgnResult bursts = queueing::simulateMgn(svc, qc);
    CHECK(bursts.sojourn.p99Ns > poisson.sojourn.p99Ns);
    CHECK(bursts.queueing.p99Ns > poisson.queueing.p99Ns);
    CHECK_NEAR(bursts.achievedQps, poisson.achievedQps, 0.1);

    // Same dominance through the full virtual-time SimHarness at 70%
    // of its estimated saturation.
    auto app = makeTestApp();
    sim::SimHarness harness;
    const double est = core::estimateSaturationQps(harness, *app, 1,
                                                   21, 200);
    core::HarnessConfig cfg;
    cfg.qps = 0.7 * est;
    cfg.warmupRequests = 100;
    cfg.measuredRequests = 12000;
    cfg.seed = 21;
    const core::RunResult sim_poisson = harness.run(*app, cfg);
    cfg.arrival.kind = core::ArrivalKind::kBursts;
    const core::RunResult sim_bursts = harness.run(*app, cfg);
    CHECK(sim_bursts.latency.sojourn.p99Ns >
          sim_poisson.latency.sojourn.p99Ns);
    // 12000 arrivals is ~150 burst cycles: the achieved-rate spread
    // between processes carries ~8% cycle noise, so equality here is
    // coarser than the M/G/n check above.
    CHECK_NEAR(sim_bursts.achievedQps, sim_poisson.achievedQps, 0.2);
}

}  // namespace

int
main()
{
    testPoissonBitIdentity();
    testGoldenDeterminism();
    testTraceReplay();
    testMeanRateConvergence();
    testWindowsAndSlo();
    testCoSelfCheck();
    testStalledGeneratorFiresCoCheck();
    testBurstTailsDominateVirtualTime();
    return TEST_MAIN_RESULT();
}
