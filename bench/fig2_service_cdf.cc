/**
 * @file
 * Reproduces Fig. 2: cumulative distribution function of request service
 * times for each application, measured at low load (5% of saturation) so
 * queueing does not contaminate service times. Prints per-app quantile
 * series (service_ms cum_probability) plus the p95/p99 markers the figure
 * annotates.
 *
 * Expected shapes (paper Sec. V): masstree and img-dnn near-constant;
 * xapian and moses widely spread; specjbb and shore narrow body with a
 * long tail; sphinx slowest with a wide spread.
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "core/integrated_harness.h"
#include "util/stats.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader("Fig. 2: service-time CDF per application");

    for (const auto& name : apps::appNames()) {
        auto app = bench::makeBenchApp(name, s);
        core::IntegratedHarness h;
        const double sat = bench::calibrateSaturation(h, *app, 1, s);
        const uint64_t budget = 2 * bench::requestBudget(name, s);
        const core::RunResult r = bench::measureAt(
            h, *app, 0.05 * sat, 1, budget, s.seed, true);

        std::vector<int64_t> svc;
        svc.reserve(r.samples.size());
        for (const auto& t : r.samples)
            svc.push_back(t.serviceNs());
        std::sort(svc.begin(), svc.end());

        std::printf("\n%s (n=%zu, sat=%.0f qps)\n", name.c_str(),
                    svc.size(), sat);
        std::printf("  %-12s %s\n", "service_ms", "cum_prob");
        for (double q : {0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                         0.8, 0.9, 0.95, 0.99, 1.0}) {
            const size_t idx = std::min(
                svc.size() - 1,
                static_cast<size_t>(q * static_cast<double>(svc.size())));
            std::printf("  %-12s %.2f\n",
                        bench::fmtMs(
                            static_cast<double>(svc[idx])).c_str(),
                        q);
        }
        const double spread = static_cast<double>(
            util::percentileOf(svc, 99.0)) /
            std::max<int64_t>(1, util::percentileOf(svc, 5.0));
        std::printf("  p99/p5 spread: %.1fx %s\n", spread,
                    spread < 2.0 ? "(near-constant)" : "(wide)");
    }
    return 0;
}
