/**
 * @file
 * Reproduces Table I: per-application microarchitectural characteristics
 * (L1I/L1D/L2/L3/branch MPKI, from the timing simulator's accounting) and
 * 95th-percentile sojourn latency at 20%, 50%, and 70% of saturation
 * (integrated configuration, 1 worker thread, open-loop Poisson load).
 */

#include <cstdio>

#include "bench/common.h"
#include "core/integrated_harness.h"
#include "sim/sim_harness.h"
#include "sim/trace_gen.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Table I: TailBench application characteristics");
    std::printf(
        "%-10s %8s %8s %8s %8s %8s | %34s | %34s\n", "app", "L1I",
        "L1D", "L2", "L3", "BrMPKI", "p95 ms @20/50/70% (real time)",
        "p95 ms @20/50/70% (virtual time)");

    for (const auto& name : apps::appNames()) {
        auto app = bench::makeBenchApp(name, s);

        // MPKIs from the simulator's accounting (zsim substitute).
        sim::SimHarness sim_h;
        bench::measureAt(sim_h, *app, 50.0, 1,
                         s.fast ? 150 : 400, s.seed);
        const sim::MachineStats& ms = sim_h.lastStats();

        const double loads[3] = {0.2, 0.5, 0.7};

        // Latency at 20/50/70% load on the integrated configuration,
        // median across re-randomized runs (Sec. IV-C methodology).
        // On a shared 2-core host, scheduler preemptions (~10 ms) are
        // the same order as whole-request latencies for the short-
        // request apps, so the real-time columns carry that noise.
        core::IntegratedHarness real_h;
        const double sat = bench::calibrateSaturation(real_h, *app, 1, s);
        const uint64_t budget = bench::requestBudget(name, s);
        double p95[3] = {0, 0, 0};
        for (int i = 0; i < 3; i++) {
            const bench::RobustPoint pt = bench::measureAtRobust(
                real_h, *app, loads[i] * sat, 1, budget, s.seed + i,
                s.fast ? 1 : 3);
            p95[i] = pt.p95Ns;
        }

        // The same points in virtual time (SimHarness): clean of host
        // noise, the configuration the paper validates in Sec. VI.
        const double vsat = bench::calibrateSaturation(sim_h, *app, 1, s);
        double vp95[3] = {0, 0, 0};
        for (int i = 0; i < 3; i++) {
            const core::RunResult r = bench::measureAt(
                sim_h, *app, loads[i] * vsat, 1, budget, s.seed + i);
            vp95[i] = static_cast<double>(r.latency.sojourn.p95Ns);
        }

        std::printf(
            "%-10s %8.2f %8.2f %8.2f %8.2f %8.2f | %10s %10s %10s | "
            "%10s %10s %10s\n",
            name.c_str(), ms.mpki(ms.l1iMisses), ms.mpki(ms.l1dMisses),
            ms.mpki(ms.l2Misses), ms.mpki(ms.l3Misses),
            ms.mpki(ms.branchMisses), bench::fmtMs(p95[0]).c_str(),
            bench::fmtMs(p95[1]).c_str(), bench::fmtMs(p95[2]).c_str(),
            bench::fmtMs(vp95[0]).c_str(), bench::fmtMs(vp95[1]).c_str(),
            bench::fmtMs(vp95[2]).c_str());
    }

    std::printf(
        "\nPaper reference (Table I, p95): xapian 2.67/4.88/9.48 ms, "
        "masstree 428/688us/1.18ms, moses 3.06/5.41/11.42 ms,\n"
        "sphinx 2.08/2.78/3.82 s, img-dnn 2.51/3.94/6.91 ms, specjbb "
        "293/507/739 us, silo 191/374us/1.33ms, shore 1.99/2.80/4.20 ms.\n"
        "Absolute values differ (scaled datasets, different host); check "
        "ordering and growth with load.\n");

    // Second half: MPKIs measured *structurally* — a reuse-profile
    // trace streamed through real set-associative tag arrays (split
    // L1s, unified L2, inclusive DRRIP L3; see sim/cache.h) — rather
    // than read back from the timing model's accounting. Targets are
    // the paper's Table I values.
    bench::printHeader(
        "Table I (structural): MPKI measured through the cache "
        "hierarchy simulator, measured/target per level");
    std::printf("%-10s %15s %15s %15s %15s\n", "app", "L1I m/t",
                "L1D m/t", "L2 m/t", "L3 m/t");
    const uint64_t warm = s.fast ? 4'000 : 12'000;
    const uint64_t meas = s.fast ? 4'000 : 10'000;
    std::vector<std::string> measured_names;
    std::vector<apps::AppProfile> targets;
    std::vector<sim::MeasuredMpki> measured;
    for (const auto& name : apps::appNames()) {
        auto app = apps::makeApp(name);
        const apps::AppProfile p = app->profile();
        const sim::MeasuredMpki m =
            sim::measureTraceMpki(p, s.seed, warm, meas);
        std::printf(
            "%-10s %7.2f/%-7.2f %7.2f/%-7.2f %7.2f/%-7.2f "
            "%7.2f/%-7.2f%s\n",
            name.c_str(), m.l1i, p.l1iMpki, m.l1d, p.l1dMpki, m.l2,
            p.l2Mpki, m.l3, p.l3MpkiFull, m.converged ? "" : " !");
        measured_names.push_back(name);
        targets.push_back(p);
        measured.push_back(m);
    }
    std::printf(
        "(targets are the paper's zsim measurements; the trace "
        "generator is calibrated by fixed point, but conflict misses, "
        "replacement, and inclusion victims come from the real tag "
        "arrays; \"!\" marks apps outside the calibration tolerance)\n");

    // Machine-readable structural-accuracy report: per-app
    // measured-vs-target MPKI per level, so the trajectory of the
    // structural model is diffable across commits.
    bench::JsonWriter json;
    json.beginObject();
    json.str("figure", "table1_characteristics");
    json.str("git_rev", bench::gitRevision());
    json.beginObject("config");
    json.num("warmup_ki", static_cast<double>(warm));
    json.num("measured_ki", static_cast<double>(meas));
    json.num("size_factor", s.sizeFactor);
    json.num("seed", static_cast<double>(s.seed));
    json.boolean("fast", s.fast);
    json.endObject();
    json.beginArray("apps");
    for (size_t i = 0; i < measured.size(); i++) {
        const apps::AppProfile& p = targets[i];
        const sim::MeasuredMpki& m = measured[i];
        json.beginObject();
        json.str("app", measured_names[i]);
        json.num("l1i_measured", m.l1i);
        json.num("l1i_target", p.l1iMpki);
        json.num("l1d_measured", m.l1d);
        json.num("l1d_target", p.l1dMpki);
        json.num("l2_measured", m.l2);
        json.num("l2_target", p.l2Mpki);
        json.num("l3_measured", m.l3);
        json.num("l3_target", p.l3MpkiFull);
        json.num("instructions", static_cast<double>(m.instructions));
        json.num("calibration_iterations", m.iterations);
        json.boolean("converged", m.converged);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    if (bench::writeTextFile("BENCH_table1.json", json.text()))
        std::printf("\nwrote BENCH_table1.json\n");
    return 0;
}
