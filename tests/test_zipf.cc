/** Unit tests: util/zipf.h skew sanity and edge cases. */

#include "util/zipf.h"

#include <vector>

#include "tests/test_util.h"

using tb::util::Rng;
using tb::util::ZipfianGenerator;

int
main()
{
    // n = 1: always rank 0.
    {
        ZipfianGenerator z(1, 0.99);
        Rng rng(1);
        for (int i = 0; i < 100; i++)
            CHECK_EQ(z.next(rng), static_cast<uint64_t>(0));
    }

    // Skew sanity at theta = 0.99 over 1000 ranks: ranks stay in
    // range, rank 0 is by far the most popular (analytically ~1/zeta
    // ~ 13% of draws), and the head dominates the uniform share.
    {
        const uint64_t n = 1000;
        ZipfianGenerator z(n, 0.99);
        Rng rng(42);
        const int draws = 200000;
        std::vector<int> freq(n, 0);
        for (int i = 0; i < draws; i++) {
            const uint64_t rank = z.next(rng);
            CHECK(rank < n);
            freq[rank]++;
        }
        const double f0 = static_cast<double>(freq[0]) / draws;
        CHECK(f0 > 0.08);
        CHECK(f0 < 0.20);
        // Popularity decays with rank (coarse monotonicity).
        CHECK(freq[0] > freq[9]);
        CHECK(freq[9] > freq[99]);
        CHECK(freq[99] > freq[999]);
        // Top 10 ranks take far more than their uniform 1% share.
        int head = 0;
        for (int i = 0; i < 10; i++)
            head += freq[i];
        CHECK(static_cast<double>(head) / draws > 0.25);
    }

    // Large keyspace (uses the zeta tail approximation): in range,
    // still head-heavy.
    {
        const uint64_t n = 5000000;
        ZipfianGenerator z(n, 0.99);
        Rng rng(7);
        int head = 0;
        const int draws = 50000;
        for (int i = 0; i < draws; i++) {
            const uint64_t rank = z.next(rng);
            CHECK(rank < n);
            if (rank < 100)
                head++;
        }
        CHECK(static_cast<double>(head) / draws > 0.15);
    }

    // Regression: theta = 1.0 (classic Zipf) used to divide by zero in
    // both the zeta tail and the rank exponent, *inverting* the skew —
    // the sample mean rank came out ~800 of 1000 instead of the
    // analytic n/H_n ~ 134. Assert the skew points the right way and
    // is at least as sharp as theta = 0.99.
    {
        const uint64_t n = 1000;
        const int draws = 200000;
        const auto mean_rank = [&](double theta, uint64_t seed) {
            ZipfianGenerator z(n, theta);
            Rng rng(seed);
            double sum = 0.0;
            for (int i = 0; i < draws; i++) {
                const uint64_t rank = z.next(rng);
                CHECK(rank < n);
                sum += static_cast<double>(rank);
            }
            return sum / draws;
        };
        const double mean10 = mean_rank(1.0, 1234);
        const double mean099 = mean_rank(0.99, 1234);
        CHECK(mean10 < 250.0);       // far below n/2 = 500
        CHECK(mean10 < mean099);     // more skew than theta = 0.99
        // And rank 0 is the clear head (analytically 1/H_1000 ~ 13%).
        ZipfianGenerator z(n, 1.0);
        Rng rng(99);
        int zero = 0;
        for (int i = 0; i < draws; i++)
            if (z.next(rng) == 0)
                zero++;
        CHECK(static_cast<double>(zero) / draws > 0.08);
    }

    // theta = 0 is uniform-ish: rank 0 near its fair share.
    {
        const uint64_t n = 100;
        ZipfianGenerator z(n, 0.0);
        Rng rng(9);
        int zero = 0;
        const int draws = 100000;
        for (int i = 0; i < draws; i++)
            if (z.next(rng) == 0)
                zero++;
        // Fair share is 1%; allow 0.5%..2%.
        CHECK(zero > 500);
        CHECK(zero < 2000);
    }

    return TEST_MAIN_RESULT();
}
