#include "core/client.h"

#include <thread>

#include "core/arrival.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tb::core {

RunResult
LoadClient::run(apps::App& app, const HarnessConfig& cfg,
                Transport& transport)
{
    const uint64_t total = cfg.warmupRequests + cfg.measuredRequests;
    if (total == 0 || cfg.qps <= 0.0) {
        // Still end the stream so an attached service loop shuts down
        // instead of blocking in recvReq forever.
        transport.finishSend();
        Response drain;
        while (transport.recvResponse(drain)) {
        }
        return RunResult{};
    }

    std::vector<RequestTiming> timings;
    timings.reserve(cfg.measuredRequests);
    std::thread collector([&] {
        Response resp;
        while (transport.recvResponse(resp)) {
            if (resp.id >= cfg.warmupRequests)
                timings.push_back(resp.timing);
        }
    });

    // Open-loop generator (this thread): the arrival process lays out
    // an absolute schedule from the start time. genNs is the
    // *scheduled* arrival; sleepUntilNs returns immediately if the
    // generator has fallen behind, so the schedule never stretches to
    // accommodate a slow server.
    //
    // genRequest() and sendRequest() both run on this critical path,
    // so a slow generator — or an expensive transport send, e.g. a
    // per-request TCP connect — can fall behind its own schedule,
    // shrinking the offered load below nominal without any visible
    // failure. Track per-request lag (actual send completion vs.
    // scheduled arrival) so such runs are detectable instead of
    // silently optimistic — per window, and through the
    // coordinated-omission self-check in buildRunResult.
    int64_t max_lag_ns = 0;
    std::vector<GenLagSample> gen_lag;
    gen_lag.reserve(cfg.measuredRequests);
    {
        util::Rng rng(cfg.seed);
        const std::unique_ptr<ArrivalProcess> process =
            makeArrivalProcess(cfg.arrival, cfg.qps);
        process->reset(static_cast<double>(util::monotonicNs()) + 1000.0);
        for (uint64_t i = 0; i < total; i++) {
            const int64_t scheduled =
                static_cast<int64_t>(process->nextArrivalNs(rng));
            Request req;
            req.id = i;
            req.payload = app.genRequest(rng);
            req.genNs = scheduled;
            util::sleepUntilNs(scheduled);
            transport.sendRequest(std::move(req));
            const int64_t lag = util::monotonicNs() - scheduled;
            if (lag > max_lag_ns)
                max_lag_ns = lag;
            if (i >= cfg.warmupRequests)
                gen_lag.push_back({scheduled, lag > 0 ? lag : 0});
        }
    }
    transport.finishSend();
    collector.join();

    return finalize(std::move(timings), cfg, max_lag_ns,
                    std::move(gen_lag));
}

RunResult
LoadClient::finalize(std::vector<RequestTiming>&& timings,
                     const HarnessConfig& cfg, int64_t maxGenLagNs,
                     std::vector<GenLagSample>&& genLag)
{
    const double gap_mean_ns = cfg.qps > 0.0 ? 1e9 / cfg.qps : 0.0;
    ResultOptions opts;
    opts.keepSamples = cfg.keepSamples;
    opts.windows = cfg.windows;
    opts.sloTargetNs = cfg.sloTargetNs;
    opts.scheduledMeanGapNs = gap_mean_ns;
    opts.genLag = genLag.empty() ? nullptr : &genLag;
    RunResult result = buildRunResult(std::move(timings), opts);
    result.maxGenLagNs = maxGenLagNs;
    if (gap_mean_ns > 0.0 &&
        static_cast<double>(maxGenLagNs) > gap_mean_ns)
        TB_LOG_WARN("open-loop generator fell %.1f us behind its "
                    "schedule (mean interarrival gap %.1f us): offered "
                    "load was below the nominal %.0f qps",
                    static_cast<double>(maxGenLagNs) / 1e3,
                    gap_mean_ns / 1e3, cfg.qps);
    return result;
}

}  // namespace tb::core
