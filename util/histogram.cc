#include "util/histogram.h"

#include <cmath>
#include <limits>

namespace tb::util {

HdrHistogram::HdrHistogram()
    : buckets_(kNumBuckets, 0), min_(std::numeric_limits<uint64_t>::max())
{
}

int
HdrHistogram::indexFor(uint64_t valueNs)
{
    if (valueNs < 1)
        valueNs = 1;
    const int idx = static_cast<int>(
        std::log10(static_cast<double>(valueNs)) *
        kSubBucketsPerDecade);
    if (idx < 0)
        return 0;
    if (idx >= kNumBuckets)
        return kNumBuckets - 1;
    return idx;
}

void
HdrHistogram::record(uint64_t valueNs)
{
    if (valueNs < 1)
        valueNs = 1;
    buckets_[static_cast<size_t>(indexFor(valueNs))]++;
    count_++;
    sum_ += static_cast<double>(valueNs);
    if (valueNs < min_)
        min_ = valueNs;
    if (valueNs > max_)
        max_ = valueNs;
}

void
HdrHistogram::merge(const HdrHistogram& other)
{
    for (int i = 0; i < kNumBuckets; i++)
        buckets_[static_cast<size_t>(i)] +=
            other.buckets_[static_cast<size_t>(i)];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }
}

double
HdrHistogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t
HdrHistogram::percentile(double pct) const
{
    if (count_ == 0)
        return 0;
    if (pct < 0.0)
        pct = 0.0;
    if (pct > 100.0)
        pct = 100.0;
    // Rank of the target sample, 1-based; ceil so p100 lands on the
    // last sample and p0 on the first.
    uint64_t target = static_cast<uint64_t>(
        std::ceil(pct / 100.0 * static_cast<double>(count_)));
    if (target < 1)
        target = 1;
    uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; i++) {
        cum += buckets_[static_cast<size_t>(i)];
        if (cum >= target) {
            const double mid = std::pow(
                10.0, (static_cast<double>(i) + 0.5) /
                          kSubBucketsPerDecade);
            uint64_t v = static_cast<uint64_t>(std::llround(mid));
            if (v < min_)
                v = min_;
            if (v > max_)
                v = max_;
            return static_cast<int64_t>(v);
        }
    }
    return static_cast<int64_t>(max_);
}

void
HdrHistogram::clear()
{
    buckets_.assign(kNumBuckets, 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<uint64_t>::max();
    max_ = 0;
}

}  // namespace tb::util
