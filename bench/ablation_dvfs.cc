/**
 * @file
 * DVFS ablation: tail latency and energy proxy across core frequencies.
 *
 * The paper motivates fast DVFS controllers (Adrenaline, Rubik,
 * TimeTrader): at low load there is latency *slack* — the p95 sits far
 * below its target — that a governor can trade for power by slowing the
 * clock. This driver maps that trade-off on the simulated machine: for
 * each frequency, p95 sojourn at low/moderate load plus a simple
 * energy-per-request proxy (f^2 scaling times busy time, the standard
 * first-order CMOS model).
 *
 * Two behaviours worth checking in the output:
 *  - silo (core-bound) slows ~1/f, so downclocking is expensive;
 *  - moses (memory-bound) barely slows until the clock is very low —
 *    its stalls are DRAM-bound — so it offers the most headroom. This
 *    asymmetry is why per-app DVFS policies beat chip-wide ones.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();

    const std::vector<std::string> app_names = {"silo", "moses"};
    const std::vector<double> freqs = s.fast
        ? std::vector<double>{1.2, 2.4}
        : std::vector<double>{1.2, 1.6, 2.0, 2.4, 2.8};
    const double kNominalGhz = 2.4;

    for (const auto& name : app_names) {
        bench::printHeader("DVFS ablation: " + name +
                           " across core frequency");
        auto app = bench::makeBenchApp(name, s);
        sim::SimHarness probe;
        // Saturation measured at nominal frequency; loads below are
        // fractions of *nominal* capacity, as a governor would see them.
        const double sat =
            bench::calibrateSaturation(probe, *app, 1, s);
        const uint64_t n = bench::requestBudget(name, s);

        std::printf("%8s %12s %12s %12s %14s\n", "GHz",
                    "svc_mean_ms", "p95@20%_ms", "p95@60%_ms",
                    "energy/req");
        double nominal_energy = 0.0;
        std::vector<std::string> rows;
        for (double ghz : freqs) {
            sim::MachineConfig mc;
            mc.freqGhz = ghz;
            sim::SimHarness h(mc);
            const core::RunResult lo = bench::measureAt(
                h, *app, 0.2 * sat, 1, n, s.seed);
            const core::RunResult mid = bench::measureAt(
                h, *app, 0.6 * sat, 1, n, s.seed);
            const double svc_ns = lo.latency.service.meanNs;
            // Energy proxy: dynamic power ~ f * V^2 with V ~ f, so
            // energy/req ~ f^2 * busy seconds. Arbitrary units,
            // normalized to the nominal frequency's value.
            const double energy = ghz * ghz * svc_ns;
            if (ghz == kNominalGhz)
                nominal_energy = energy;
            char buf[160];
            std::snprintf(
                buf, sizeof(buf), "%8.1f %12s %12s %12s %13.2f",
                ghz, bench::fmtMs(svc_ns).c_str(),
                bench::fmtMs(
                    static_cast<double>(lo.latency.sojourn.p95Ns))
                    .c_str(),
                bench::fmtMs(
                    static_cast<double>(mid.latency.sojourn.p95Ns))
                    .c_str(),
                energy);
            rows.push_back(buf);
        }
        for (const auto& row : rows)
            std::printf("%s\n", row.c_str());
        if (nominal_energy > 0.0)
            std::printf("(energy in units of f^2 x busy-ns; nominal "
                        "2.4 GHz = %.2f)\n", nominal_energy);
    }
    std::printf("\n(check: silo's service time ~ 1/f; moses flattens at "
                "high f because DRAM stalls dominate — the slack DVFS "
                "governors exploit)\n");
    return 0;
}
