/** Unit tests: util/histogram.h percentile accuracy vs exact sort. */

#include "util/histogram.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

#include "tests/test_util.h"

using tb::util::HdrHistogram;
using tb::util::percentileOf;
using tb::util::Rng;

int
main()
{
    // Empty histogram.
    HdrHistogram empty;
    CHECK_EQ(empty.count(), static_cast<uint64_t>(0));
    CHECK_EQ(empty.percentile(95.0), static_cast<int64_t>(0));
    CHECK_EQ(empty.minValue(), static_cast<uint64_t>(0));

    // Single value: every percentile reports (close to) it, clamped
    // to the exact observed min/max.
    HdrHistogram one;
    one.record(123456);
    CHECK_EQ(one.count(), static_cast<uint64_t>(1));
    CHECK_EQ(one.percentile(0.0), static_cast<int64_t>(123456));
    CHECK_EQ(one.percentile(100.0), static_cast<int64_t>(123456));

    // Percentile accuracy vs exact sort on a lognormal latency-like
    // distribution spanning ~4 decades. The representation bound is
    // 10^(1/200)-1 ~ 1.16%; allow 2.5% to absorb the difference
    // between bucket-midpoint and interpolated-rank definitions.
    Rng rng(42);
    HdrHistogram h;
    std::vector<int64_t> exact;
    for (int i = 0; i < 50000; i++) {
        const double v = 50000.0 * std::exp(0.9 * rng.nextGaussian());
        const uint64_t ns = static_cast<uint64_t>(v) + 1;
        h.record(ns);
        exact.push_back(static_cast<int64_t>(ns));
    }
    CHECK_EQ(h.count(), static_cast<uint64_t>(50000));
    for (double pct : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
        const double ex =
            static_cast<double>(percentileOf(exact, pct));
        const double hd = static_cast<double>(h.percentile(pct));
        CHECK_NEAR(hd, ex, 0.025);
    }

    // Mean is exact (tracked as a running sum, not from buckets).
    CHECK_NEAR(h.mean(), tb::util::meanOf(exact), 1e-9);

    // min/max are exact; percentiles never step outside them.
    CHECK_EQ(static_cast<int64_t>(h.minValue()),
             percentileOf(exact, 0.0));
    CHECK_EQ(static_cast<int64_t>(h.maxValue()),
             percentileOf(exact, 100.0));
    CHECK(h.percentile(99.999) <=
          static_cast<int64_t>(h.maxValue()));

    // merge(): two shards equal one combined histogram.
    HdrHistogram s1;
    HdrHistogram s2;
    HdrHistogram whole;
    Rng rng2(7);
    for (int i = 0; i < 20000; i++) {
        const uint64_t v = 1000 + rng2.nextInt(1000000);
        (i % 2 == 0 ? s1 : s2).record(v);
        whole.record(v);
    }
    s1.merge(s2);
    CHECK_EQ(s1.count(), whole.count());
    CHECK_EQ(s1.percentile(95.0), whole.percentile(95.0));
    CHECK_EQ(s1.minValue(), whole.minValue());
    CHECK_EQ(s1.maxValue(), whole.maxValue());
    CHECK_NEAR(s1.mean(), whole.mean(), 1e-9);

    // clear() resets.
    s1.clear();
    CHECK_EQ(s1.count(), static_cast<uint64_t>(0));
    CHECK_EQ(s1.percentile(50.0), static_cast<int64_t>(0));

    // Zero clamps to 1 instead of crashing.
    s1.record(0);
    CHECK_EQ(s1.minValue(), static_cast<uint64_t>(1));

    return TEST_MAIN_RESULT();
}
