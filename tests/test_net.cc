/** Unit tests: net/wire.h framing (round-trips under partial reads /
 * short writes, oversized-payload rejection, EOF vs truncation) and
 * the socket harnesses end to end (TcpServer + transports,
 * LoopbackHarness vs IntegratedHarness, NetworkedHarness). */

#include "net/wire.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/integrated_harness.h"
#include "core/methodology.h"
#include "net/server_harness.h"
#include "util/clock.h"
#include "util/stats.h"

#include "tests/test_util.h"

using tb::core::HarnessConfig;
using tb::core::Request;
using tb::core::RequestTiming;
using tb::core::Response;
using tb::core::RunResult;
using tb::net::ByteStream;
using tb::net::WireResult;

namespace {

/**
 * In-memory stream that deliberately fragments I/O: reads return at
 * most @p maxRead bytes, writes accept at most @p maxWrite — the
 * short-read/short-write behavior of a real socket, without one.
 */
class MemStream final : public ByteStream {
  public:
    MemStream(size_t maxRead, size_t maxWrite)
        : max_read_(maxRead), max_write_(maxWrite)
    {
    }

    ssize_t
    readSome(void* buf, size_t len) override
    {
        if (pos_ >= data_.size())
            return 0;  // EOF
        const size_t n =
            std::min({len, max_read_, data_.size() - pos_});
        std::memcpy(buf, data_.data() + pos_, n);
        pos_ += n;
        return static_cast<ssize_t>(n);
    }

    ssize_t
    writeSome(const void* buf, size_t len) override
    {
        const size_t n = std::min(len, max_write_);
        const uint8_t* p = static_cast<const uint8_t*>(buf);
        data_.insert(data_.end(), p, p + n);
        return static_cast<ssize_t>(n);
    }

    std::vector<uint8_t> data_;
    size_t pos_ = 0;

  private:
    size_t max_read_;
    size_t max_write_;
};

std::unique_ptr<tb::apps::App>
makeTestApp()
{
    auto app = tb::apps::makeApp("img-dnn");
    tb::apps::AppConfig cfg;
    cfg.seed = 42;
    cfg.sizeFactor = 0.05;  // mean service ~25 us
    app->init(cfg);
    return app;
}

void
checkTimingInvariants(const RunResult& r)
{
    for (const RequestTiming& t : r.samples) {
        CHECK(t.startNs >= t.genNs);
        CHECK(t.serviceNs() > 0);
        CHECK(t.queueNs() >= 0);
        CHECK(t.sojournNs() >= t.serviceNs());
        CHECK(t.sojournNs() >= t.queueNs());
    }
}

}  // namespace

int
main()
{
    // Request round-trip through a maximally fragmenting stream: the
    // sender sees short writes, the receiver short reads.
    {
        MemStream s(/*maxRead=*/3, /*maxWrite=*/2);
        Request in;
        in.id = 0x1122334455667788ull;
        in.payload = "the quick brown fox";
        in.genNs = -12345;  // sign must survive
        CHECK(tb::net::sendRequestFrame(s, in));
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) == WireResult::kOk);
        CHECK_EQ(out.id, in.id);
        CHECK(out.payload == in.payload);
        CHECK_EQ(out.genNs, in.genNs);
        // The stream is now drained: a further recv is a clean EOF.
        CHECK(tb::net::recvRequestFrame(s, out) == WireResult::kEof);
    }

    // Empty payload round-trips too.
    {
        MemStream s(1, 1);
        Request in;
        in.id = 7;
        CHECK(tb::net::sendRequestFrame(s, in));
        Request out;
        out.payload = "stale";
        CHECK(tb::net::recvRequestFrame(s, out) == WireResult::kOk);
        CHECK(out.payload.empty());
    }

    // Response round-trip.
    {
        MemStream s(3, 2);
        Response in;
        in.id = 99;
        in.checksum = 0xdeadbeefcafef00dull;
        in.timing.genNs = 1000;
        in.timing.startNs = 2000;
        in.timing.endNs = 3500;
        CHECK(tb::net::sendResponseFrame(s, in));
        Response out;
        CHECK(tb::net::recvResponseFrame(s, out) == WireResult::kOk);
        CHECK_EQ(out.id, in.id);
        CHECK_EQ(out.checksum, in.checksum);
        CHECK_EQ(out.timing.genNs, in.timing.genNs);
        CHECK_EQ(out.timing.startNs, in.timing.startNs);
        CHECK_EQ(out.timing.endNs, in.timing.endNs);
    }

    // Back-to-back frames on one stream stay framed.
    {
        MemStream s(5, 3);
        for (uint64_t i = 0; i < 10; i++) {
            Request in;
            in.id = i;
            in.payload = std::string(i, 'x');
            CHECK(tb::net::sendRequestFrame(s, in));
        }
        for (uint64_t i = 0; i < 10; i++) {
            Request out;
            CHECK(tb::net::recvRequestFrame(s, out) ==
                  WireResult::kOk);
            CHECK_EQ(out.id, i);
            CHECK_EQ(out.payload.size(), static_cast<size_t>(i));
        }
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) == WireResult::kEof);
    }

    // Oversized payload: the sender refuses, and a hand-crafted header
    // claiming an oversized payload is rejected before any allocation.
    {
        MemStream s(64, 64);
        Request big;
        big.payload.assign(tb::net::kMaxPayloadBytes + 1, 'x');
        CHECK(!tb::net::sendRequestFrame(s, big));

        const uint32_t magic = tb::net::kRequestMagic;
        const uint32_t huge = tb::net::kMaxPayloadBytes + 1;
        uint8_t hdr[24] = {0};
        std::memcpy(hdr, &magic, 4);
        std::memcpy(hdr + 4, &huge, 4);
        s.data_.assign(hdr, hdr + sizeof(hdr));
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) ==
              WireResult::kBadFrame);
    }

    // Bad magic and mid-frame truncation are kBadFrame, not kEof.
    {
        MemStream s(64, 64);
        Request in;
        in.id = 3;
        in.payload = "payload";
        CHECK(tb::net::sendRequestFrame(s, in));
        s.data_[0] ^= 0xff;  // corrupt magic
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) ==
              WireResult::kBadFrame);
    }
    {
        MemStream s(64, 64);
        Request in;
        in.id = 4;
        in.payload = "payload";
        CHECK(tb::net::sendRequestFrame(s, in));
        s.data_.resize(s.data_.size() - 3);  // cut payload short
        Request out;
        CHECK(tb::net::recvRequestFrame(s, out) ==
              WireResult::kBadFrame);
        // Truncation inside the *header* is also kBadFrame.
        MemStream s2(64, 64);
        s2.data_.assign(s.data_.begin(), s.data_.begin() + 5);
        CHECK(tb::net::recvRequestFrame(s2, out) ==
              WireResult::kBadFrame);
    }

    // Incremental (buffer-window) decode under adversarial chunking:
    // the reactor's read path sees frames cut anywhere, including
    // mid-header. Feeding the window one byte at a time must return
    // kNeedMore at every prefix and decode exactly at the boundary.
    {
        MemStream s(64, 64);
        Request in;
        in.id = 0xabcdef0123456789ull;
        in.payload = "incremental decode";
        in.genNs = -777;
        CHECK(tb::net::sendRequestFrame(s, in));
        const std::vector<uint8_t>& bytes = s.data_;
        Request out;
        size_t consumed = 0;
        for (size_t len = 0; len < bytes.size(); len++)
            CHECK(tb::net::tryDecodeRequestFrame(bytes.data(), len,
                                                 out, consumed) ==
                  tb::net::DecodeResult::kNeedMore);
        CHECK(tb::net::tryDecodeRequestFrame(bytes.data(),
                                             bytes.size(), out,
                                             consumed) ==
              tb::net::DecodeResult::kFrame);
        CHECK_EQ(consumed, bytes.size());
        CHECK_EQ(out.id, in.id);
        CHECK(out.payload == in.payload);
        CHECK_EQ(out.genNs, in.genNs);
    }

    // Randomized-split streams: many frames concatenated, consumed
    // from windows whose growth is random — every frame must come out
    // intact and in order regardless of where the cuts fall.
    {
        MemStream s(1 << 20, 1 << 20);
        constexpr uint64_t kFrames = 50;
        tb::util::Rng rng(99);
        for (uint64_t i = 0; i < kFrames; i++) {
            Request in;
            in.id = i;
            in.payload = std::string(
                static_cast<size_t>(rng.next() % 700), 'a' + i % 26);
            in.genNs = static_cast<int64_t>(i) * 3 - 10;
            CHECK(tb::net::sendRequestFrame(s, in));
        }
        const std::vector<uint8_t>& bytes = s.data_;
        size_t avail = 0;  // how much of the stream has "arrived"
        size_t head = 0;   // consumed prefix
        uint64_t next_id = 0;
        while (next_id < kFrames) {
            if (avail < bytes.size())
                avail += std::min(bytes.size() - avail,
                                  1 + static_cast<size_t>(
                                          rng.next() % 97));
            for (;;) {
                Request out;
                size_t consumed = 0;
                const tb::net::DecodeResult dr =
                    tb::net::tryDecodeRequestFrame(
                        bytes.data() + head, avail - head, out,
                        consumed);
                if (dr != tb::net::DecodeResult::kFrame)
                    break;
                CHECK_EQ(out.id, next_id);
                CHECK_EQ(out.genNs,
                         static_cast<int64_t>(next_id) * 3 - 10);
                head += consumed;
                next_id++;
            }
        }
        CHECK_EQ(head, bytes.size());
    }

    // The incremental decoder rejects hostile prefixes as early as the
    // bytes allow: bad magic at 4 bytes, oversized claim at 8 — before
    // any payload is buffered. Responses decode incrementally too.
    {
        uint8_t bad[8] = {0};
        Request out;
        size_t consumed = 0;
        CHECK(tb::net::tryDecodeRequestFrame(bad, 4, out, consumed) ==
              tb::net::DecodeResult::kBadFrame);
        const uint32_t magic = tb::net::kRequestMagic;
        const uint32_t huge = tb::net::kMaxPayloadBytes + 1;
        std::memcpy(bad, &magic, 4);
        std::memcpy(bad + 4, &huge, 4);
        CHECK(tb::net::tryDecodeRequestFrame(bad, 8, out, consumed) ==
              tb::net::DecodeResult::kBadFrame);

        MemStream s(64, 64);
        Response rin;
        rin.id = 55;
        rin.checksum = 0x1234;
        rin.timing.genNs = 10;
        rin.timing.startNs = 20;
        rin.timing.endNs = 30;
        CHECK(tb::net::sendResponseFrame(s, rin));
        CHECK_EQ(s.data_.size(), tb::net::kResponseFrameBytes);
        Response rout;
        for (size_t len = 0; len < s.data_.size(); len++)
            CHECK(tb::net::tryDecodeResponseFrame(s.data_.data(), len,
                                                  rout, consumed) ==
                  tb::net::DecodeResult::kNeedMore);
        CHECK(tb::net::tryDecodeResponseFrame(s.data_.data(),
                                              s.data_.size(), rout,
                                              consumed) ==
              tb::net::DecodeResult::kFrame);
        CHECK_EQ(consumed, s.data_.size());
        CHECK_EQ(rout.id, rin.id);
        CHECK_EQ(rout.checksum, rin.checksum);
        CHECK_EQ(rout.timing.endNs, rin.timing.endNs);
    }

    // One request through the real TCP stack: TcpServer running the
    // shared service loop, a persistent-connection client transport,
    // server-side start/end stamps and a client-side endNs restamp.
    {
        auto app = makeTestApp();
        tb::net::TcpServer server(*app, 1);
        CHECK(server.listening());
        CHECK(server.port() != 0);
        server.start();
        tb::net::TcpClientTransport transport("127.0.0.1",
                                              server.port());
        CHECK(transport.connected());

        tb::util::Rng rng(7);
        Request req;
        req.id = 42;
        req.payload = app->genRequest(rng);
        req.genNs = tb::util::monotonicNs();
        const int64_t gen_ns = req.genNs;
        transport.sendRequest(std::move(req));
        Response resp;
        CHECK(transport.recvResponse(resp));
        CHECK_EQ(resp.id, static_cast<uint64_t>(42));
        CHECK_EQ(resp.timing.genNs, gen_ns);
        CHECK(resp.timing.startNs >= gen_ns);
        CHECK(resp.timing.endNs > resp.timing.startNs);
        transport.finishSend();
        CHECK(!transport.recvResponse(resp));  // clean end of stream
        server.stop();
    }

    // Two concurrent clients of one server with *overlapping* request
    // ids: each response must come back on the connection its request
    // arrived on (routing is per-connection, not per-id).
    {
        auto app = makeTestApp();
        tb::net::TcpServer server(*app, 2);
        CHECK(server.listening());
        server.start();
        tb::net::TcpClientTransport a("127.0.0.1", server.port());
        tb::net::TcpClientTransport b("127.0.0.1", server.port());
        CHECK(a.connected());
        CHECK(b.connected());

        tb::util::Rng rng(11);
        for (uint64_t i = 0; i < 20; i++) {
            Request ra;
            ra.id = i;  // both clients use ids 0..19
            ra.payload = app->genRequest(rng);
            ra.genNs = 1000000 + static_cast<int64_t>(i);  // client A tag
            a.sendRequest(std::move(ra));
            Request rb;
            rb.id = i;
            rb.payload = app->genRequest(rng);
            rb.genNs = 2000000 + static_cast<int64_t>(i);  // client B tag
            b.sendRequest(std::move(rb));
        }
        a.finishSend();
        b.finishSend();
        unsigned got_a = 0;
        Response resp;
        while (a.recvResponse(resp)) {
            CHECK(resp.timing.genNs >= 1000000 &&
                  resp.timing.genNs < 2000000);
            got_a++;
        }
        unsigned got_b = 0;
        while (b.recvResponse(resp)) {
            CHECK(resp.timing.genNs >= 2000000);
            got_b++;
        }
        CHECK_EQ(got_a, 20u);
        CHECK_EQ(got_b, 20u);
        server.stop();
    }

    // LoopbackHarness end to end vs the integrated harness at the
    // same low load: same request count, the same timestamp
    // invariants, and achieved throughput within tolerance of
    // integrated (both track the offered rate when unsaturated).
    {
        auto app = makeTestApp();
        tb::core::IntegratedHarness integrated;
        tb::net::LoopbackHarness loopback;
        CHECK(loopback.configName() == std::string("loopback"));

        const double sat = tb::core::estimateSaturationQps(
            integrated, *app, 1, 42, 200);
        HarnessConfig cfg;
        cfg.qps = 0.10 * sat;
        cfg.workerThreads = 1;
        cfg.warmupRequests = 50;
        cfg.measuredRequests = 400;
        cfg.seed = 42;
        cfg.keepSamples = true;

        // Any single pair of timed runs on a shared host can be
        // ruined by a scheduler preemption; compare medians over
        // repeated runs (the same answer to measurement noise the
        // bench layer's measureAtRobust uses). The per-run structural
        // invariants stay exact and are checked on every run.
        std::vector<double> qps_i;
        std::vector<double> qps_l;
        std::vector<double> p50_i;
        std::vector<double> p50_l;
        for (unsigned rep = 0; rep < 3; rep++) {
            cfg.seed = 42 + rep;
            const RunResult ri = integrated.run(*app, cfg);
            const RunResult rl = loopback.run(*app, cfg);
            CHECK_EQ(rl.latency.sojourn.count,
                     static_cast<uint64_t>(400));
            CHECK_EQ(rl.samples.size(), static_cast<size_t>(400));
            checkTimingInvariants(rl);
            qps_i.push_back(ri.achievedQps);
            qps_l.push_back(rl.achievedQps);
            p50_i.push_back(
                static_cast<double>(ri.latency.sojourn.p50Ns));
            p50_l.push_back(
                static_cast<double>(rl.latency.sojourn.p50Ns));
        }
        const double mqi = tb::util::percentileOf(qps_i, 50.0);
        const double mql = tb::util::percentileOf(qps_l, 50.0);
        CHECK_NEAR(mql, mqi, 0.25);
        // Sockets cost something: loopback sojourn is not *faster*
        // than integrated by more than noise.
        CHECK(tb::util::percentileOf(p50_l, 50.0) >
              0.5 * tb::util::percentileOf(p50_i, 50.0));
    }

    // Multi-connection client against a sharded server: one
    // connection per worker, requests striped round-robin by the
    // client and placed connection-affine by the server's sharded
    // port; every response comes back on the right socket and the
    // stream ends cleanly on all of them.
    {
        auto app = makeTestApp();
        tb::core::PortOptions popts;
        popts.policy = tb::core::QueuePolicy::kShardedSteal;
        tb::net::TcpServer server(*app, 4, 0, true, popts);
        CHECK(server.listening());
        server.start();
        tb::net::MultiConnTcpTransport transport(
            "127.0.0.1", server.port(), /*connections=*/4);
        CHECK(transport.connected());

        tb::util::Rng rng(13);
        constexpr uint64_t kN = 80;
        for (uint64_t i = 0; i < kN; i++) {
            Request req;
            req.id = i;
            req.payload = app->genRequest(rng);
            req.genNs = tb::util::monotonicNs();
            transport.sendRequest(std::move(req));
        }
        transport.finishSend();
        std::set<uint64_t> seen;
        Response resp;
        while (transport.recvResponse(resp)) {
            CHECK(seen.insert(resp.id).second);
            CHECK(resp.timing.endNs > resp.timing.startNs);
        }
        CHECK_EQ(seen.size(), static_cast<size_t>(kN));
        server.stop();
    }

    // LoopbackHarness in multi-connection + sharded mode: same
    // count/invariant guarantees as the classic loopback, with the
    // effective concurrency recorded in the result.
    {
        auto app = makeTestApp();
        tb::net::LoopbackOptions lopts;
        lopts.connections = 0;  // one per server worker
        lopts.port.policy = tb::core::QueuePolicy::kSharded;
        tb::net::LoopbackHarness loopback(lopts);
        HarnessConfig cfg;
        cfg.qps = 2000.0;
        cfg.workerThreads = 4;
        cfg.warmupRequests = 40;
        cfg.measuredRequests = 300;
        cfg.seed = 45;
        cfg.keepSamples = true;
        const RunResult r = loopback.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(300));
        checkTimingInvariants(r);
        CHECK_EQ(r.serviceWorkers, 4u);
    }

    // NetworkedHarness end to end: per-request connections against an
    // in-process server on an ephemeral port.
    {
        auto app = makeTestApp();
        tb::net::NetworkedHarness networked;
        CHECK(networked.configName() == std::string("networked"));
        HarnessConfig cfg;
        cfg.qps = 1500.0;
        cfg.workerThreads = 1;
        cfg.warmupRequests = 20;
        cfg.measuredRequests = 150;
        cfg.seed = 43;
        cfg.keepSamples = true;
        const RunResult r = networked.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(150));
        checkTimingInvariants(r);
        // Multi-worker service loop over sockets also completes.
        cfg.workerThreads = 2;
        cfg.seed = 44;
        cfg.keepSamples = false;
        const RunResult r2 = networked.run(*app, cfg);
        CHECK_EQ(r2.latency.sojourn.count,
                 static_cast<uint64_t>(150));
    }

    // Reactor backend end to end: the same routing test as above
    // (two clients, overlapping request ids) against an epoll server.
    // The service loop, wire format and transports are identical —
    // only the connection IO changed — so every response must come
    // back on its own connection and both streams end at the server's
    // FIN.
    {
        auto app = makeTestApp();
        tb::net::IoOptions io;
        io.mode = tb::net::IoMode::kReactor;
        tb::net::TcpServer server(*app, 2, 0, true, {}, {}, io);
        CHECK(server.listening());
        CHECK(server.ioMode() == tb::net::IoMode::kReactor);
        CHECK(server.reactorCount() >= 1u);
        server.start();
        tb::net::TcpClientTransport a("127.0.0.1", server.port());
        tb::net::TcpClientTransport b("127.0.0.1", server.port());
        CHECK(a.connected());
        CHECK(b.connected());

        tb::util::Rng rng(17);
        for (uint64_t i = 0; i < 20; i++) {
            Request ra;
            ra.id = i;
            ra.payload = app->genRequest(rng);
            ra.genNs = 1000000 + static_cast<int64_t>(i);
            a.sendRequest(std::move(ra));
            Request rb;
            rb.id = i;
            rb.payload = app->genRequest(rng);
            rb.genNs = 2000000 + static_cast<int64_t>(i);
            b.sendRequest(std::move(rb));
        }
        a.finishSend();
        b.finishSend();
        unsigned got_a = 0;
        Response resp;
        while (a.recvResponse(resp)) {
            CHECK(resp.timing.genNs >= 1000000 &&
                  resp.timing.genNs < 2000000);
            got_a++;
        }
        unsigned got_b = 0;
        while (b.recvResponse(resp)) {
            CHECK(resp.timing.genNs >= 2000000);
            got_b++;
        }
        CHECK_EQ(got_a, 20u);
        CHECK_EQ(got_b, 20u);
        server.stop();
    }

    // Reactor backend under an open-loop harness run, selected the
    // way operators select it — TAILBENCH_IO_MODE — so the env knob
    // path is covered too: full request count, same timestamp
    // invariants as the threads backend.
    {
        CHECK(::setenv("TAILBENCH_IO_MODE", "reactor", 1) == 0);
        auto app = makeTestApp();
        tb::net::LoopbackOptions lopts;
        lopts.connections = 0;  // one per server worker
        lopts.port.policy = tb::core::QueuePolicy::kSharded;
        tb::net::LoopbackHarness loopback(lopts);
        HarnessConfig cfg;
        cfg.qps = 2000.0;
        cfg.workerThreads = 4;
        cfg.warmupRequests = 40;
        cfg.measuredRequests = 300;
        cfg.seed = 46;
        cfg.keepSamples = true;
        const RunResult r = loopback.run(*app, cfg);
        CHECK(::unsetenv("TAILBENCH_IO_MODE") == 0);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(300));
        checkTimingInvariants(r);
        CHECK_EQ(r.serviceWorkers, 4u);
    }

    // A malformed frame mid-stream poisons only its own connection:
    // the reactor drops that client, and a well-behaved client on the
    // same server is unaffected.
    {
        auto app = makeTestApp();
        tb::net::IoOptions io;
        io.mode = tb::net::IoMode::kReactor;
        io.reactors = 1;  // both connections on one event loop
        tb::net::TcpServer server(*app, 1, 0, true, {}, {}, io);
        CHECK(server.listening());
        server.start();
        const int bad_fd =
            tb::net::connectTcp("127.0.0.1", server.port());
        CHECK(bad_fd >= 0);
        tb::net::TcpClientTransport good("127.0.0.1", server.port());
        CHECK(good.connected());

        const char garbage[] = "this is not a TBRQ frame";
        CHECK(::send(bad_fd, garbage, sizeof(garbage), MSG_NOSIGNAL) ==
              static_cast<ssize_t>(sizeof(garbage)));

        tb::util::Rng rng(23);
        Request req;
        req.id = 5;
        req.payload = app->genRequest(rng);
        req.genNs = tb::util::monotonicNs();
        good.sendRequest(std::move(req));
        Response resp;
        CHECK(good.recvResponse(resp));
        CHECK_EQ(resp.id, static_cast<uint64_t>(5));
        good.finishSend();
        CHECK(!good.recvResponse(resp));
        ::close(bad_fd);
        server.stop();
    }

    // Regression: MultiConnTcpTransport connection retirement. A
    // hand-rolled wire-level server answers on one connection and
    // hard-closes the other mid-stream; the transport must retire the
    // dead slot (collector on EOF, generator on write failure), keep
    // routing the remaining load over the live connection, and end
    // the response stream instead of hanging the collector on the
    // retired socket. Round-robin sends racing the retirement may
    // lose a bounded handful of requests to the dying socket — that
    // graceful loss is the contract; swallowing 1/N of the load
    // forever (or a wedged recvResponse) is the bug this guards.
    {
        const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
        CHECK(lfd >= 0);
        struct sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        CHECK(::bind(lfd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)) == 0);
        CHECK(::listen(lfd, 8) == 0);
        socklen_t alen = sizeof(addr);
        CHECK(::getsockname(lfd,
                            reinterpret_cast<struct sockaddr*>(&addr),
                            &alen) == 0);
        const uint16_t port = ntohs(addr.sin_port);

        std::thread srv([lfd] {
            const int a = ::accept(lfd, nullptr, nullptr);
            const int b = ::accept(lfd, nullptr, nullptr);
            CHECK(a >= 0 && b >= 0);
            ::close(b);  // mid-stream retirement under test
            std::vector<uint8_t> buf;
            uint8_t tmp[4096];
            for (;;) {
                const ssize_t n = ::read(a, tmp, sizeof(tmp));
                if (n <= 0)
                    break;
                buf.insert(buf.end(), tmp, tmp + n);
                size_t head = 0;
                for (;;) {
                    Request req;
                    size_t consumed = 0;
                    const auto r = tb::net::tryDecodeRequestFrame(
                        buf.data() + head, buf.size() - head, req,
                        consumed);
                    if (r != tb::net::DecodeResult::kFrame)
                        break;
                    head += consumed;
                    Response resp;
                    resp.id = req.id;
                    resp.timing.genNs = req.genNs;
                    resp.timing.startNs = req.genNs + 1;
                    resp.timing.endNs = req.genNs + 2;
                    uint8_t frame[tb::net::kResponseFrameBytes];
                    tb::net::encodeResponseFrame(frame, resp);
                    size_t sent = 0;
                    while (sent < sizeof(frame)) {
                        const ssize_t w =
                            ::send(a, frame + sent,
                                   sizeof(frame) - sent, MSG_NOSIGNAL);
                        if (w <= 0)
                            break;
                        sent += static_cast<size_t>(w);
                    }
                }
                buf.erase(buf.begin(),
                          buf.begin() + static_cast<long>(head));
            }
            ::shutdown(a, SHUT_WR);
            ::close(a);
        });

        tb::net::MultiConnTcpTransport transport("127.0.0.1", port,
                                                 /*connections=*/2);
        CHECK(transport.connected());
        constexpr uint64_t kN = 40;
        for (uint64_t i = 0; i < kN; i++) {
            Request req;
            req.id = i;
            req.payload = "x";
            req.genNs = tb::util::monotonicNs();
            transport.sendRequest(std::move(req));
        }
        transport.finishSend();
        std::set<uint64_t> seen;
        Response resp;
        while (transport.recvResponse(resp)) {
            CHECK(resp.id < kN);
            CHECK(seen.insert(resp.id).second);  // no duplicates
        }
        // Everything not racing the retirement came back: the live
        // connection absorbed the retired one's share.
        CHECK(seen.size() >= kN / 2);
        srv.join();
        ::close(lfd);
    }

    // Regression: elastic reader spawn under concurrent accept churn
    // (threads backend). Three client threads open eight persistent
    // connections each — every one pins a reader for its whole life,
    // so the accept loop must grow the reader pool while connections
    // are being accepted and served. Every request on every
    // connection must be answered and every stream must end at the
    // server's FIN; under the CI TSan job this also pins down the
    // reader_threads_ growth / stop() join ordering.
    {
        auto app = makeTestApp();
        tb::net::TcpServer server(*app, 2);
        CHECK(server.listening());
        server.start();
        constexpr unsigned kClientThreads = 3;
        constexpr unsigned kConnsPerThread = 8;
        constexpr uint64_t kReqsPerConn = 2;
        std::atomic<unsigned> ok{0};
        std::vector<std::thread> clients;
        for (unsigned t = 0; t < kClientThreads; t++) {
            clients.emplace_back([&, t] {
                std::vector<
                    std::unique_ptr<tb::net::TcpClientTransport>>
                    conns;
                // Open all connections up front so they stay live
                // concurrently — that is what forces the elastic
                // spawn past the seeded reader count.
                for (unsigned c = 0; c < kConnsPerThread; c++) {
                    conns.push_back(
                        std::make_unique<tb::net::TcpClientTransport>(
                            "127.0.0.1", server.port()));
                    if (!conns.back()->connected())
                        return;
                }
                tb::util::Rng rng(100 + t);
                for (unsigned c = 0; c < kConnsPerThread; c++) {
                    for (uint64_t i = 0; i < kReqsPerConn; i++) {
                        Request req;
                        req.id = t * 1000 + c * 10 + i;
                        req.payload = app->genRequest(rng);
                        req.genNs = tb::util::monotonicNs();
                        conns[c]->sendRequest(std::move(req));
                    }
                }
                for (unsigned c = 0; c < kConnsPerThread; c++) {
                    conns[c]->finishSend();
                    uint64_t got = 0;
                    Response resp;
                    while (conns[c]->recvResponse(resp))
                        got++;
                    if (got == kReqsPerConn)
                        ok.fetch_add(1);
                }
            });
        }
        for (auto& c : clients)
            c.join();
        CHECK_EQ(ok.load(), kClientThreads * kConnsPerThread);
        server.stop();
    }

    return TEST_MAIN_RESULT();
}
