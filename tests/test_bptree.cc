/** Unit tests: apps/common/bptree.h against a std::map reference. */

#include "apps/common/bptree.h"

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.h"

#include "tests/test_util.h"

using tb::apps::BPlusTree;
using tb::util::Rng;

int
main()
{
    // Empty tree.
    BPlusTree<uint64_t> empty;
    CHECK_EQ(empty.size(), static_cast<size_t>(0));
    CHECK(empty.find(42) == nullptr);
    CHECK_EQ(empty.scanFrom(0, 10, [](uint64_t, uint64_t) {}),
             static_cast<size_t>(0));

    // Randomized inserts + upserts, cross-checked against std::map.
    BPlusTree<uint64_t> tree;
    std::map<uint64_t, uint64_t> ref;
    Rng rng(42);
    for (int i = 0; i < 50000; i++) {
        // Narrow key range forces plenty of upserts and deep splits.
        const uint64_t key = rng.nextInt(20000) * 7919;
        const uint64_t val = rng.next();
        tree.insert(key, val);
        ref[key] = val;
    }
    CHECK_EQ(tree.size(), ref.size());
    for (const auto& [key, val] : ref) {
        const uint64_t* found = tree.find(key);
        CHECK(found != nullptr);
        if (found != nullptr)
            CHECK_EQ(*found, val);
    }
    // Absent keys (7919 is prime, so key+1 is never a multiple).
    for (int i = 0; i < 1000; i++)
        CHECK(tree.find(rng.nextInt(20000) * 7919 + 1) == nullptr);

    // Full scan returns every key in ascending order.
    std::vector<std::pair<uint64_t, uint64_t>> scanned;
    const size_t n = tree.scanFrom(
        0, ref.size() + 10, [&scanned](uint64_t k, uint64_t v) {
            scanned.emplace_back(k, v);
        });
    CHECK_EQ(n, ref.size());
    CHECK_EQ(scanned.size(), ref.size());
    auto it = ref.begin();
    bool order_ok = true;
    for (size_t i = 0; i < scanned.size() && it != ref.end();
         i++, ++it) {
        if (scanned[i].first != it->first ||
            scanned[i].second != it->second)
            order_ok = false;
    }
    CHECK(order_ok);

    // Bounded scan from the middle: starts at lower_bound(key),
    // respects the limit.
    const uint64_t mid_key = std::next(ref.begin(),
                                       static_cast<long>(ref.size() / 2))
                                 ->first;
    std::vector<uint64_t> window;
    CHECK_EQ(tree.scanFrom(mid_key, 16,
                           [&window](uint64_t k, uint64_t) {
                               window.push_back(k);
                           }),
             static_cast<size_t>(16));
    CHECK_EQ(window.front(), mid_key);
    for (size_t i = 1; i < window.size(); i++)
        CHECK(window[i] > window[i - 1]);

    // Sequential ascending and descending insertion (worst cases for
    // naive split logic).
    BPlusTree<int> asc;
    for (int i = 0; i < 5000; i++)
        asc.insert(static_cast<uint64_t>(i), i);
    CHECK_EQ(asc.size(), static_cast<size_t>(5000));
    for (int i = 0; i < 5000; i += 37) {
        const int* v = asc.find(static_cast<uint64_t>(i));
        CHECK(v != nullptr && *v == i);
    }
    BPlusTree<int> desc;
    for (int i = 4999; i >= 0; i--)
        desc.insert(static_cast<uint64_t>(i), i);
    CHECK_EQ(desc.size(), static_cast<size_t>(5000));
    for (int i = 0; i < 5000; i += 41) {
        const int* v = desc.find(static_cast<uint64_t>(i));
        CHECK(v != nullptr && *v == i);
    }

    return TEST_MAIN_RESULT();
}
