/** Unit tests: core/request_queue.h FIFO order, close semantics,
 * multi-producer/multi-consumer delivery. */

#include "core/request_queue.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "tests/test_util.h"

using tb::core::Request;
using tb::core::RequestQueue;

int
main()
{
    // FIFO order, single-threaded.
    {
        RequestQueue q;
        for (uint64_t i = 0; i < 100; i++) {
            Request r;
            r.id = i;
            r.payload = "p" + std::to_string(i);
            r.genNs = static_cast<int64_t>(i * 10);
            q.push(std::move(r));
        }
        CHECK_EQ(q.size(), static_cast<size_t>(100));
        Request out;
        for (uint64_t i = 0; i < 100; i++) {
            CHECK(q.pop(out));
            CHECK_EQ(out.id, i);
            CHECK(out.payload == "p" + std::to_string(i));
        }
        CHECK_EQ(q.size(), static_cast<size_t>(0));
    }

    // close() lets consumers drain the backlog, then pop() returns
    // false.
    {
        RequestQueue q;
        Request r;
        r.id = 7;
        q.push(std::move(r));
        q.close();
        Request out;
        CHECK(q.pop(out));
        CHECK_EQ(out.id, static_cast<uint64_t>(7));
        CHECK(!q.pop(out));
        CHECK(!q.pop(out));  // stays closed
    }

    // close() wakes a blocked consumer.
    {
        RequestQueue q;
        std::atomic<bool> returned{false};
        std::thread consumer([&] {
            Request out;
            const bool got = q.pop(out);
            CHECK(!got);
            returned = true;
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.close();
        consumer.join();
        CHECK(returned);
    }

    // 2 producers x 2 consumers: every id delivered exactly once.
    {
        RequestQueue q;
        constexpr uint64_t kPerProducer = 5000;
        std::vector<std::thread> producers;
        for (int p = 0; p < 2; p++) {
            producers.emplace_back([&q, p] {
                for (uint64_t i = 0; i < kPerProducer; i++) {
                    Request r;
                    r.id = static_cast<uint64_t>(p) * kPerProducer + i;
                    q.push(std::move(r));
                }
            });
        }
        std::mutex seen_mu;
        std::set<uint64_t> seen;
        std::vector<std::thread> consumers;
        for (int c = 0; c < 2; c++) {
            consumers.emplace_back([&] {
                Request out;
                while (q.pop(out)) {
                    std::lock_guard<std::mutex> lock(seen_mu);
                    const bool inserted =
                        seen.insert(out.id).second;
                    CHECK(inserted);  // no duplicate delivery
                }
            });
        }
        for (auto& t : producers)
            t.join();
        q.close();
        for (auto& t : consumers)
            t.join();
        CHECK_EQ(seen.size(), static_cast<size_t>(2 * kPerProducer));
    }

    return TEST_MAIN_RESULT();
}
