/** Unit tests: util/stats.h percentileOf edge cases and helpers. */

#include "util/stats.h"

#include <vector>

#include "tests/test_util.h"

using tb::util::meanOf;
using tb::util::percentileOf;
using tb::util::stddevOf;

int
main()
{
    // Empty: value-initialized result.
    CHECK_EQ(percentileOf(std::vector<double>{}, 50.0), 0.0);
    CHECK_EQ(percentileOf(std::vector<int64_t>{}, 99.0),
             static_cast<int64_t>(0));

    // Single element: every percentile is that element.
    const std::vector<double> one = {7.5};
    CHECK_EQ(percentileOf(one, 0.0), 7.5);
    CHECK_EQ(percentileOf(one, 50.0), 7.5);
    CHECK_EQ(percentileOf(one, 100.0), 7.5);

    // Interpolation (type-7): p50 of {1,2,3,4} = 2.5; p25 = 1.75.
    const std::vector<double> four = {4.0, 1.0, 3.0, 2.0};  // unsorted
    CHECK_NEAR(percentileOf(four, 50.0), 2.5, 1e-12);
    CHECK_NEAR(percentileOf(four, 25.0), 1.75, 1e-12);
    CHECK_EQ(percentileOf(four, 0.0), 1.0);
    CHECK_EQ(percentileOf(four, 100.0), 4.0);

    // Out-of-range pct clamps.
    CHECK_EQ(percentileOf(four, -5.0), 1.0);
    CHECK_EQ(percentileOf(four, 250.0), 4.0);

    // Integral T rounds the interpolated value to nearest.
    const std::vector<int64_t> ints = {10, 20};
    CHECK_EQ(percentileOf(ints, 50.0), static_cast<int64_t>(15));
    CHECK_EQ(percentileOf(ints, 51.0), static_cast<int64_t>(15));
    CHECK_EQ(percentileOf(ints, 99.0), static_cast<int64_t>(20));

    // Input is not modified (taken by const ref, sorted on a copy).
    CHECK_EQ(four[0], 4.0);

    // Exact percentile on a known ladder: 0..100.
    std::vector<int64_t> ladder;
    for (int64_t i = 0; i <= 100; i++)
        ladder.push_back(i);
    CHECK_EQ(percentileOf(ladder, 95.0), static_cast<int64_t>(95));
    CHECK_EQ(percentileOf(ladder, 50.0), static_cast<int64_t>(50));

    // meanOf / stddevOf.
    CHECK_EQ(meanOf(std::vector<double>{}), 0.0);
    CHECK_NEAR(meanOf(four), 2.5, 1e-12);
    CHECK_EQ(stddevOf(one), 0.0);
    CHECK_NEAR(stddevOf(four), 1.2909944487358056, 1e-9);

    return TEST_MAIN_RESULT();
}
