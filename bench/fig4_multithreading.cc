/**
 * @file
 * Reproduces Fig. 4: 95th-percentile latency vs. QPS-per-thread as worker
 * threads grow from 1 to 4, for silo, masstree, xapian, and moses.
 *
 * Runs in the virtual-time simulator (the host has too few cores for
 * faithful real-time 4-thread runs; see DESIGN.md). Expected shapes:
 * masstree and xapian keep a roughly constant per-thread saturation rate;
 * silo saturates at lower per-thread QPS as threads grow (sync on the
 * 1-warehouse TPC-C districts); moses holds at 2 threads but degrades at
 * 4 (shared-cache/DRAM contention).
 */

#include <cstdio>

#include "bench/common.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 4: p95 latency vs. QPS/thread, 1/2/4 threads (simulated)");

    const char* figure_apps[] = {"silo", "masstree", "xapian", "moses"};
    for (const auto& name : figure_apps) {
        auto app = bench::makeBenchApp(name, s);
        sim::SimHarness h;
        const double sat1 = bench::calibrateSaturation(h, *app, 1, s);
        const uint64_t budget = 2 * bench::requestBudget(name, s);

        std::printf("\n%s (1-thread sat ~ %.0f qps)\n", name, sat1);
        std::printf("  %8s", "qps/thr");
        for (unsigned t : {1u, 2u, 4u})
            std::printf(" %14s", ("p95_ms@" + std::to_string(t) +
                                  "thr").c_str());
        std::printf("\n");

        for (double f : bench::sweepFractions(s)) {
            const double per_thread_qps = f * sat1;
            std::printf("  %8.1f", per_thread_qps);
            for (unsigned threads : {1u, 2u, 4u}) {
                const core::RunResult r = bench::measureAt(
                    h, *app, per_thread_qps * threads, threads, budget,
                    s.seed + threads);
                std::printf(" %14s",
                            bench::fmtMs(static_cast<double>(
                                r.latency.sojourn.p95Ns)).c_str());
            }
            std::printf("\n");
        }

        // Per-thread saturation throughput: measure at heavy overload.
        std::printf("  saturated qps/thread:");
        for (unsigned threads : {1u, 2u, 4u}) {
            const core::RunResult r = bench::measureAt(
                h, *app, 3.0 * sat1 * threads, threads, budget,
                s.seed + 7 + threads);
            std::printf(" %u:%.0f", threads,
                        r.achievedQps / threads);
        }
        std::printf("\n");
    }
    return 0;
}
