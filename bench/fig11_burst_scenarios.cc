/**
 * @file
 * Fig. 11 (extension): tail behavior under non-Poisson arrivals at
 * equal mean load. The paper's methodology is open-loop Poisson; real
 * traffic is bursty and diurnal, and the whole point of the pluggable
 * core::ArrivalProcess seam is that the same harness, app, and mean
 * rate can be driven by all four processes — so the tail inflation
 * that bursts cause is attributable to the arrival shape alone.
 *
 * For one app (img-dnn) at 60% of saturation, the driver measures
 * poisson / bursts / diurnal / trace over two harness families: the
 * integrated (in-process) harness and the loopback TCP harness pinned
 * to the epoll-reactor backend. Per process it reports end-of-run
 * tails, SLO attainment, the worst per-window p99 (windowed
 * accounting — a burst that only hurts one window is visible), the
 * number of windows where the generator fell behind its schedule, and
 * the coordinated-omission self-check verdict. Expected shape: bursts
 * and diurnal strictly dominate poisson at p99 while achieved QPS
 * stays within a few percent across processes (equal mean load);
 * scripts/perf_check.py checks exactly that in BENCH_fig11.json.
 *
 * The SLO target comes from TAILBENCH_SLO_MS when set; otherwise it
 * is derived as 4x the Poisson p95 of a low-load probe, so the
 * attainment column is meaningful at any TAILBENCH_SIZE.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/arrival.h"
#include "core/integrated_harness.h"
#include "net/server_harness.h"
#include "util/rng.h"

using namespace tb;

namespace {

/** Like bench::measureAt, but with an explicit arrival spec and
 * windows/SLO knobs instead of the environment's. */
core::RunResult
measureWith(core::Harness& h, apps::App& app, double qps,
            unsigned threads, uint64_t requests, uint64_t seed,
            const core::ArrivalSpec& arrival, int64_t sloNs,
            unsigned windows)
{
    core::HarnessConfig cfg;
    cfg.qps = qps;
    cfg.workerThreads = threads;
    cfg.warmupRequests = std::max<uint64_t>(50, requests / 10);
    cfg.measuredRequests = requests;
    cfg.seed = seed;
    cfg.arrival = arrival;
    cfg.sloTargetNs = sloNs;
    cfg.windows = windows;
    return h.run(app, cfg);
}

/**
 * Writes a replayable trace by sampling a *harsher* on/off process
 * than the bursts column (ratio 6, duty 0.15, short 12-request bursts
 * so several full on/off cycles land inside the n-gap file — a trace
 * shorter than one cycle would replay as near-uniform gaps): the
 * trace column then demonstrates both the file format and that replay
 * reproduces non-Poisson tails. Gap values are arbitrary-positive —
 * TraceProcess renormalizes their mean to the run's rate.
 */
bool
writeBurstTrace(const std::string& path, uint64_t n, uint64_t seed)
{
    core::ArrivalSpec spec;
    spec.kind = core::ArrivalKind::kBursts;
    spec.burstRatio = 6.0;
    spec.burstDuty = 0.15;
    spec.burstLen = 12.0;
    const auto process = core::makeArrivalProcess(spec, 1000.0);
    util::Rng rng(util::mix64(seed, 0x545241434511ull));
    const std::vector<double> sched =
        core::emitSchedule(*process, rng, n, 0.0);
    std::string text = "# fig11 replay trace: interarrival gaps in ns, "
                       "one per line\n";
    double prev = 0.0;
    for (const double t : sched) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f\n", t - prev);
        text += buf;
        prev = t;
    }
    return bench::writeTextFile(path, text);
}

struct Fig11Point {
    std::string config;
    std::string process;
    double offeredQps = 0.0;
    core::RunResult result;
};

}  // namespace

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 11: tails under non-Poisson arrivals at equal mean load");

    const std::string app_name = "img-dnn";
    auto app = bench::makeBenchApp(app_name, s);
    const unsigned threads = 2;
    // The replay trace holds kTraceGaps gaps; keeping the measured
    // count a multiple of that means the schedule covers whole trace
    // cycles, so the trace column's mean rate is exact by
    // construction (any cyclic window of k*n gaps sums to k times
    // the normalized total) rather than biased by a partial cycle.
    const uint64_t kTraceGaps = 64;
    uint64_t budget = std::max<uint64_t>(
        bench::requestBudget(app_name, s), s.fast ? 1024 : 3008);
    budget = (budget + kTraceGaps - 1) / kTraceGaps * kTraceGaps;
    const unsigned windows = 8;

    core::IntegratedHarness integrated;
    net::LoopbackOptions lopts;
    lopts.connections = 2;
    lopts.useEnvIo = false;  // pin the reactor backend for this column
    lopts.io.mode = net::IoMode::kReactor;
    net::LoopbackHarness reactor_tcp(lopts);
    std::vector<core::Harness*> harnesses = {&integrated, &reactor_tcp};

    // Equal mean load for every process: 60% of integrated saturation.
    const double sat =
        bench::calibrateSaturation(integrated, *app, threads, s);
    const double qps = 0.6 * sat;

    // SLO target: explicit knob, else 4x the Poisson p95 of a
    // low-load probe — loose enough that poisson attains it almost
    // fully, tight enough that burst tails visibly miss it.
    int64_t slo_ns = s.sloTargetNs;
    if (slo_ns <= 0) {
        const core::RunResult probe = measureWith(
            integrated, *app, 0.3 * sat, threads,
            std::max<uint64_t>(100, budget / 4), s.seed + 7,
            core::ArrivalSpec{}, 0, 0);
        slo_ns = 4 * probe.latency.sojourn.p95Ns;
    }

    // The four arrival processes at one mean rate. Diurnal gets an
    // explicit period of half the measured budget so even fast-mode
    // runs cover >= 2 full modulation periods (a fraction of a period
    // would bias the achieved mean rate), and an amplitude that puts
    // its peaks at 1.8 * 0.6 = 108% of saturation — transient
    // overload at unchanged mean load, which is precisely the
    // scenario a whole-run Poisson sweep cannot represent.
    const std::string trace_path = "fig11_trace.txt";
    const bool have_trace = writeBurstTrace(trace_path, kTraceGaps, s.seed);
    std::vector<core::ArrivalSpec> specs(4);
    specs[0].kind = core::ArrivalKind::kPoisson;
    specs[1].kind = core::ArrivalKind::kBursts;
    specs[2].kind = core::ArrivalKind::kDiurnal;
    specs[2].periodReqs = static_cast<double>(budget) / 2.0;
    specs[2].diurnalAmp = 0.8;
    specs[3].kind = core::ArrivalKind::kTrace;
    specs[3].tracePath = trace_path;
    const size_t nspecs = have_trace ? 4 : 3;

    std::printf("\napp=%s threads=%u qps=%.0f (60%% of sat %.0f) "
                "slo=%.2f ms windows=%u\n",
                app_name.c_str(), threads, qps, sat,
                static_cast<double>(slo_ns) / 1e6, windows);

    std::vector<Fig11Point> points;
    for (core::Harness* h : harnesses) {
        std::printf("\n%s:\n", h->configName().c_str());
        std::printf("  %-8s %10s %10s %10s %7s %12s %7s %4s\n",
                    "process", "p95_ms", "p99_ms", "ach_qps", "slo%",
                    "worstw_p99", "lagged", "co");
        for (size_t i = 0; i < nspecs; i++) {
            const core::RunResult r =
                measureWith(*h, *app, qps, threads, budget, s.seed,
                            specs[i], slo_ns, windows);
            int64_t worst_p99 = 0;
            unsigned lagged = 0;
            for (const core::WindowStats& w : r.windows) {
                worst_p99 = std::max(worst_p99, w.sojournP99Ns);
                if (w.genLagged)
                    lagged++;
            }
            std::printf("  %-8s %10s %10s %10.0f %6.1f%% %12s %7u %4s\n",
                        core::arrivalKindName(specs[i].kind),
                        bench::fmtMs(static_cast<double>(
                            r.latency.sojourn.p95Ns)).c_str(),
                        bench::fmtMs(static_cast<double>(
                            r.latency.sojourn.p99Ns)).c_str(),
                        r.achievedQps, r.sloAttainment * 100.0,
                        bench::fmtMs(static_cast<double>(worst_p99))
                            .c_str(),
                        lagged, r.coSuspect ? "YES" : "no");
            points.push_back({h->configName(),
                              core::arrivalKindName(specs[i].kind), qps,
                              r});
        }
    }

    // Headline comparison: tail inflation attributable purely to the
    // arrival shape.
    std::printf("\nburst-vs-poisson p99 inflation at equal mean "
                "load:\n");
    for (core::Harness* h : harnesses) {
        double poisson_p99 = 0.0;
        for (const Fig11Point& p : points)
            if (p.config == h->configName() && p.process == "poisson")
                poisson_p99 =
                    static_cast<double>(p.result.latency.sojourn.p99Ns);
        for (const Fig11Point& p : points) {
            if (p.config != h->configName() || p.process == "poisson")
                continue;
            if (poisson_p99 > 0.0)
                std::printf("  %-10s %-8s %.2fx\n", p.config.c_str(),
                            p.process.c_str(),
                            static_cast<double>(
                                p.result.latency.sojourn.p99Ns) /
                                poisson_p99);
        }
    }

    // Machine-readable report (checked warn-only by perf_check.py:
    // equal achieved QPS across processes, bursts p99 >= poisson p99).
    bench::JsonWriter jw;
    jw.beginObject()
        .str("driver", "fig11")
        .str("git", bench::gitRevision())
        .beginObject("config")
        .str("app", app_name)
        .num("threads", threads)
        .num("size_factor", s.sizeFactor)
        .boolean("fast", s.fast)
        .num("seed", static_cast<double>(s.seed))
        .num("offered_qps", qps)
        .num("sat_qps", sat)
        .num("slo_ms", static_cast<double>(slo_ns) / 1e6)
        .num("windows", windows)
        .endObject()
        .beginArray("points");
    for (const Fig11Point& p : points) {
        const core::RunResult& r = p.result;
        jw.beginObject()
            .str("config", p.config)
            .str("process", p.process)
            .num("offered_qps", p.offeredQps)
            .num("achieved_qps", r.achievedQps)
            .num("p95_ns", static_cast<double>(r.latency.sojourn.p95Ns))
            .num("p99_ns", static_cast<double>(r.latency.sojourn.p99Ns))
            .num("slo_attainment", r.sloAttainment)
            .num("max_gen_lag_ns", static_cast<double>(r.maxGenLagNs))
            .num("co_span_stretch", r.coSpanStretch)
            .num("co_late_frac", r.coLateFrac)
            .boolean("co_suspect", r.coSuspect)
            .beginArray("windows");
        for (const core::WindowStats& w : r.windows) {
            jw.beginObject()
                .num("start_ns", static_cast<double>(w.startNs))
                .num("end_ns", static_cast<double>(w.endNs))
                .num("count", static_cast<double>(w.count))
                .num("p50_ns", static_cast<double>(w.sojournP50Ns))
                .num("p95_ns", static_cast<double>(w.sojournP95Ns))
                .num("p99_ns", static_cast<double>(w.sojournP99Ns))
                .num("max_gen_lag_ns",
                     static_cast<double>(w.maxGenLagNs))
                .num("slo_frac", w.sloFrac)
                .boolean("gen_lagged", w.genLagged)
                .endObject();
        }
        jw.endArray().endObject();
    }
    jw.endArray().endObject();
    if (bench::writeTextFile("BENCH_fig11.json", jw.text()))
        std::printf("\nwrote BENCH_fig11.json (%zu points)\n",
                    points.size());
    return 0;
}
