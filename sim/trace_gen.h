#ifndef TAILBENCH_SIM_TRACE_GEN_H_
#define TAILBENCH_SIM_TRACE_GEN_H_

/**
 * @file
 * Reuse-profile synthetic address-trace generator: turns an
 * apps::AppProfile's Table I MPKI targets into an interleaved
 * instruction-fetch + data-access stream whose *measured* miss rates
 * through the structural cache hierarchy (sim/cache.h) converge
 * toward those targets.
 *
 * Model. Each stream touches six regions whose reuse profiles pin
 * them to one level of the hierarchy, so each knob steers one level:
 *
 *   code  hot   fits L1I/4; sequential fetch, wraps     (always hits)
 *   code  cold  conflict walk over 16 L1I sets x 2*ways rows:
 *               per-set reuse distance > associativity, so it misses
 *               L1I on every touch yet stays L2-resident
 *   data  hot   fits L1D/4; uniform                     (always hits)
 *   data  l2    L2/4, uniform: bigger than L1D (misses it), lives
 *               comfortably in L2
 *   data  l3    conflict walk over 16 L2 sets x 4*ways rows: misses
 *               L1D and L2 on every touch, spreads across (and stays
 *               resident in) the much larger L3
 *   data  mem   pointer-chase strides over 16x the L3; the walk
 *               never revisits a line before wrapping, so it misses
 *               every level
 *
 * The conflict regions are the key trick: a cyclic walk over a big
 * region only misses once its first lap completes, which at low
 * access rates takes longer than any realistic window — but a walk
 * that packs more lines per set than the set has ways misses from
 * the very first revisit, at any rate. Rate-independent miss
 * behavior is what makes the per-level rates calibratable knobs.
 *
 * Every instruction issues one ifetch (hot loop, or a cold-region
 * step at rate ifetchColdPerKi); data accesses fire at the region
 * rates via a fractional accumulator. All randomness comes from
 * util::Rng sub-streams derived from (seed, stream, purpose), so a
 * fixed seed reproduces the exact trace.
 *
 * Calibration (measureTraceMpki). The region rates are only
 * first-order estimates of per-level misses: the real tag arrays add
 * conflict misses, DRRIP keeps a slice of the mem region resident,
 * cold code and the data regions fight over the shared L2, and the
 * inclusive L3 back-invalidates. A fixed-point loop absorbs all of
 * that: run a short calibration trace, compare measured per-level
 * MPKI against the profile's targets, rescale each rate by its
 * target/measured ratio (clamped), repeat until within tolerance or
 * the iteration cap. Degenerate profiles (all-zero targets,
 * non-monotone L2 < L3 chains) are warned about and handled with
 * clamps — the loop is bounded no matter what.
 */

#include <cstdint>

#include "apps/common/app.h"
#include "sim/cache.h"

namespace tb::sim {

/** Calibratable knobs: expected accesses per kilo-instruction into
 * each miss-inducing region (hot regions are fixed background). */
struct TraceParams {
    double ifetchColdPerKi = 0.0;
    double l2RegionPerKi = 0.0;
    double l3RegionPerKi = 0.0;
    double memRegionPerKi = 0.0;
    /** L1-resident data accesses; realism ballast, always hits. */
    double hotDataPerKi = 150.0;

    /** First-order estimate from the profile's MPKI targets (assumes
     * the nominal per-region miss probabilities; the fixed point
     * refines against the measured ones). */
    static TraceParams fromProfile(const apps::AppProfile& p);
};

/** Per-window tally of how deep each access had to go. Index 1..4 =
 * level that served it (sim/cache.h convention). */
struct TraceStats {
    uint64_t instructions = 0;
    uint64_t ifetchAtLevel[5] = {0, 0, 0, 0, 0};
    uint64_t dataAtLevel[5] = {0, 0, 0, 0, 0};

    double mpki(uint64_t events) const
    {
        return instructions == 0
            ? 0.0
            : static_cast<double>(events) * 1000.0 /
                static_cast<double>(instructions);
    }
    double l1iMpki() const
    {
        return mpki(ifetchAtLevel[2] + ifetchAtLevel[3] +
                    ifetchAtLevel[4]);
    }
    double l1dMpki() const
    {
        return mpki(dataAtLevel[2] + dataAtLevel[3] + dataAtLevel[4]);
    }
    /** Unified-L2 miss rate (code + data), Table I's convention. */
    double l2Mpki() const
    {
        return mpki(ifetchAtLevel[3] + ifetchAtLevel[4] +
                    dataAtLevel[3] + dataAtLevel[4]);
    }
    double l2DataMpki() const
    {
        return mpki(dataAtLevel[3] + dataAtLevel[4]);
    }
    double l3Mpki() const
    {
        return mpki(ifetchAtLevel[4] + dataAtLevel[4]);
    }
};

/** Deterministic generator for one stream; region sizes derive from
 * @p geo so the reuse distances straddle the right levels. */
class TraceGenerator {
  public:
    TraceGenerator(const TraceParams& params, uint64_t seed,
                   const HierarchyConfig& geo, unsigned stream = 0);

    /** Runs @p kiloInstr thousand instructions through @p h,
     * returning the tally for this window. Generator and cache state
     * carry across calls (warmup then measure). */
    TraceStats run(CacheHierarchy& h, uint64_t kiloInstr);

  private:
    TraceParams params_;
    unsigned stream_;

    // Independent sub-streams (derived from (seed, stream, purpose))
    // so tuning one rate never perturbs another knob's draws.
    util::Rng ifetch_rng_;
    util::Rng data_rng_;
    util::Rng pos_rng_;

    // Simple regions (extent in lines).
    uint64_t hot_code_lines_, hot_data_lines_, l2_lines_;
    // Conflict regions: cols sets x rows lines per set; row stride =
    // the set count of the level the region defeats.
    uint64_t cold_cols_, cold_rows_, cold_row_stride_;
    uint64_t l3_cols_, l3_rows_, l3_row_stride_;
    // Mem region: full-period low-discrepancy chase (stride coprime
    // with the extent), so no line repeats before the whole 16x-L3
    // span has been walked.
    uint64_t mem_lines_, mem_stride_;

    // Walker state.
    uint64_t hot_pc_ = 0;      // instruction index in the hot loop
    uint64_t cold_idx_ = 0;    // cold-code walk position
    uint64_t l3_idx_ = 0;      // l3-region walk position
    uint64_t mem_pos_ = 0;     // mem-region chase position
    double data_carry_ = 0.0;  // fractional data accesses owed
};

/** Structural MPKI measurement: per-level measured rates, plus how
 * the calibration went. */
struct MeasuredMpki {
    double l1i = 0.0;
    double l1d = 0.0;
    double l2 = 0.0;
    double l3 = 0.0;
    uint64_t instructions = 0;
    bool converged = false;
    int iterations = 0;
};

/**
 * Calibrates a trace against @p profile's L1I/L1D/L2/L3 MPKI targets
 * (fixed-point, bounded iterations), then measures a fresh
 * @p warmupKi-kiloinstruction warmup + @p measuredKi-kiloinstruction
 * window through the default-machine hierarchy. Deterministic in
 * (profile, seed, warmupKi, measuredKi).
 */
MeasuredMpki measureTraceMpki(const apps::AppProfile& profile,
                              uint64_t seed, uint64_t warmupKi,
                              uint64_t measuredKi);

}  // namespace tb::sim

#endif  // TAILBENCH_SIM_TRACE_GEN_H_
