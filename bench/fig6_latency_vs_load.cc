/**
 * @file
 * Reproduces Fig. 6: 95th-percentile latency for shore and img-dnn as a
 * function of system LOAD (fraction of each configuration's own
 * saturation) rather than absolute QPS.
 *
 * The paper's point: simulation has a constant performance error, so
 * real and simulated curves that are offset in QPS (Fig. 5) nearly
 * coincide when re-plotted against load. The driver prints, per load
 * level, the p95 of each configuration driven at that fraction of its
 * OWN saturation rate.
 */

#include <cstdio>

#include "bench/common.h"
#include "core/integrated_harness.h"
#include "net/server_harness.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 6: p95 vs. load for shore and img-dnn (4 setups)");

    core::IntegratedHarness integrated;
    net::LoopbackHarness loopback;
    net::NetworkedHarness networked;
    sim::SimHarness simulation;
    core::Harness* configs[] = {&networked, &loopback, &integrated,
                                &simulation};

    for (const auto& name : {std::string("shore"),
                             std::string("img-dnn")}) {
        auto app = bench::makeBenchApp(name, s);
        const uint64_t budget = bench::requestBudget(name, s);

        // Per-config saturation: the x-axis is load relative to each
        // configuration's own capacity.
        double sat[4];
        for (int c = 0; c < 4; c++)
            sat[c] = bench::calibrateSaturation(*configs[c], *app, 1, s);

        std::printf("\n%s (sat: networked %.0f, loopback %.0f, "
                    "integrated %.0f, simulation %.0f qps)\n",
                    name.c_str(), sat[0], sat[1], sat[2], sat[3]);
        std::printf("  %6s %12s %8s %12s %8s %12s %8s %12s %8s\n",
                    "load", "networked", "ach", "loopback", "ach",
                    "integrated", "ach", "simulation", "ach");
        for (double f : bench::sweepFractions(s)) {
            std::printf("  %6.2f", f);
            for (int c = 0; c < 4; c++) {
                const core::RunResult r = bench::measureAt(
                    *configs[c], *app, f * sat[c], 1, budget,
                    s.seed + static_cast<uint64_t>(f * 1000));
                std::printf(" %12s %8s",
                            bench::fmtP95Cell(r, f * sat[c]).c_str(),
                            bench::fmtQpsCell(r, f * sat[c]).c_str());
            }
            std::printf("\n");
        }
    }
    std::printf("\nExpect all four columns to be close at each load "
                "level (the paper's Fig. 6 claim).\n");
    return 0;
}
