#!/usr/bin/env python3
"""Warn-only perf smoke: check the machine-readable bench reports
against conservative floor thresholds.

Usage: perf_check.py [dir-with-BENCH_*.json]   (default: cwd)

Reads BENCH_fig10.json and BENCH_microbench_hotpath.json, produced by
running fig10_connection_scaling and microbench_hotpath in the given
directory, and checks the hot-path PR's headline claims:

  fig10      the reactor backend's saturation QPS at the largest
             connection count must clear an absolute floor — a
             regression that costs the C10k path an order of
             magnitude shows up here even on a noisy CI host.
  microbench reactor+arena steady state must be allocation-free
             (< 0.01 heap allocs/request; skipped when the JSON says
             the operator-new hook is compiled out, i.e. sanitizer
             builds), and response-write coalescing must save >= 4x
             syscalls versus the per-frame path.

Exit codes: 0 all checks pass, 1 a check failed, 2 a report is
missing/unparseable. CI runs this step with continue-on-error — the
thresholds are floors against collapse, not a benchmarking service;
absolute QPS on shared runners is too noisy to gate merges on.
"""

import json
import os
import sys

# Floors, not targets: an unloaded dev box exceeds these by >10x; CI
# runners by ~2-5x. They exist to catch collapse (a serialization bug,
# an accidental O(n^2)), not drift.
FIG10_REACTOR_MIN_SAT_QPS = 2000.0
ARENA_MAX_ALLOCS_PER_REQ = 0.01
MIN_COALESCING_WRITE_RATIO = 4.0


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print(f"perf_check: cannot read {path}: {e}")
        return None
    except ValueError as e:
        print(f"perf_check: cannot parse {path}: {e}")
        return None


def check_fig10(report):
    """Reactor saturation at the deepest connection sweep point."""
    failures = []
    best = {}  # io backend -> max saturation over its sweep
    for point in report.get("points", []):
        backend = point.get("io", "?")
        sat = point.get("saturation_qps")
        if isinstance(sat, (int, float)):
            best[backend] = max(best.get(backend, 0.0), sat)
    sat = best.get("reactor")
    if sat is None:
        failures.append("fig10: no reactor point carries saturation_qps")
    elif sat < FIG10_REACTOR_MIN_SAT_QPS:
        failures.append(
            f"fig10: reactor saturation {sat:.0f} qps is below the "
            f"{FIG10_REACTOR_MIN_SAT_QPS:.0f} qps floor"
        )
    else:
        print(
            f"perf_check: fig10 reactor saturation {sat:.0f} qps "
            f"(floor {FIG10_REACTOR_MIN_SAT_QPS:.0f}) ok"
        )
    return failures


def check_microbench(report):
    failures = []
    modes = {m.get("mode"): m for m in report.get("modes", [])}

    hook = report.get("alloc_hook_active", False)
    arena = modes.get("reactor_arena", {})
    allocs = arena.get("allocs_per_req")
    if not hook:
        print(
            "perf_check: alloc hook inactive (sanitizer build) — "
            "skipping the allocs/request criterion"
        )
    elif not isinstance(allocs, (int, float)):
        failures.append("microbench: reactor_arena lacks allocs_per_req")
    elif allocs >= ARENA_MAX_ALLOCS_PER_REQ:
        failures.append(
            f"microbench: reactor_arena allocates {allocs:.3f}/request "
            f"(must be < {ARENA_MAX_ALLOCS_PER_REQ})"
        )
    else:
        print(
            f"perf_check: reactor_arena {allocs:.3f} allocs/request "
            f"(< {ARENA_MAX_ALLOCS_PER_REQ}) ok"
        )

    ratio = report.get("summary", {}).get("coalescing_write_ratio")
    if not isinstance(ratio, (int, float)):
        failures.append("microbench: summary lacks coalescing_write_ratio")
    elif ratio < MIN_COALESCING_WRITE_RATIO:
        failures.append(
            f"microbench: coalescing saves only {ratio:.2f}x write "
            f"syscalls (must be >= {MIN_COALESCING_WRITE_RATIO}x)"
        )
    else:
        print(
            f"perf_check: write coalescing {ratio:.1f}x "
            f"(>= {MIN_COALESCING_WRITE_RATIO}x) ok"
        )
    return failures


def main():
    where = sys.argv[1] if len(sys.argv) > 1 else "."
    reports = {
        name: load(os.path.join(where, name))
        for name in ("BENCH_fig10.json", "BENCH_microbench_hotpath.json")
    }
    if any(r is None for r in reports.values()):
        return 2
    failures = check_fig10(reports["BENCH_fig10.json"])
    failures += check_microbench(reports["BENCH_microbench_hotpath.json"])
    for f in failures:
        print(f"perf_check: FAIL: {f}")
    if not failures:
        print("perf_check: all checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
