/**
 * @file
 * Reproduces Fig. 6: 95th-percentile latency for shore and img-dnn as a
 * function of system LOAD (fraction of each configuration's own
 * saturation) rather than absolute QPS.
 *
 * The paper's point: simulation has a constant performance error, so
 * real and simulated curves that are offset in QPS (Fig. 5) nearly
 * coincide when re-plotted against load. The driver prints, per load
 * level, the p95 of each configuration driven at that fraction of its
 * OWN saturation rate.
 */

#include <cstdio>

#include "bench/common.h"
#include "bench/sweep.h"
#include "core/integrated_harness.h"
#include "net/server_harness.h"
#include "sim/sim_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 6: p95 vs. load for shore and img-dnn (4 setups)");

    core::IntegratedHarness integrated;
    net::LoopbackHarness loopback;
    net::NetworkedHarness networked;
    sim::SimHarness simulation;

    bench::SweepSpec spec;
    spec.key = "fig6";
    spec.apps = {"shore", "img-dnn"};
    spec.harnesses = {&networked, &loopback, &integrated, &simulation};
    spec.perHarnessLoad = true;
    bench::runLatencySweep(spec, s);

    std::printf("\nExpect all four columns to be close at each load "
                "level (the paper's Fig. 6 claim).\n");
    return 0;
}
