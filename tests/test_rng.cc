/** Unit tests: util/rng.h determinism and distribution sanity. */

#include "util/rng.h"

#include <vector>

#include "tests/test_util.h"

using tb::util::Rng;

int
main()
{
    // Same seed => same stream; different seed => different stream.
    Rng a(123);
    Rng b(123);
    Rng c(124);
    bool all_equal = true;
    bool any_diff_seed_diff = false;
    for (int i = 0; i < 1000; i++) {
        const uint64_t va = a.next();
        if (va != b.next())
            all_equal = false;
        if (va != c.next())
            any_diff_seed_diff = true;
    }
    CHECK(all_equal);
    CHECK(any_diff_seed_diff);

    // nextInt stays in range; n == 0 is safe.
    Rng r(7);
    for (int i = 0; i < 10000; i++)
        CHECK(r.nextInt(17) < 17);
    CHECK_EQ(r.nextInt(0), static_cast<uint64_t>(0));

    // nextDouble in [0, 1); sample mean near 0.5.
    double sum = 0.0;
    for (int i = 0; i < 20000; i++) {
        const double d = r.nextDouble();
        CHECK(d >= 0.0);
        CHECK(d < 1.0);
        sum += d;
    }
    CHECK_NEAR(sum / 20000.0, 0.5, 0.02);

    // Exponential: positive, sample mean near the requested mean.
    double esum = 0.0;
    for (int i = 0; i < 50000; i++) {
        const double e = r.nextExponential(250.0);
        CHECK(e >= 0.0);
        esum += e;
    }
    CHECK_NEAR(esum / 50000.0, 250.0, 0.03);

    // Gaussian: mean ~0, variance ~1.
    double gsum = 0.0;
    double gsq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; i++) {
        const double g = r.nextGaussian();
        gsum += g;
        gsq += g * g;
    }
    CHECK_NEAR(gsum / n, 0.0, 0.02);
    CHECK_NEAR(gsq / n, 1.0, 0.03);

    return TEST_MAIN_RESULT();
}
