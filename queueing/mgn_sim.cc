#include "queueing/mgn_sim.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <queue>

#include "core/arrival.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tb::queueing {

namespace {

/**
 * The discrete-event core. With identical servers and one FCFS queue,
 * the simulation collapses to a single invariant: the i-th arrival (in
 * arrival order) starts service at max(its arrival time, the earliest
 * server-free time), so a min-heap of per-server free times is the
 * entire event structure — no explicit queue object is needed, and the
 * loop is O((warmup + measured) * log n).
 *
 * Arrival gaps and service resampling draw from two independently
 * derived sub-RNG streams, so changing `measured` (more arrivals) or
 * the sample vector's size never perturbs the other stream — the
 * determinism contract callers rely on.
 */
std::vector<core::RequestTiming>
simulateTimings(const std::vector<int64_t>& samples, const MgnConfig& cfg)
{
    std::vector<core::RequestTiming> timings;
    if (samples.empty() || cfg.lambda <= 0.0 || cfg.servers == 0 ||
        cfg.measured == 0) {
        TB_LOG_WARN(
            "simulateMgn: degenerate config (samples=%zu lambda=%.3g "
            "servers=%u measured=%llu); returning empty result",
            samples.size(), cfg.lambda, cfg.servers,
            static_cast<unsigned long long>(cfg.measured));
        return timings;
    }

    util::Rng arrival_rng(util::mix64(cfg.seed, 0x41525249564ecull));
    util::Rng service_rng(util::mix64(cfg.seed, 0x5345525649434cull));
    const std::unique_ptr<core::ArrivalProcess> process =
        core::makeArrivalProcess(cfg.arrival, cfg.lambda);
    process->reset(0.0);

    std::priority_queue<int64_t, std::vector<int64_t>,
                        std::greater<int64_t>>
        server_free;
    for (unsigned i = 0; i < cfg.servers; i++)
        server_free.push(0);

    const uint64_t total = cfg.warmup + cfg.measured;
    timings.reserve(cfg.measured);
    for (uint64_t i = 0; i < total; i++) {
        const int64_t gen =
            std::llround(process->nextArrivalNs(arrival_rng));
        const int64_t svc = std::max<int64_t>(
            0, samples[service_rng.nextInt(samples.size())]);
        const int64_t start = std::max(gen, server_free.top());
        server_free.pop();
        const int64_t end = start + svc;
        server_free.push(end);
        if (i >= cfg.warmup) {
            core::RequestTiming t;
            t.genNs = gen;
            t.startNs = start;
            t.endNs = end;
            timings.push_back(t);
        }
    }
    return timings;
}

}  // namespace

MgnResult
simulateMgn(const std::vector<int64_t>& serviceSamplesNs,
            const MgnConfig& cfg)
{
    const core::RunResult r =
        core::buildRunResult(simulateTimings(serviceSamplesNs, cfg),
                             false);
    MgnResult out;
    out.achievedQps = r.achievedQps;
    out.sojourn = r.latency.sojourn;
    out.queueing = r.latency.queueing;
    out.service = r.latency.service;
    return out;
}

double
mmnSojournP(double lambda, double mu, unsigned n)
{
    if (!(lambda > 0.0) || !(mu > 0.0) || n == 0)
        return std::numeric_limits<double>::quiet_NaN();
    const double a = lambda / mu;  // offered load, erlangs
    const double rho = a / static_cast<double>(n);
    if (rho >= 1.0)
        return std::numeric_limits<double>::infinity();
    // Erlang-B by its recurrence B(k) = a*B(k-1) / (k + a*B(k-1)),
    // then Erlang-C = B / (1 - rho*(1 - B)).
    double b = 1.0;
    for (unsigned k = 1; k <= n; k++)
        b = a * b / (static_cast<double>(k) + a * b);
    const double c = b / (1.0 - rho * (1.0 - b));
    return c / (static_cast<double>(n) * mu - lambda) + 1.0 / mu;
}

core::RunResult
EmpiricalQueueHarness::run(apps::App& app, const core::HarnessConfig& cfg)
{
    (void)app;
    MgnConfig qc;
    qc.lambda = cfg.qps;
    qc.servers = std::max(1u, cfg.workerThreads);
    qc.warmup = cfg.warmupRequests;
    qc.measured = cfg.measuredRequests;
    qc.seed = cfg.seed;
    qc.arrival = cfg.arrival;
    // Virtual-time arrivals never lag their own schedule, so no
    // genLag series; windows/SLO still apply.
    core::ResultOptions opts;
    opts.keepSamples = cfg.keepSamples;
    opts.windows = cfg.windows;
    opts.sloTargetNs = cfg.sloTargetNs;
    return core::buildRunResult(simulateTimings(samples_, qc), opts);
}

}  // namespace tb::queueing
