#ifndef TAILBENCH_SIM_SIM_HARNESS_H_
#define TAILBENCH_SIM_SIM_HARNESS_H_

/**
 * @file
 * Virtual-time simulation harness (the paper's simulated-machine
 * configuration, Sec. III-C / Table II).
 *
 * Event-driven and entirely in virtual nanoseconds: the same open-loop
 * Poisson arrival schedule as the integrated harness, dispatched FCFS
 * to workerThreads simulated cores (each request to the earliest-free
 * core), with per-request service times charged from the app's
 * deterministic cost model instead of executed on the wall clock. No
 * host time is read anywhere, so a (app, config, seed) triple yields
 * bit-identical results run after run and the multithreaded sweeps
 * (Fig. 4) are faithful even on small hosts.
 *
 * Timing model, driven by MachineConfig:
 *
 *   The app's model service time is defined on the *reference* machine
 *   (a default MachineConfig, one active core). Each request's
 *   simulated service time is the model draw scaled by the ratio of
 *   mean per-instruction cost on the simulated machine vs. the
 *   reference:
 *
 *     ns/instr = [baseCPI + branchMPKI/1000 * branchPenalty
 *                 + L1{i,d}MPKI/1000 * l2HitCycles
 *                 + L2MPKI/1000 * l3HitCycles] / freqGhz
 *               + L3MPKI_eff/1000 * dramLatency_eff
 *
 *   with the MPKI targets from AppProfile (Table I). Cycle-priced
 *   terms scale with DVFS (freqGhz); the DRAM term is wall-time and
 *   does not — which is exactly why memory-bound apps offer DVFS
 *   slack. idealMemory zeroes every term after baseCPI+branch (the
 *   Fig. 8 case-study mode). batchCorunners shrink the app's LLC
 *   share, inflating L3MPKI_eff (capped at the L3 access rate), and
 *   stream through DRAM: dramLatency_eff = dramLatency / (1 - rho)
 *   with rho the channel utilization from all active cores' miss
 *   traffic plus the corunners' streams against dramPeakGBs. The
 *   sleep-state model puts an idle core to sleep after sleepEntryNs
 *   and charges sleepWakeNs to the first request that wakes it.
 *
 * Everything the timing model charges accumulates into MachineStats
 * (instructions, cycles, per-level misses, wakeups) over the measured
 * window, readable via lastStats().
 */

#include <string>

#include "core/harness.h"
#include "sim/machine.h"

namespace tb::sim {

class SimHarness final : public core::Harness {
  public:
    SimHarness() = default;
    explicit SimHarness(const MachineConfig& machine)
        : machine_(machine)
    {
    }

    core::RunResult run(apps::App& app,
                        const core::HarnessConfig& cfg) override;

    std::string configName() const override { return "simulation"; }

    const MachineConfig& machine() const { return machine_; }

    /** Timing-model counters accumulated over the measured window of
     * the most recent run(). */
    const MachineStats& lastStats() const { return stats_; }

  private:
    MachineConfig machine_;
    MachineStats stats_;
};

/**
 * L3 MPKI after LLC capacity pressure from batch corunners: the app's
 * share of the LLC is llcMb/(1+batchCorunners), and the miss rate
 * grows with the square root of the capacity loss (the usual
 * rule-of-thumb shape of miss-rate-vs-capacity curves). Exposed for
 * tests.
 */
double effectiveL3Mpki(const MachineConfig& machine,
                       const apps::AppProfile& profile);

/**
 * Mean cost of one instruction of @p profile on @p machine, in
 * nanoseconds, with @p activeCores cores sharing DRAM bandwidth
 * alongside any batch corunners. The core of the timing model;
 * exposed for tests.
 */
double nsPerInstruction(const MachineConfig& machine,
                        const apps::AppProfile& profile,
                        unsigned activeCores);

}  // namespace tb::sim

#endif  // TAILBENCH_SIM_SIM_HARNESS_H_
