#include "core/transport.h"

namespace tb::core {

Transport::~Transport() = default;
ServerPort::~ServerPort() = default;

InProcessTransport::InProcessTransport() : port_(*this) {}

void
InProcessTransport::sendRequest(Request&& req)
{
    requests_.push(std::move(req));
}

bool
InProcessTransport::recvResponse(Response& out)
{
    return responses_.pop(out);
}

void
InProcessTransport::finishSend()
{
    requests_.close();
}

bool
InProcessTransport::Port::recvReq(Request& out)
{
    return owner_.requests_.pop(out);
}

void
InProcessTransport::Port::sendResp(Response&& resp)
{
    owner_.responses_.push(std::move(resp));
}

void
InProcessTransport::Port::closeResponses()
{
    owner_.responses_.close();
}

}  // namespace tb::core
