/** Unit tests: sim/trace_gen.{h,cc} — determinism of the generated
 * trace, fixed-point calibration accuracy against real app profiles,
 * and degenerate-profile handling (all-zero targets, non-monotone
 * MPKI chains). */

#include "sim/trace_gen.h"

#include <string>

#include "apps/common/app.h"

#include "tests/test_util.h"

using tb::apps::AppProfile;
using tb::sim::MeasuredMpki;
using tb::sim::measureTraceMpki;

namespace {

constexpr uint64_t kWarmKi = 300;
constexpr uint64_t kMeasKi = 800;

/** Acceptance band: ±25% of the target, with absolute slack for
 * targets too small to resolve at unit-test trace lengths. */
bool
nearTarget(double measured, double target)
{
    return std::fabs(measured - target) <=
        std::max(0.25 * target, 0.15);
}

void
testDeterminism()
{
    const AppProfile p =
        tb::apps::makeApp("masstree")->profile();
    const MeasuredMpki a = measureTraceMpki(p, 42, kWarmKi, kMeasKi);
    const MeasuredMpki b = measureTraceMpki(p, 42, kWarmKi, kMeasKi);
    // Bit-identical, not merely close: same seed, same trace, same
    // tag-array state transitions.
    CHECK_EQ(a.l1i, b.l1i);
    CHECK_EQ(a.l1d, b.l1d);
    CHECK_EQ(a.l2, b.l2);
    CHECK_EQ(a.l3, b.l3);
    CHECK_EQ(a.instructions, b.instructions);
    CHECK_EQ(a.iterations, b.iterations);
    CHECK_EQ(a.instructions, kMeasKi * 1000);
    // A different seed still measures the same profile: rates are
    // calibrated, so the MPKIs stay in the same band.
    const MeasuredMpki c = measureTraceMpki(p, 1234, kWarmKi, kMeasKi);
    CHECK(nearTarget(c.l1d, p.l1dMpki));
}

void
testCalibrationConvergesOnRealProfiles()
{
    // Three profiles spanning the suite's range: masstree
    // (data-heavy, big L3 rate), specjbb (code-heavy front end,
    // small L3 rate), silo (mid everything).
    for (const char* name : {"masstree", "specjbb", "silo"}) {
        const AppProfile p = tb::apps::makeApp(name)->profile();
        const MeasuredMpki m =
            measureTraceMpki(p, 42, kWarmKi, kMeasKi);
        std::printf("%-10s l1i %6.2f/%-6.2f l1d %6.2f/%-6.2f "
                    "l2 %6.2f/%-6.2f l3 %6.2f/%-6.2f iters=%d%s\n",
                    name, m.l1i, p.l1iMpki, m.l1d, p.l1dMpki, m.l2,
                    p.l2Mpki, m.l3, p.l3MpkiFull, m.iterations,
                    m.converged ? "" : " (!)");
        CHECK(nearTarget(m.l1i, p.l1iMpki));
        CHECK(nearTarget(m.l1d, p.l1dMpki));
        CHECK(nearTarget(m.l2, p.l2Mpki));
        CHECK(nearTarget(m.l3, p.l3MpkiFull));
        // Structural invariant regardless of calibration: misses can
        // only shrink walking away from the core.
        CHECK(m.l3 <= m.l2 + 1e-9);
        CHECK(m.l2 <= m.l1d + m.l1i + 1e-9);
    }
}

void
testAllZeroProfileTerminates()
{
    const AppProfile zero{};  // every MPKI target 0
    const MeasuredMpki m = measureTraceMpki(zero, 42, 50, 100);
    // Warns and skips calibration; the hot-only trace measures ~0
    // at every level (warmup absorbs the compulsory misses).
    CHECK(m.l1i <= 0.15);
    CHECK(m.l1d <= 0.15);
    CHECK(m.l2 <= 0.15);
    CHECK(m.l3 <= 0.15);
    CHECK(m.converged);
    CHECK_EQ(m.iterations, 0);
}

void
testNonMonotoneChainTerminates()
{
    // L3 target above L2: unreachable (an L3 miss IS an L2 miss).
    // Must warn, stay bounded, and land on the feasible projection
    // rather than looping toward the impossible target.
    AppProfile p{};
    p.l1iMpki = 1.0;
    p.l1dMpki = 4.0;
    p.l2Mpki = 2.0;
    p.l3MpkiFull = 8.0;
    const MeasuredMpki m = measureTraceMpki(p, 42, kWarmKi, kMeasKi);
    CHECK(m.iterations <= 10);
    CHECK(m.l3 <= m.l2 + 1e-9);
    // The feasible projection clamps L3 to the L2 target.
    CHECK(nearTarget(m.l3, p.l2Mpki));
}

void
testZeroWindowIsSafe()
{
    const AppProfile p = tb::apps::makeApp("silo")->profile();
    const MeasuredMpki m = measureTraceMpki(p, 42, 0, 0);
    CHECK_EQ(m.instructions, 0u);
    CHECK_EQ(m.l1d, 0.0);
}

}  // namespace

int
main()
{
    testDeterminism();
    testCalibrationConvergesOnRealProfiles();
    testAllZeroProfileTerminates();
    testNonMonotoneChainTerminates();
    testZeroWindowIsSafe();
    return TEST_MAIN_RESULT();
}
