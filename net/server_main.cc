/**
 * @file
 * Standalone TailBench server: the shared service loop behind a TCP
 * port, for driving the networked configuration from another process
 * or another machine (point the client at it with TAILBENCH_NET_HOST
 * / TAILBENCH_NET_PORT).
 *
 *   tb_net_server <app> [threads=1] [port=9960] [queue=single]
 *                 [io=threads]
 *
 * queue selects the request-dispatch policy behind the workers:
 * "single" (one shared queue), "sharded" (per-worker shards, batched
 * pop, connection-affine placement) or "steal" (sharded + work
 * stealing). Set TAILBENCH_PIN_WORKERS to pin worker w to CPU w.
 *
 * io selects the connection-IO backend: "threads" (one reader thread
 * per live connection) or "reactor" (fixed pool of epoll event loops;
 * TAILBENCH_REACTORS sizes it) — the knob behind fig10's
 * connection-scaling comparison.
 *
 * Dataset scale and seed come from TAILBENCH_SIZE / TAILBENCH_SEED —
 * they must match the client's settings or the request payloads will
 * not resolve against the server's dataset.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.h"
#include "net/server_harness.h"

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <app> [threads=1] [port=9960] "
                     "[queue=single|sharded|steal] "
                     "[io=threads|reactor]\n",
                     argv[0]);
        return 2;
    }
    const std::string app_name = argv[1];
    const unsigned threads = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2]))
        : 1;
    uint16_t port = 9960;
    if (argc > 3) {
        port = tb::net::parsePort(argv[3], "tb_net_server port");
        if (port == 0)
            return 2;
    }
    tb::core::PortOptions popts;
    if (argc > 4) {
        const std::string queue = argv[4];
        if (queue == "sharded")
            popts.policy = tb::core::QueuePolicy::kSharded;
        else if (queue == "steal")
            popts.policy = tb::core::QueuePolicy::kShardedSteal;
        else if (queue != "single") {
            std::fprintf(stderr,
                         "tb_net_server: unknown queue policy \"%s\" "
                         "(want single|sharded|steal)\n",
                         queue.c_str());
            return 2;
        }
    }
    // The positional arg wins over the environment so one shell can
    // run both backends side by side; TAILBENCH_REACTORS still sizes
    // the pool either way.
    tb::net::IoOptions io = tb::net::ioOptionsFromEnv();
    if (argc > 5) {
        const std::string mode = argv[5];
        if (mode == "reactor")
            io.mode = tb::net::IoMode::kReactor;
        else if (mode == "threads")
            io.mode = tb::net::IoMode::kThreads;
        else {
            std::fprintf(stderr,
                         "tb_net_server: unknown io mode \"%s\" "
                         "(want threads|reactor)\n",
                         mode.c_str());
            return 2;
        }
    }
    // Same strict TAILBENCH_SIZE/TAILBENCH_SEED parsing as the bench
    // drivers: the server's dataset must match the client's, so a
    // malformed value has to warn and keep the shared default here
    // too, not silently become 0 on one side of the connection.
    const tb::bench::BenchSettings bs =
        tb::bench::BenchSettings::fromEnv();
    tb::core::ServiceOptions sopts;
    sopts.pinWorkers = bs.pinWorkers;

    tb::apps::AppConfig cfg;
    cfg.sizeFactor = bs.sizeFactor;
    cfg.seed = bs.seed;

    auto app = tb::apps::makeApp(app_name);
    app->init(cfg);

    // Unlike the harness-internal per-run servers, the standalone
    // server exists to be reached from other hosts.
    tb::net::TcpServer server(*app, threads, port,
                              /*loopbackOnly=*/false, popts, sopts,
                              io);
    if (!server.listening()) {
        std::fprintf(stderr, "tb_net_server: cannot listen on port %u\n",
                     static_cast<unsigned>(port));
        return 1;
    }
    server.start();
    std::printf("tb_net_server: app=%s threads=%u port=%u queue=%s "
                "io=%s reactors=%u pinned=%u (sizeFactor=%.3g "
                "seed=%llu)\n",
                app_name.c_str(), threads,
                static_cast<unsigned>(server.port()),
                tb::core::queuePolicyName(popts.policy),
                tb::net::ioModeName(server.ioMode()),
                server.reactorCount(), server.pinnedWorkers(),
                cfg.sizeFactor,
                static_cast<unsigned long long>(cfg.seed));
    std::fflush(stdout);
    for (;;)
        ::pause();
}
