#ifndef TAILBENCH_CORE_REQUEST_QUEUE_H_
#define TAILBENCH_CORE_REQUEST_QUEUE_H_

/**
 * @file
 * The unbounded MPMC blocking queue the in-process transport is built
 * from: requests flow client -> service, responses flow service ->
 * client, both over the same primitive.
 *
 * Unbounded on purpose: a bounded queue would push back on the
 * generator and reintroduce the closed-loop coordination the open-loop
 * methodology exists to avoid. Memory is bounded in practice by run
 * length (measuredRequests).
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace tb::core {

/** One in-flight request. genNs is the scheduled generation time —
 * assigned by the open-loop generator before the send, never after. */
struct Request {
    uint64_t id = 0;
    std::string payload;
    int64_t genNs = 0;
    /**
     * Transport-private routing context, echoed verbatim into the
     * response by the service loop. Clients never set or read it; a
     * server-side transport uses it to route the response back to the
     * connection the request arrived on (ids alone cannot — separate
     * clients of one server generate overlapping ids). 0 for
     * transports with nothing to route (in-process).
     */
    uint64_t ctx = 0;
};

template <typename T>
class BlockingQueue {
  public:
    BlockingQueue() = default;
    BlockingQueue(const BlockingQueue&) = delete;
    BlockingQueue& operator=(const BlockingQueue&) = delete;

    /** Never blocks (unbounded). */
    void
    push(T&& item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            queue_.push_back(std::move(item));
        }
        cv_.notify_one();
    }

    /**
     * Blocks until an item is available or the queue is closed.
     * Returns false only when closed AND drained — consumers exit then.
     */
    bool
    pop(T& out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        return true;
    }

    /** Non-blocking pop: false when the queue is currently empty
     * (says nothing about closed state). */
    bool
    tryPop(T& out)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        return true;
    }

    /** After close(), pop() drains the backlog then returns false. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return queue_.size();
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> queue_;
    bool closed_ = false;
};

/** The generator -> worker request channel of the in-process
 * transport (and the server-side dispatch queue of the TCP server). */
using RequestQueue = BlockingQueue<Request>;

}  // namespace tb::core

#endif  // TAILBENCH_CORE_REQUEST_QUEUE_H_
