/** Unit tests: sim/sim_harness.cc virtual-time simulation — exact
 * reproducibility, and the timing model's response to idealMemory,
 * DVFS, corunners, and sleep states. */

#include "sim/sim_harness.h"

#include <string>

#include "core/methodology.h"

#include "tests/test_util.h"

using tb::apps::AppConfig;
using tb::apps::AppProfile;
using tb::apps::makeApp;
using tb::core::HarnessConfig;
using tb::core::RunResult;
using tb::sim::MachineConfig;
using tb::sim::MachineStats;
using tb::sim::SimHarness;

namespace {

std::unique_ptr<tb::apps::App>
makeTestApp(const std::string& name)
{
    auto app = makeApp(name);
    AppConfig cfg;
    cfg.seed = 42;
    cfg.sizeFactor = 0.25;
    app->init(cfg);
    return app;
}

HarnessConfig
runConfig(double qps, unsigned threads, uint64_t seed)
{
    HarnessConfig cfg;
    cfg.qps = qps;
    cfg.workerThreads = threads;
    cfg.warmupRequests = 100;
    cfg.measuredRequests = 2000;
    cfg.seed = seed;
    cfg.keepSamples = true;
    return cfg;
}

}  // namespace

int
main()
{
    auto app = makeTestApp("silo");
    SimHarness nominal;
    CHECK(nominal.configName() == std::string("simulation"));

    // Degenerate configs return an empty result.
    {
        HarnessConfig cfg;
        cfg.warmupRequests = 0;
        cfg.measuredRequests = 0;
        const RunResult r = nominal.run(*app, cfg);
        CHECK_EQ(r.latency.sojourn.count, static_cast<uint64_t>(0));
    }

    // Virtual-time saturation: for silo at sizeFactor 0.25 the model
    // mean service is ~10 us, so one simulated core saturates near
    // 100k qps. The estimate must not depend on host speed.
    const double sat = tb::core::estimateSaturationQps(
        nominal, *app, 1, 42, 400);
    CHECK(sat > 2e4);
    CHECK(sat < 1e6);

    // Exact reproducibility: identical (config, seed) gives
    // bit-identical latency summaries, samples, and machine counters.
    {
        const HarnessConfig cfg = runConfig(0.5 * sat, 2, 7);
        const RunResult a = nominal.run(*app, cfg);
        const MachineStats sa = nominal.lastStats();
        const RunResult b = nominal.run(*app, cfg);
        const MachineStats sb = nominal.lastStats();

        CHECK_EQ(a.achievedQps, b.achievedQps);
        CHECK_EQ(a.latency.sojourn.meanNs, b.latency.sojourn.meanNs);
        CHECK_EQ(a.latency.sojourn.p95Ns, b.latency.sojourn.p95Ns);
        CHECK_EQ(a.latency.sojourn.p99Ns, b.latency.sojourn.p99Ns);
        CHECK_EQ(a.latency.queueing.meanNs, b.latency.queueing.meanNs);
        CHECK_EQ(a.latency.service.meanNs, b.latency.service.meanNs);
        CHECK_EQ(a.samples.size(), b.samples.size());
        for (size_t i = 0; i < a.samples.size(); i++) {
            CHECK_EQ(a.samples[i].genNs, b.samples[i].genNs);
            CHECK_EQ(a.samples[i].startNs, b.samples[i].startNs);
            CHECK_EQ(a.samples[i].endNs, b.samples[i].endNs);
        }
        CHECK_EQ(sa.instructions, sb.instructions);
        CHECK_EQ(sa.cycles, sb.cycles);
        CHECK_EQ(sa.l3Misses, sb.l3Misses);
        CHECK_EQ(sa.sleepWakeups, sb.sleepWakeups);

        // Virtual time cannot lag; timestamps hold the invariants.
        CHECK_EQ(a.maxGenLagNs, static_cast<int64_t>(0));
        for (const auto& t : a.samples) {
            CHECK(t.startNs >= t.genNs);
            CHECK(t.serviceNs() > 0);
        }

        // Counters are plausible: instructions accumulate and every
        // cycle count exceeds the instruction count (CPI > 1 with
        // stalls priced in).
        CHECK(sa.instructions > 0);
        CHECK(sa.cycles > sa.instructions);
        CHECK(sa.mpki(sa.l3Misses) > 0.0);
    }

    // idealMemory strictly lowers mean service (zeroed stalls), and
    // the per-instruction model agrees for every app profile.
    {
        MachineConfig ideal;
        ideal.idealMemory = true;
        SimHarness h(ideal);
        const HarnessConfig cfg = runConfig(0.3 * sat, 1, 11);
        const RunResult full = nominal.run(*app, cfg);
        const RunResult fast = h.run(*app, cfg);
        CHECK(fast.latency.service.meanNs <
              full.latency.service.meanNs);
        // Even with stalls zeroed, CPI cannot drop below the base
        // CPI: counters stay consistent with the timing model.
        CHECK(h.lastStats().cycles >= h.lastStats().instructions);

        for (const std::string& name : tb::apps::appNames()) {
            const AppProfile p = makeApp(name)->profile();
            CHECK(tb::sim::nsPerInstruction(ideal, p, 1) <
                  tb::sim::nsPerInstruction(MachineConfig{}, p, 1));
        }
    }

    // DVFS: halving the clock strictly raises mean service, but by
    // less than 2x (the DRAM component does not scale with frequency).
    {
        MachineConfig slow;
        slow.freqGhz = 1.2;
        SimHarness h(slow);
        const HarnessConfig cfg = runConfig(0.2 * sat, 1, 13);
        const RunResult fast = nominal.run(*app, cfg);
        const RunResult halved = h.run(*app, cfg);
        CHECK(halved.latency.service.meanNs >
              fast.latency.service.meanNs);
        CHECK(halved.latency.service.meanNs <
              2.0 * fast.latency.service.meanNs);
    }

    // Batch corunners inflate the effective L3 MPKI and mean service.
    {
        MachineConfig crowded;
        crowded.batchCorunners = 4;
        SimHarness h(crowded);
        const HarnessConfig cfg = runConfig(0.2 * sat, 1, 17);
        const RunResult clean = nominal.run(*app, cfg);
        const RunResult shared = h.run(*app, cfg);
        CHECK(shared.latency.service.meanNs >
              clean.latency.service.meanNs);
        CHECK(tb::sim::effectiveL3Mpki(crowded, app->profile()) >
              app->profile().l3MpkiFull);
        // No pressure can create more L3 misses than L3 accesses
        // (= L2 misses), for any profile or corunner count.
        for (const std::string& name : tb::apps::appNames()) {
            const AppProfile p = makeApp(name)->profile();
            for (unsigned n : {1u, 2u, 4u, 6u, 16u}) {
                MachineConfig mc;
                mc.batchCorunners = n;
                CHECK(tb::sim::effectiveL3Mpki(mc, p) <= p.l2Mpki);
            }
        }
        CHECK(h.lastStats().l3Misses <= h.lastStats().l2Misses);
    }

    // Sleep states: the wake penalty appears at low load (long idle
    // gaps enter the deep state) and vanishes at high load (cores
    // never idle long enough).
    {
        const double mean_svc_ns = 1e9 / sat;
        MachineConfig sleepy;
        sleepy.sleepEntryNs = 5.0 * mean_svc_ns;
        sleepy.sleepWakeNs = 10.0 * mean_svc_ns;
        SimHarness h(sleepy);

        const HarnessConfig low = runConfig(0.01 * sat, 1, 19);
        const RunResult r_low = h.run(*app, low);
        const uint64_t wake_low = h.lastStats().sleepWakeups;

        const HarnessConfig high = runConfig(0.8 * sat, 1, 19);
        const RunResult r_high = h.run(*app, high);
        const uint64_t wake_high = h.lastStats().sleepWakeups;

        // At 1% load nearly every gap exceeds the entry threshold; at
        // 80% load almost none do.
        CHECK(wake_low > r_low.latency.sojourn.count / 2);
        CHECK(wake_high < r_high.latency.sojourn.count / 5);

        // The low-load median sojourn carries the wake transition.
        const RunResult r_ref = nominal.run(*app, low);
        CHECK(static_cast<double>(r_low.latency.sojourn.p50Ns) >
              static_cast<double>(r_ref.latency.sojourn.p50Ns) +
                  0.5 * sleepy.sleepWakeNs);

        // With the model disabled (default config) no wakeups accrue.
        nominal.run(*app, low);
        CHECK_EQ(nominal.lastStats().sleepWakeups,
                 static_cast<uint64_t>(0));
    }

    // Two simulated cores nearly double overload throughput (modest
    // SMP + bandwidth losses allowed).
    {
        HarnessConfig cfg = runConfig(20.0 * sat, 1, 23);
        const double one = nominal.run(*app, cfg).achievedQps;
        cfg.workerThreads = 2;
        const double two = nominal.run(*app, cfg).achievedQps;
        CHECK(two > 1.5 * one);
        CHECK(two < 2.2 * one);
    }

    return TEST_MAIN_RESULT();
}
