#ifndef TAILBENCH_CORE_REQUEST_QUEUE_H_
#define TAILBENCH_CORE_REQUEST_QUEUE_H_

/**
 * @file
 * The unbounded MPMC blocking queue the in-process transport is built
 * from: requests flow client -> service, responses flow service ->
 * client, both over the same primitive.
 *
 * Unbounded on purpose: a bounded queue would push back on the
 * generator and reintroduce the closed-loop coordination the open-loop
 * methodology exists to avoid. Memory is bounded in practice by run
 * length (measuredRequests).
 *
 * Lock invariant (compile-checked under -Wthread-safety, see
 * util/thread_annotations.h): queue_ and closed_ are readable and
 * writable only with mu_ held; cv_ signals "queue_ non-empty or
 * closed_", and every wait is the explicit re-check loop over exactly
 * that predicate.
 */

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace tb::core {

/** Outcome of a timed pop (BlockingQueue::popFor). */
enum class PopResult {
    kItem,     // an item was delivered
    kTimeout,  // queue stayed empty for the whole wait (not closed)
    kClosed,   // closed and drained — the consumer is done
};

/** One in-flight request. genNs is the scheduled generation time —
 * assigned by the open-loop generator before the send, never after. */
struct Request {
    uint64_t id = 0;
    std::string payload;
    int64_t genNs = 0;
    /**
     * Transport-private routing context, echoed verbatim into the
     * response by the service loop. Clients never set or read it; a
     * server-side transport uses it to route the response back to the
     * connection the request arrived on (ids alone cannot — separate
     * clients of one server generate overlapping ids). 0 for
     * transports with nothing to route (in-process).
     */
    uint64_t ctx = 0;
};

template <typename T>
class BlockingQueue {
  public:
    BlockingQueue() = default;
    BlockingQueue(const BlockingQueue&) = delete;
    BlockingQueue& operator=(const BlockingQueue&) = delete;

    /** Never blocks (unbounded). */
    void
    push(T&& item)
    {
        {
            util::MutexLock lock(mu_);
            queue_.push_back(std::move(item));
        }
        cv_.notifyOne();
    }

    /**
     * Blocks until an item is available or the queue is closed.
     * Returns false only when closed AND drained — consumers exit then.
     */
    bool
    pop(T& out)
    {
        util::MutexLock lock(mu_);
        while (queue_.empty() && !closed_)
            cv_.wait(lock);
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        return true;
    }

    /**
     * Timed pop: blocks up to @p d for an item. kTimeout keeps the
     * consumer's hands free to look elsewhere (work stealing) without
     * giving up on this queue.
     */
    PopResult
    popFor(T& out, std::chrono::nanoseconds d)
    {
        const auto deadline = std::chrono::steady_clock::now() + d;
        util::MutexLock lock(mu_);
        while (queue_.empty() && !closed_) {
            if (cv_.waitUntil(lock, deadline) ==
                std::cv_status::timeout)
                break;
        }
        if (!queue_.empty()) {
            out = std::move(queue_.front());
            queue_.pop_front();
            return PopResult::kItem;
        }
        return closed_ ? PopResult::kClosed : PopResult::kTimeout;
    }

    /**
     * Blocking batched pop: waits like pop(), then moves up to @p max
     * items under the one lock acquisition — consumers amortize the
     * wake/lock cost when a backlog exists. Appends to @p out and
     * returns the count appended; 0 only when closed AND drained.
     */
    size_t
    popBatch(std::vector<T>& out, size_t max)
    {
        if (max == 0)
            return 0;
        util::MutexLock lock(mu_);
        while (queue_.empty() && !closed_)
            cv_.wait(lock);
        size_t n = 0;
        while (!queue_.empty() && n < max) {
            out.push_back(std::move(queue_.front()));
            queue_.pop_front();
            n++;
        }
        return n;
    }

    /** Non-blocking pop: false when the queue is currently empty
     * (says nothing about closed state). */
    bool
    tryPop(T& out)
    {
        util::MutexLock lock(mu_);
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        return true;
    }

    /** Non-blocking batched pop: appends up to @p max items to @p out,
     * returns the count appended (0 when currently empty). */
    size_t
    tryPopBatch(std::vector<T>& out, size_t max)
    {
        util::MutexLock lock(mu_);
        size_t n = 0;
        while (!queue_.empty() && n < max) {
            out.push_back(std::move(queue_.front()));
            queue_.pop_front();
            n++;
        }
        return n;
    }

    /** After close(), pop() drains the backlog then returns false. */
    void
    close()
    {
        {
            util::MutexLock lock(mu_);
            closed_ = true;
        }
        cv_.notifyAll();
    }

    size_t
    size() const
    {
        util::MutexLock lock(mu_);
        return queue_.size();
    }

  private:
    mutable util::Mutex mu_;
    util::CondVar cv_;
    std::deque<T> queue_ TB_GUARDED_BY(mu_);
    bool closed_ TB_GUARDED_BY(mu_) = false;
};

/** The generator -> worker request channel of the in-process
 * transport (and the server-side dispatch queue of the TCP server). */
using RequestQueue = BlockingQueue<Request>;

}  // namespace tb::core

#endif  // TAILBENCH_CORE_REQUEST_QUEUE_H_
