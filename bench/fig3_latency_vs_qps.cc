/**
 * @file
 * Reproduces Fig. 3: mean, 95th-, and 99th-percentile sojourn latency for
 * each application across a range of request rates (single worker thread,
 * integrated configuration).
 *
 * Expected shape (paper Sec. V): hockey-stick growth with load; tail
 * latencies rise much faster than the mean; the tail/mean gap is larger
 * for apps with more variable service times.
 */

#include "bench/common.h"
#include "bench/sweep.h"
#include "core/integrated_harness.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 3: latency vs. QPS (1 worker, integrated config)");

    core::IntegratedHarness integrated;
    bench::SweepSpec spec;
    spec.key = "fig3";
    spec.apps = apps::appNames();
    spec.harnesses = {&integrated};
    spec.wide = true;
    spec.seedScale = 100;
    bench::runLatencySweep(spec, s);
    return 0;
}
