#include "core/harness.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace tb::core {

Harness::~Harness() = default;

namespace {

/** percentileOf's type-7 definition, but over an already-sorted
 * vector so one sort serves all three percentiles. */
int64_t
percentileSorted(const std::vector<int64_t>& sorted, double pct)
{
    const double rank = pct / 100.0 *
        static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    const double frac = rank - static_cast<double>(lo);
    return static_cast<int64_t>(std::llround(
        static_cast<double>(sorted[lo]) +
        frac * static_cast<double>(sorted[lo + 1] - sorted[lo])));
}

}  // namespace

LatencySummary
summarizeNs(const std::vector<int64_t>& samples)
{
    LatencySummary s;
    s.count = samples.size();
    if (samples.empty())
        return s;
    std::vector<int64_t> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    s.meanNs = util::meanOf(sorted);
    s.p50Ns = percentileSorted(sorted, 50.0);
    s.p95Ns = percentileSorted(sorted, 95.0);
    s.p99Ns = percentileSorted(sorted, 99.0);
    return s;
}

RunResult
buildRunResult(std::vector<RequestTiming>&& timings, bool keepSamples)
{
    RunResult r;
    if (timings.empty())
        return r;
    std::sort(timings.begin(), timings.end(),
              [](const RequestTiming& a, const RequestTiming& b) {
                  return a.genNs < b.genNs;
              });

    std::vector<int64_t> sojourn;
    std::vector<int64_t> queueing;
    std::vector<int64_t> service;
    sojourn.reserve(timings.size());
    queueing.reserve(timings.size());
    service.reserve(timings.size());
    int64_t last_end = timings.front().endNs;
    for (const RequestTiming& t : timings) {
        sojourn.push_back(t.sojournNs());
        queueing.push_back(t.queueNs());
        service.push_back(t.serviceNs());
        last_end = std::max(last_end, t.endNs);
    }
    r.latency.sojourn = summarizeNs(sojourn);
    r.latency.queueing = summarizeNs(queueing);
    r.latency.service = summarizeNs(service);

    // Span: first measured arrival to last measured completion. Under
    // overload completions stretch the span, so achieved < offered.
    const int64_t span = last_end - timings.front().genNs;
    if (span > 0)
        r.achievedQps = static_cast<double>(timings.size()) * 1e9 /
            static_cast<double>(span);

    if (keepSamples)
        r.samples = std::move(timings);
    return r;
}

}  // namespace tb::core
