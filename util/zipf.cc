#include "util/zipf.h"

#include <cmath>

namespace tb::util {

namespace {

/** zeta(n, theta) = sum_{i=1..n} 1/i^theta. Exact for small n; for
 * large n the tail beyond kExactTerms is approximated by the integral
 * of x^-theta (error < one term), which keeps construction O(1)-ish
 * even for 10^7-item keyspaces. */
constexpr uint64_t kExactTerms = 100000;

double
zeta(uint64_t n, double theta)
{
    double sum = 0.0;
    const uint64_t exact = n < kExactTerms ? n : kExactTerms;
    for (uint64_t i = 1; i <= exact; i++)
        sum += std::pow(static_cast<double>(i), -theta);
    if (n > exact) {
        // Integral of x^-theta from exact+0.5 to n+0.5 (midpoint rule).
        const double a = static_cast<double>(exact) + 0.5;
        const double b = static_cast<double>(n) + 0.5;
        sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
            (1.0 - theta);
    }
    return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n < 1 ? 1 : n), theta_(theta)
{
    zetan_ = zeta(n_, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
        (1.0 - zeta2 / zetan_);
}

uint64_t
ZipfianGenerator::next(Rng& rng) const
{
    if (n_ == 1)
        return 0;
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_ - 1) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace tb::util
