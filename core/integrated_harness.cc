#include "core/integrated_harness.h"

#include <thread>

#include "util/clock.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tb::core {

RunResult
IntegratedHarness::run(apps::App& app, const HarnessConfig& cfg)
{
    const uint64_t total = cfg.warmupRequests + cfg.measuredRequests;
    if (total == 0 || cfg.qps <= 0.0)
        return RunResult{};
    const unsigned workers = cfg.workerThreads == 0
        ? 1
        : cfg.workerThreads;

    RequestQueue queue;
    std::vector<std::vector<RequestTiming>> per_worker(workers);

    std::vector<std::thread> worker_threads;
    worker_threads.reserve(workers);
    for (unsigned w = 0; w < workers; w++) {
        worker_threads.emplace_back([&, w] {
            std::vector<RequestTiming>& local = per_worker[w];
            Request req;
            while (queue.pop(req)) {
                const int64_t start = util::monotonicNs();
                app.process(req.payload);
                const int64_t end = util::monotonicNs();
                if (req.id >= cfg.warmupRequests) {
                    RequestTiming t;
                    t.genNs = req.genNs;
                    t.startNs = start;
                    t.endNs = end;
                    local.push_back(t);
                }
            }
        });
    }

    // Open-loop generator (this thread): exponential interarrival gaps
    // laid out as an absolute schedule from the start time. genNs is
    // the *scheduled* arrival; sleepUntilNs returns immediately if the
    // generator has fallen behind, so the schedule never stretches to
    // accommodate a slow server.
    //
    // genRequest() runs on this critical path, so a slow generator can
    // fall behind its own schedule — shrinking the offered load below
    // nominal without any visible failure. Track the worst lag
    // (actual push vs. scheduled arrival) so runs where the generator
    // could not keep up are detectable instead of silently optimistic.
    int64_t max_lag_ns = 0;
    const double gap_mean_ns = 1e9 / cfg.qps;
    {
        util::Rng rng(cfg.seed);
        double next = static_cast<double>(util::monotonicNs()) + 1000.0;
        for (uint64_t i = 0; i < total; i++) {
            next += rng.nextExponential(gap_mean_ns);
            const int64_t scheduled = static_cast<int64_t>(next);
            Request req;
            req.id = i;
            req.payload = app.genRequest(rng);
            req.genNs = scheduled;
            util::sleepUntilNs(scheduled);
            const int64_t lag = util::monotonicNs() - scheduled;
            if (lag > max_lag_ns)
                max_lag_ns = lag;
            queue.push(std::move(req));
        }
    }
    queue.close();
    if (static_cast<double>(max_lag_ns) > gap_mean_ns)
        TB_LOG_WARN("open-loop generator fell %.1f us behind its "
                    "schedule (mean interarrival gap %.1f us): offered "
                    "load was below the nominal %.0f qps",
                    static_cast<double>(max_lag_ns) / 1e3,
                    gap_mean_ns / 1e3, cfg.qps);
    for (std::thread& t : worker_threads)
        t.join();

    std::vector<RequestTiming> all;
    all.reserve(cfg.measuredRequests);
    for (std::vector<RequestTiming>& v : per_worker)
        all.insert(all.end(), v.begin(), v.end());
    RunResult result = buildRunResult(std::move(all), cfg.keepSamples);
    result.maxGenLagNs = max_lag_ns;
    TB_LOG_DEBUG("integrated run: app=%s offered=%.0f qps achieved=%.0f "
                 "qps threads=%u measured=%llu p95=%.3f ms",
                 app.name().c_str(), cfg.qps, result.achievedQps,
                 workers,
                 static_cast<unsigned long long>(
                     result.latency.sojourn.count),
                 static_cast<double>(result.latency.sojourn.p95Ns) /
                     1e6);
    return result;
}

}  // namespace tb::core
