#ifndef TAILBENCH_CORE_REQUEST_QUEUE_H_
#define TAILBENCH_CORE_REQUEST_QUEUE_H_

/**
 * @file
 * The unbounded MPMC blocking queue the in-process transport is built
 * from: requests flow client -> service, responses flow service ->
 * client, both over the same primitive.
 *
 * Unbounded on purpose: a bounded queue would push back on the
 * generator and reintroduce the closed-loop coordination the open-loop
 * methodology exists to avoid. Memory is bounded in practice by run
 * length (measuredRequests).
 *
 * Hot-path shape (the PR-9 fast path):
 *
 *   storage   one std::vector plus a consumed-prefix index (head_)
 *             instead of std::deque — a deque allocates a node every
 *             few elements, which alone breaks the zero-allocation
 *             steady state. The vector's capacity is retained across
 *             drain cycles (clear-on-empty), and a long-lived consumed
 *             prefix is compacted amortized-O(1) on the push side.
 *   notify    gated on the waiter count, not fired per push: a
 *             condvar notify with nobody waiting is a wasted futex
 *             syscall on every single request at load. waiters_ counts
 *             threads inside a cv wait; pushes notify only when it is
 *             nonzero. This is strictly safer than the naive
 *             "notify on empty->nonempty transition", which strands a
 *             second waiter when two pushes race one wakeup (the
 *             regression test in tests/test_queue.cc pins this down).
 *   batching  pushBatch moves N items under one lock acquisition and
 *             fires at most one notify; popAll swaps the entire
 *             backlog out in O(1) when the consumed prefix is empty.
 *
 * Lock invariant (compile-checked under -Wthread-safety, see
 * util/thread_annotations.h): queue_, head_, waiters_ and closed_ are
 * readable and writable only with mu_ held; cv_ signals "pending item
 * or closed", and every wait is the explicit re-check loop over
 * exactly that predicate with waiters_ bumped around the wait.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/alloc_probe.h"
#include "util/arena.h"
#include "util/mutex.h"

namespace tb::core {

/** Outcome of a timed pop (BlockingQueue::popFor). */
enum class PopResult {
    kItem,     // an item was delivered
    kTimeout,  // queue stayed empty for the whole wait (not closed)
    kClosed,   // closed and drained — the consumer is done
};

/** One in-flight request. genNs is the scheduled generation time —
 * assigned by the open-loop generator before the send, never after.
 * The payload is a util::PayloadRef: arena-backed on the reactor hot
 * path, an owning string everywhere else (string assignment keeps
 * working — the in-process and threads backends are unchanged). */
struct Request {
    uint64_t id = 0;
    util::PayloadRef payload;
    int64_t genNs = 0;
    /**
     * Transport-private routing context, echoed verbatim into the
     * response by the service loop. Clients never set or read it; a
     * server-side transport uses it to route the response back to the
     * connection the request arrived on (ids alone cannot — separate
     * clients of one server generate overlapping ids). 0 for
     * transports with nothing to route (in-process).
     */
    uint64_t ctx = 0;
};

template <typename T>
class BlockingQueue {
  public:
    BlockingQueue() = default;
    BlockingQueue(const BlockingQueue&) = delete;
    BlockingQueue& operator=(const BlockingQueue&) = delete;

    /** Never blocks (unbounded). */
    void
    push(T&& item)
    {
        bool wake;
        {
            util::MutexLock lock(mu_);
            compactLocked();
            queue_.push_back(std::move(item));
            wake = waiters_ > 0;
        }
        if (wake)
            notifyOne();
    }

    /**
     * Moves @p n items into the queue under ONE lock acquisition with
     * at most one notify — the producer-side half of the batched hand-
     * off (a reactor read event delivers its whole frame batch here).
     */
    void
    pushBatch(T* items, size_t n)
    {
        if (n == 0)
            return;
        size_t waiting;
        {
            util::MutexLock lock(mu_);
            compactLocked();
            queue_.reserve(queue_.size() + n);
            for (size_t i = 0; i < n; i++)
                queue_.push_back(std::move(items[i]));
            waiting = waiters_;
        }
        if (waiting == 0)
            return;
        // With several consumers parked and several items landed, one
        // wake would leave work sitting next to idle consumers; a
        // single item (or single waiter) needs only one.
        if (n == 1 || waiting == 1)
            notifyOne();
        else
            notifyAll();
    }

    /** pushBatch from a vector; the vector is emptied (elements moved
     * out), with its capacity retained for the caller's reuse. */
    void
    pushBatch(std::vector<T>& items)
    {
        pushBatch(items.data(), items.size());
        items.clear();
    }

    /**
     * Blocks until an item is available or the queue is closed.
     * Returns false only when closed AND drained — consumers exit then.
     */
    bool
    pop(T& out)
    {
        util::MutexLock lock(mu_);
        while (pendingLocked() == 0 && !closed_) {
            waiters_++;
            cv_.wait(lock);
            waiters_--;
        }
        if (pendingLocked() == 0)
            return false;
        takeFrontLocked(out);
        return true;
    }

    /**
     * Timed pop: blocks up to @p d for an item. kTimeout keeps the
     * consumer's hands free to look elsewhere (work stealing) without
     * giving up on this queue.
     */
    PopResult
    popFor(T& out, std::chrono::nanoseconds d)
    {
        const auto deadline = std::chrono::steady_clock::now() + d;
        util::MutexLock lock(mu_);
        while (pendingLocked() == 0 && !closed_) {
            waiters_++;
            const std::cv_status st = cv_.waitUntil(lock, deadline);
            waiters_--;
            if (st == std::cv_status::timeout)
                break;
        }
        if (pendingLocked() != 0) {
            takeFrontLocked(out);
            return PopResult::kItem;
        }
        return closed_ ? PopResult::kClosed : PopResult::kTimeout;
    }

    /**
     * Blocking batched pop: waits like pop(), then moves up to @p max
     * items under the one lock acquisition — consumers amortize the
     * wake/lock cost when a backlog exists. Appends to @p out and
     * returns the count appended; 0 only when closed AND drained.
     */
    size_t
    popBatch(std::vector<T>& out, size_t max)
    {
        if (max == 0)
            return 0;
        util::MutexLock lock(mu_);
        while (pendingLocked() == 0 && !closed_) {
            waiters_++;
            cv_.wait(lock);
            waiters_--;
        }
        const size_t n = std::min(max, pendingLocked());
        out.reserve(out.size() + n);
        for (size_t i = 0; i < n; i++) {
            out.push_back(std::move(queue_[head_]));
            head_++;
        }
        resetIfDrainedLocked();
        return n;
    }

    /**
     * Blocking whole-backlog pop: waits like pop(), then takes
     * EVERYTHING — by an O(1) vector swap when the consumed prefix is
     * empty (the steady state: @p out comes back empty each round, so
     * the two vectors' capacities ping-pong with zero allocation).
     * @p out is cleared first. Returns the count; 0 only when closed
     * AND drained.
     */
    size_t
    popAll(std::vector<T>& out)
    {
        out.clear();
        util::MutexLock lock(mu_);
        while (pendingLocked() == 0 && !closed_) {
            waiters_++;
            cv_.wait(lock);
            waiters_--;
        }
        const size_t n = pendingLocked();
        if (n == 0)
            return 0;
        if (head_ == 0) {
            queue_.swap(out);
        } else {
            out.reserve(n);
            for (size_t i = head_; i < queue_.size(); i++)
                out.push_back(std::move(queue_[i]));
            queue_.clear();
            head_ = 0;
        }
        return n;
    }

    /** Non-blocking pop: false when the queue is currently empty
     * (says nothing about closed state). */
    bool
    tryPop(T& out)
    {
        util::MutexLock lock(mu_);
        if (pendingLocked() == 0)
            return false;
        takeFrontLocked(out);
        return true;
    }

    /** Non-blocking batched pop: appends up to @p max items to @p out,
     * returns the count appended (0 when currently empty). */
    size_t
    tryPopBatch(std::vector<T>& out, size_t max)
    {
        util::MutexLock lock(mu_);
        const size_t n = std::min(max, pendingLocked());
        if (n == 0)
            return 0;
        out.reserve(out.size() + n);
        for (size_t i = 0; i < n; i++) {
            out.push_back(std::move(queue_[head_]));
            head_++;
        }
        resetIfDrainedLocked();
        return n;
    }

    /** After close(), pop() drains the backlog then returns false. */
    void
    close()
    {
        {
            util::MutexLock lock(mu_);
            closed_ = true;
        }
        // Shutdown path, not the hot path: wake everyone
        // unconditionally (and don't count it as a hot-path notify).
        cv_.notifyAll();
    }

    size_t
    size() const
    {
        util::MutexLock lock(mu_);
        return pendingLocked();
    }

  private:
    size_t
    pendingLocked() const TB_REQUIRES(mu_)
    {
        return queue_.size() - head_;
    }

    void
    takeFrontLocked(T& out) TB_REQUIRES(mu_)
    {
        out = std::move(queue_[head_]);
        head_++;
        resetIfDrainedLocked();
    }

    /** Drained: drop every (already moved-from) element but keep the
     * vector's capacity for the next burst. */
    void
    resetIfDrainedLocked() TB_REQUIRES(mu_)
    {
        if (head_ == queue_.size()) {
            queue_.clear();
            head_ = 0;
        }
    }

    /**
     * Amortized compaction of a long-lived consumed prefix (a queue
     * that never fully drains would otherwise grow without bound).
     * The half-size trigger makes the erase cost O(1) amortized per
     * element pushed.
     */
    void
    compactLocked() TB_REQUIRES(mu_)
    {
        if (head_ > kCompactMin && head_ * 2 >= queue_.size()) {
            queue_.erase(queue_.begin(),
                         queue_.begin() +
                             static_cast<ptrdiff_t>(head_));
            head_ = 0;
        }
    }

    void
    notifyOne()
    {
        util::probe::add(util::probe::kQueueNotifies);
        cv_.notifyOne();
    }

    void
    notifyAll()
    {
        util::probe::add(util::probe::kQueueNotifies);
        cv_.notifyAll();
    }

    static constexpr size_t kCompactMin = 1024;

    mutable util::Mutex mu_;
    util::CondVar cv_;
    std::vector<T> queue_ TB_GUARDED_BY(mu_);
    size_t head_ TB_GUARDED_BY(mu_) = 0;
    size_t waiters_ TB_GUARDED_BY(mu_) = 0;
    bool closed_ TB_GUARDED_BY(mu_) = false;
};

/** The generator -> worker request channel of the in-process
 * transport (and the server-side dispatch queue of the TCP server). */
using RequestQueue = BlockingQueue<Request>;

}  // namespace tb::core

#endif  // TAILBENCH_CORE_REQUEST_QUEUE_H_
