/**
 * @file
 * In-process synthetic kernels for the eight TailBench workloads.
 *
 * Each app is the same machine with different parameters: a
 * deterministic per-request service-time model (so the same seed
 * reproduces the same distribution, Table I's short/long and
 * light/heavy-tailed taxonomy) and a work kernel that spends that time
 * doing real memory/compute work against a dataset built at init():
 *
 *   kTree     B+ tree point lookups (silo, masstree, specjbb)
 *   kScan     B+ tree short range scans (shore)
 *   kSearch   posting-list walks over a packed corpus (xapian, sphinx)
 *   kCompute  dense float multiply-accumulate (moses, img-dnn)
 *
 * Service model: lognormal(mean, sigma) with an optional heavy-tail
 * mixture (probability tailProb of a tailMult-times-longer request),
 * sampled by hashing the request payload with the app seed. Means
 * scale with AppConfig::sizeFactor, mirroring how the real apps' costs
 * track dataset size.
 */

#include "apps/common/workloads.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "apps/common/bptree.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace tb::apps {

namespace {

enum class WorkKind { kTree, kScan, kSearch, kCompute };

struct Spec {
    const char* name;
    WorkKind kind;
    /** Service model (mean/sigma/tail) and MPKI targets; the model
     * mean at sizeFactor = 1.0 is profile.meanServiceUs. */
    AppProfile profile;
};

/** Table I order. MPKI columns are the paper's zsim measurements
 * (targets for the future cache-hierarchy simulator); meanUs/sigma/
 * tailP/tailM implement the short/long, light/heavy-tailed taxonomy. */
const Spec kSpecs[] = {
    // name       kind                l1i    l1d    l2     l3     br    meanUs  sigma tailP tailM
    {"xapian",    WorkKind::kSearch,  {11.2,  6.4,  2.2,  0.02,  6.4,   500.0, 0.90, 0.00, 1.0}},
    {"masstree",  WorkKind::kTree,    { 0.3, 24.3, 16.6,  8.70,  2.5,   120.0, 0.10, 0.00, 1.0}},
    {"moses",     WorkKind::kCompute, {12.4, 24.9, 22.6, 19.95,  4.9,   600.0, 0.85, 0.00, 1.0}},
    {"sphinx",    WorkKind::kSearch,  { 2.8, 19.3, 14.1,  9.70,  5.9,  4000.0, 1.00, 0.00, 1.0}},
    {"img-dnn",   WorkKind::kCompute, { 0.1, 28.5, 21.2,  1.50,  1.0,   500.0, 0.08, 0.00, 1.0}},
    {"specjbb",   WorkKind::kTree,    {17.2, 10.3,  4.1,  0.90,  4.2,    60.0, 0.25, 0.04, 6.0}},
    {"silo",      WorkKind::kTree,    { 4.9, 10.5,  4.6,  2.70,  2.9,    40.0, 0.30, 0.02, 8.0}},
    {"shore",     WorkKind::kScan,    {14.2, 12.7,  7.9,  3.10,  6.1,   400.0, 0.30, 0.05, 5.0}},
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

/** FNV-1a over the payload bytes. */
uint64_t
fnv1a(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

class SyntheticApp final : public App {
  public:
    SyntheticApp(const Spec& spec, size_t spec_index)
        : spec_(spec), spec_index_(spec_index), name_(spec.name)
    {
    }

    const std::string& name() const override { return name_; }

    void
    init(const AppConfig& cfg) override
    {
        cfg_ = cfg;
        if (cfg_.sizeFactor < 0.01)
            cfg_.sizeFactor = 0.01;
        hash_seed_ = util::mix64(cfg_.seed, 0x7ab1e5 + spec_index_);
        mean_ns_ = spec_.profile.meanServiceUs * 1000.0 *
            cfg_.sizeFactor;

        switch (spec_.kind) {
        case WorkKind::kTree:
        case WorkKind::kScan:
            num_keys_ = scaled(200000, 1000);
            for (uint64_t i = 0; i < num_keys_; i++)
                tree_.insert(keyAt(i), util::mix64(i, hash_seed_));
            zipf_ = std::make_unique<util::ZipfianGenerator>(num_keys_,
                                                             0.99);
            break;
        case WorkKind::kSearch: {
            corpus_.resize(scaled(2000000, 10000));
            util::Rng rng(hash_seed_);
            for (auto& w : corpus_)
                w = static_cast<uint32_t>(rng.next());
            zipf_ = std::make_unique<util::ZipfianGenerator>(
                corpus_.size(), 0.99);
            break;
        }
        case WorkKind::kCompute: {
            weights_.resize(scaled(1000000, 10000));
            util::Rng rng(hash_seed_);
            for (auto& w : weights_)
                w = static_cast<float>(rng.nextDouble()) - 0.5f;
            break;
        }
        }
    }

    std::string
    genRequest(util::Rng& rng) override
    {
        char buf[64];
        const uint64_t nonce = rng.next();
        switch (spec_.kind) {
        case WorkKind::kTree:
            std::snprintf(buf, sizeof(buf), "get %llu %llx",
                          static_cast<unsigned long long>(
                              keyAt(zipf_->next(rng))),
                          static_cast<unsigned long long>(nonce));
            break;
        case WorkKind::kScan:
            std::snprintf(buf, sizeof(buf), "scan %llu %llx",
                          static_cast<unsigned long long>(
                              keyAt(zipf_->next(rng))),
                          static_cast<unsigned long long>(nonce));
            break;
        case WorkKind::kSearch:
            std::snprintf(buf, sizeof(buf), "q %llu %llu %llx",
                          static_cast<unsigned long long>(
                              zipf_->next(rng)),
                          static_cast<unsigned long long>(
                              zipf_->next(rng)),
                          static_cast<unsigned long long>(nonce));
            break;
        case WorkKind::kCompute:
            std::snprintf(buf, sizeof(buf), "x %llx",
                          static_cast<unsigned long long>(nonce));
            break;
        }
        return buf;
    }

    uint64_t
    process(std::string_view request) override
    {
        const uint64_t h = fnv1a(request) ^ hash_seed_;
        const int64_t target = sampleServiceNs(h);
        uint64_t checksum = 0;
        uint64_t iter = 0;
        if (realtime_io_) {
            const int64_t deadline = util::monotonicNs() + target;
            do {
                checksum += workChunk(request, h, iter++);
            } while (util::monotonicNs() < deadline);
        } else {
            // Fixed work proportional to the model service time; used
            // by microbenchmarks to measure pure compute cost.
            const uint64_t chunks = std::max<int64_t>(
                1, target / kChunkApproxNs);
            for (uint64_t i = 0; i < chunks; i++)
                checksum += workChunk(request, h, iter++);
        }
        return checksum;
    }

    int64_t
    serviceNsFor(std::string_view request) const override
    {
        return sampleServiceNs(fnv1a(request) ^ hash_seed_);
    }

    AppProfile profile() const override { return spec_.profile; }

  private:
    /** Rough per-chunk cost used when realtime pacing is off. */
    static constexpr int64_t kChunkApproxNs = 500;

    uint64_t
    scaled(uint64_t base, uint64_t floor) const
    {
        const uint64_t n = static_cast<uint64_t>(
            static_cast<double>(base) * cfg_.sizeFactor);
        return std::max(n, floor);
    }

    /** Popular ranks map to scattered keys so hot keys do not share
     * tree nodes. */
    uint64_t
    keyAt(uint64_t rank) const
    {
        return util::mix64(rank, 0x5eedu);
    }

    /**
     * Deterministic service-time draw for request hash @p h:
     * lognormal body (mean mean_ns_, shape sigma) plus the optional
     * heavy-tail mixture. The hash seeds a throwaway Rng, so the draw
     * is a pure function of (payload, app seed).
     * exp(sigma*n - sigma^2/2) keeps the mean at mean_ns_ independent
     * of sigma.
     */
    int64_t
    sampleServiceNs(uint64_t h) const
    {
        util::Rng rng(h);
        const double n = rng.nextGaussian();
        const double u = rng.nextDouble();
        const double sigma = spec_.profile.serviceSigma;
        double svc = mean_ns_ * std::exp(sigma * n - 0.5 * sigma * sigma);
        if (u < spec_.profile.tailProb)
            svc *= spec_.profile.tailMult;
        svc = std::min(std::max(svc, 500.0), 1e10);
        return static_cast<int64_t>(svc);
    }

    /** ~0.5 us of kind-specific work; read-only on the dataset. */
    uint64_t
    workChunk(std::string_view request, uint64_t h, uint64_t iter)
    {
        uint64_t acc = 0;
        switch (spec_.kind) {
        case WorkKind::kTree: {
            // First probe uses the request's own (Zipfian) key; the
            // rest fan out deterministically.
            for (int j = 0; j < 4; j++) {
                const uint64_t key = j == 0 && iter == 0
                    ? parseKey(request)
                    : keyAt(util::mix64(h, iter * 4 + j) % num_keys_);
                if (const uint64_t* v = tree_.find(key))
                    acc += *v;
            }
            break;
        }
        case WorkKind::kScan: {
            const uint64_t start = iter == 0
                ? parseKey(request)
                : keyAt(util::mix64(h, iter) % num_keys_);
            tree_.scanFrom(start, 16,
                           [&acc](uint64_t k, uint64_t v) {
                               acc += k ^ v;
                           });
            break;
        }
        case WorkKind::kSearch: {
            const size_t off = util::mix64(h, iter) %
                (corpus_.size() - std::min<size_t>(corpus_.size() - 1,
                                                   128));
            for (size_t i = 0; i < 128 && off + i < corpus_.size(); i++)
                acc += corpus_[off + i];
            break;
        }
        case WorkKind::kCompute: {
            const size_t off = util::mix64(h, iter) %
                (weights_.size() - std::min<size_t>(weights_.size() - 1,
                                                    128));
            float dot = 0.0f;
            for (size_t i = 0; i < 128 && off + i < weights_.size(); i++)
                dot += weights_[off + i] * weights_[off + i];
            acc += static_cast<uint64_t>(dot * 1024.0f);
            break;
        }
        }
        return acc;
    }

    /** Bounded manual decimal parse of the key after the first space:
     * arena-backed payload views are not NUL-terminated, so
     * strtoull-style c_str() parsing is off the table here. */
    static uint64_t
    parseKey(std::string_view request)
    {
        const size_t sp = request.find(' ');
        if (sp == std::string_view::npos)
            return 0;
        uint64_t key = 0;
        for (size_t i = sp + 1; i < request.size(); i++) {
            const char c = request[i];
            if (c < '0' || c > '9')
                break;
            key = key * 10 + static_cast<uint64_t>(c - '0');
        }
        return key;
    }

    const Spec& spec_;
    const size_t spec_index_;
    const std::string name_;
    AppConfig cfg_;
    uint64_t hash_seed_ = 0;
    double mean_ns_ = 0.0;
    uint64_t num_keys_ = 0;
    BPlusTree<uint64_t> tree_;
    std::vector<uint32_t> corpus_;
    std::vector<float> weights_;
    std::unique_ptr<util::ZipfianGenerator> zipf_;
};

}  // namespace

const std::vector<std::string>&
syntheticAppNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Spec& s : kSpecs)
            v.emplace_back(s.name);
        return v;
    }();
    return names;
}

std::unique_ptr<App>
makeSyntheticApp(const std::string& name)
{
    for (size_t i = 0; i < kNumSpecs; i++) {
        if (name == kSpecs[i].name)
            return std::make_unique<SyntheticApp>(kSpecs[i], i);
    }
    return nullptr;
}

}  // namespace tb::apps
