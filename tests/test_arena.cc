/** Unit tests: util/arena.h — PayloadRef semantics (owning and
 * arena-backed), chunk epoch recycling, and a multi-threaded
 * producer/consumer stress that the sanitizer legs turn into a
 * use-after-free / race detector for the refcount protocol. */

#include "util/arena.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/request_queue.h"
#include "tests/test_util.h"

using tb::core::BlockingQueue;
using tb::util::PayloadArena;
using tb::util::PayloadRef;

int
main()
{
    // Owning mode: string assignment, comparison, copy, move. The
    // SSO-move case is the historical trap — view() must read through
    // the string after a move, never a cached pointer.
    {
        PayloadRef p;
        CHECK(p.empty());
        CHECK(!p.arenaBacked());
        p = "short";  // SSO-sized
        CHECK(p == "short");
        CHECK_EQ(p.size(), static_cast<size_t>(5));
        PayloadRef q = std::move(p);
        CHECK(q == "short");  // view valid after the SSO move
        PayloadRef r = q;     // copy
        CHECK(r == q);
        r = std::string(100, 'x');  // heap-sized
        PayloadRef s = std::move(r);
        CHECK_EQ(s.size(), static_cast<size_t>(100));
        CHECK(s.view()[99] == 'x');
        s.assign(3, 'y');
        CHECK(s == "yyy");
    }

    // Arena round trip: stored bytes match, refs are arena-backed,
    // copies share the chunk, and content survives the producer
    // moving on to later payloads.
    {
        PayloadArena arena(4096);
        std::vector<PayloadRef> refs;
        for (int i = 0; i < 100; i++) {
            const std::string want =
                "payload-" + std::to_string(i) +
                std::string(40, static_cast<char>('a' + i % 26));
            PayloadRef ref = arena.store(want);
            CHECK(ref.arenaBacked());
            CHECK(ref == want);
            refs.push_back(ref);    // copy: bumps the chunk refcount
            CHECK(refs.back() == want);
        }
        for (int i = 0; i < 100; i++) {
            const std::string want =
                "payload-" + std::to_string(i) +
                std::string(40, static_cast<char>('a' + i % 26));
            CHECK(refs[static_cast<size_t>(i)] == want);
        }
    }

    // Oversize payloads fall back to owning mode — correct, never a
    // dangling view into a chunk that cannot hold them.
    {
        PayloadArena arena(256);
        const std::string big(1000, 'z');
        PayloadRef ref = arena.store(big);
        CHECK(!ref.arenaBacked());
        CHECK(ref == big);
    }

    // Epoch recycling: with refs released promptly, a long run must
    // cycle a bounded chunk set instead of allocating per epoch.
    {
        PayloadArena arena(1024);
        const std::string payload(100, 'p');  // ~10 payloads per chunk
        for (int i = 0; i < 5000; i++) {
            PayloadRef ref = arena.store(payload);
            CHECK(ref.view().size() == payload.size());
            // ref dies here -> chunk drains -> free list
        }
        CHECK(arena.chunkRecycles() > 0);
        // Every full chunk must have been recycled rather than
        // replaced: with at most one chunk in flight, the steady
        // state needs only a couple of distinct chunks ever.
        CHECK(arena.chunksAllocated() <= 4);
    }

    // Producer/consumer stress through the real request channel: one
    // producer storing arena payloads into a BlockingQueue, two
    // consumers verifying content and dropping the refs. Under
    // ASan/TSan this is the proof the refcount hand-off never frees a
    // chunk with readers left, and never leaks one either.
    {
        PayloadArena arena(2048);
        BlockingQueue<PayloadRef> q;
        constexpr int kItems = 20000;
        std::atomic<int> bad{0};
        std::vector<std::thread> consumers;
        for (int c = 0; c < 2; c++) {
            consumers.emplace_back([&] {
                PayloadRef ref;
                while (q.pop(ref)) {
                    const std::string_view v = ref.view();
                    // Payload format: 64 copies of one letter.
                    if (v.size() != 64)
                        bad++;
                    else
                        for (const char ch : v)
                            if (ch != v[0])
                                bad++;
                    ref = PayloadRef();  // release before next pop
                }
            });
        }
        for (int i = 0; i < kItems; i++) {
            const std::string payload(
                64, static_cast<char>('a' + i % 26));
            q.push(arena.store(payload));
        }
        q.close();
        for (auto& t : consumers)
            t.join();
        CHECK_EQ(bad.load(), 0);
        CHECK(arena.chunkRecycles() > 0);
    }

    return TEST_MAIN_RESULT();
}
