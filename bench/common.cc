#include "bench/common.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/methodology.h"
#include "util/alloc_probe.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stats.h"

namespace tb::bench {

namespace {

// Arrival/SLO/window knobs, parsed once and shared by every
// measureAt call site: setting TAILBENCH_ARRIVAL=bursts (or an SLO
// target) reshapes every existing driver without per-driver plumbing.
const core::ArrivalSpec&
envArrival()
{
    static const core::ArrivalSpec spec = core::ArrivalSpec::fromEnv();
    return spec;
}

int64_t
envSloTargetNs()
{
    static const int64_t ns = static_cast<int64_t>(
        util::envPositiveDouble("TAILBENCH_SLO_MS", 0.0) * 1e6);
    return ns;
}

unsigned
envWindows()
{
    static const unsigned w = static_cast<unsigned>(
        util::envU64("TAILBENCH_WINDOWS", 0, 0, 256));
    return w;
}

}  // namespace

BenchSettings
BenchSettings::fromEnv()
{
    // All four knobs go through the blessed env seam (util/env.h),
    // which owns the strict warn-and-default parsing these knobs
    // pioneered: a malformed TAILBENCH_SIZE must not coerce to 0 and
    // silently degenerate every app's dataset.
    BenchSettings s;
    s.sizeFactor = util::envPositiveDouble("TAILBENCH_SIZE",
                                           s.sizeFactor);
    s.fast = util::envFlag("TAILBENCH_FAST");
    s.pinWorkers = util::envFlag("TAILBENCH_PIN_WORKERS");
    s.seed = util::envU64("TAILBENCH_SEED", s.seed);
    s.arrival = envArrival();
    s.sloTargetNs = envSloTargetNs();
    s.windows = envWindows();
    // Every driver funnels through here, so this is where
    // TAILBENCH_ALLOC_PROBE arms the hot-path counters.
    util::probe::initFromEnv();
    return s;
}

std::unique_ptr<apps::App>
makeBenchApp(const std::string& name, const BenchSettings& s)
{
    auto app = apps::makeApp(name);
    apps::AppConfig cfg;
    cfg.seed = s.seed;
    cfg.sizeFactor = s.sizeFactor;
    app->init(cfg);
    return app;
}

uint64_t
requestBudget(const std::string& app, const BenchSettings& s)
{
    // Budgets tuned so a single point takes single-digit seconds on a
    // small host; tail percentiles remain stable at these counts.
    // Short-request apps get large budgets for a second reason: their
    // measurement window must be long in *wall-clock* terms, or a
    // single scheduler preemption of the worker (~10 ms on a shared
    // host) overlaps a big fraction of the run and lands squarely in
    // the p95 (the "performance hysteresis" class of pitfall the
    // paper's methodology ropes off with long, repeated runs).
    uint64_t n = 2000;
    if (app == "silo" || app == "specjbb")
        n = 10000;
    else if (app == "masstree")
        n = 6000;
    else if (app == "sphinx")
        n = 250;
    else if (app == "moses" || app == "xapian" || app == "img-dnn" ||
             app == "shore")
        n = 1000;
    if (s.fast)
        n = std::max<uint64_t>(150, n / 4);
    return n;
}

double
calibrateSaturation(core::Harness& harness, apps::App& app,
                    unsigned threads, const BenchSettings& s,
                    bool pin_workers)
{
    // Two-step calibration. The analytic estimate (threads / E[S] from
    // a low-load probe) overestimates capacity for heavy-tailed apps —
    // a small probe undersamples the expensive requests — and then
    // every "50% load" point secretly runs near saturation. Refining
    // against the *achieved* throughput under deliberate overload
    // measures capacity directly, tails included.
    const uint64_t probe = s.fast ? 150 : 400;
    const double est = core::estimateSaturationQps(harness, app,
                                                   threads, s.seed,
                                                   probe);
    core::HarnessConfig cfg;
    cfg.qps = 2.5 * est;
    cfg.workerThreads = threads;
    cfg.warmupRequests = probe / 4;
    cfg.measuredRequests = probe * 2;
    cfg.seed = s.seed + 1;
    cfg.pinWorkers = pin_workers;
    const double achieved = harness.run(app, cfg).achievedQps;
    // Guard against a degenerate overload run on a noisy host.
    if (achieved > 0.05 * est && achieved < 1.5 * est)
        return achieved;
    return est;
}

RobustPoint
measureAtRobust(core::Harness& harness, apps::App& app, double qps,
                unsigned threads, uint64_t requests, uint64_t seed,
                unsigned repeats)
{
    // Median across re-randomized runs: the paper's answer to
    // performance hysteresis is repeated runs, and on a shared host the
    // median (unlike the mean) also rejects the occasional run that a
    // scheduler preemption ruins outright.
    std::vector<double> mean;
    std::vector<double> p95;
    std::vector<double> p99;
    std::vector<double> qps_seen;
    for (unsigned rep = 0; rep < std::max(1u, repeats); rep++) {
        const core::RunResult r =
            measureAt(harness, app, qps, threads, requests,
                      seed + 1000 * rep);
        mean.push_back(r.latency.sojourn.meanNs);
        p95.push_back(static_cast<double>(r.latency.sojourn.p95Ns));
        p99.push_back(static_cast<double>(r.latency.sojourn.p99Ns));
        qps_seen.push_back(r.achievedQps);
    }
    RobustPoint pt;
    pt.meanNs = util::percentileOf(mean, 50.0);
    pt.p95Ns = util::percentileOf(p95, 50.0);
    pt.p99Ns = util::percentileOf(p99, 50.0);
    pt.achievedQps = util::percentileOf(qps_seen, 50.0);
    return pt;
}

core::RunResult
measureAt(core::Harness& harness, apps::App& app, double qps,
          unsigned threads, uint64_t requests, uint64_t seed,
          bool keep_samples, bool pin_workers)
{
    core::HarnessConfig cfg;
    cfg.qps = qps;
    cfg.workerThreads = threads;
    cfg.warmupRequests = std::max<uint64_t>(50, requests / 10);
    cfg.measuredRequests = requests;
    cfg.seed = seed;
    cfg.keepSamples = keep_samples;
    cfg.pinWorkers = pin_workers;
    cfg.arrival = envArrival();
    cfg.sloTargetNs = envSloTargetNs();
    cfg.windows = envWindows();
    return harness.run(app, cfg);
}

std::vector<double>
sweepFractions(const BenchSettings& s)
{
    if (s.fast)
        return {0.2, 0.5, 0.8};
    return {0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9};
}

void
printHeader(const std::string& title)
{
    std::printf("\n### %s\n", title.c_str());
}

std::string
fmtMs(double ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e6);
    return buf;
}

bool
genLagInvalidates(const core::RunResult& r, double qps)
{
    if (qps <= 0.0)
        return false;
    return static_cast<double>(r.maxGenLagNs) > 1e9 / qps;
}

std::string
fmtP95Cell(const core::RunResult& r, double qps)
{
    std::string cell =
        fmtMs(static_cast<double>(r.latency.sojourn.p95Ns));
    if (genLagInvalidates(r, qps))
        cell += "!";
    return cell;
}

std::string
fmtQpsCell(const core::RunResult& r, double qps)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", r.achievedQps);
    std::string cell = buf;
    if (genLagInvalidates(r, qps))
        cell += "!";
    return cell;
}

// ------------------------------------------------------------ JsonWriter

void
JsonWriter::comma()
{
    if (first_.empty())
        return;
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
}

void
JsonWriter::writeKey(const char* key)
{
    if (key == nullptr)
        return;
    writeEscaped(key);
    out_ += ':';
}

void
JsonWriter::writeEscaped(const std::string& v)
{
    out_ += '"';
    for (const char c : v) {
        switch (c) {
        case '"':
            out_ += "\\\"";
            break;
        case '\\':
            out_ += "\\\\";
            break;
        case '\n':
            out_ += "\\n";
            break;
        case '\t':
            out_ += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out_ += buf;
            } else {
                out_ += c;
            }
        }
    }
    out_ += '"';
}

JsonWriter&
JsonWriter::beginObject(const char* key)
{
    comma();
    writeKey(key);
    out_ += '{';
    first_.push_back(true);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    out_ += '}';
    if (!first_.empty())
        first_.pop_back();
    return *this;
}

JsonWriter&
JsonWriter::beginArray(const char* key)
{
    comma();
    writeKey(key);
    out_ += '[';
    first_.push_back(true);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    out_ += ']';
    if (!first_.empty())
        first_.pop_back();
    return *this;
}

JsonWriter&
JsonWriter::str(const char* key, const std::string& v)
{
    comma();
    writeKey(key);
    writeEscaped(v);
    return *this;
}

JsonWriter&
JsonWriter::num(const char* key, double v)
{
    comma();
    writeKey(key);
    char buf[40];
    // NaN/Inf are not JSON; a failed measurement must not produce an
    // unparseable report.
    if (std::isfinite(v))
        std::snprintf(buf, sizeof(buf), "%.12g", v);
    else
        std::snprintf(buf, sizeof(buf), "null");
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::boolean(const char* key, bool v)
{
    comma();
    writeKey(key);
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::str(const std::string& v)
{
    return str(nullptr, v);
}

JsonWriter&
JsonWriter::num(double v)
{
    return num(nullptr, v);
}

std::string
gitRevision()
{
    FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (p == nullptr)
        return "unknown";
    char buf[64] = {0};
    const bool got = std::fgets(buf, sizeof(buf), p) != nullptr;
    ::pclose(p);
    if (!got)
        return "unknown";
    std::string rev = buf;
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
        rev.pop_back();
    return rev.empty() ? "unknown" : rev;
}

bool
writeTextFile(const std::string& path, const std::string& text)
{
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        TB_LOG_WARN("cannot write %s: %s", path.c_str(),
                    std::strerror(errno));
        return false;
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (!ok)
        TB_LOG_WARN("short write to %s", path.c_str());
    return ok;
}

}  // namespace tb::bench
