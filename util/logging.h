#ifndef TAILBENCH_UTIL_LOGGING_H_
#define TAILBENCH_UTIL_LOGGING_H_

/**
 * @file
 * Minimal leveled logging to stderr.
 *
 * Bench drivers print their results on stdout; diagnostics go through
 * here so `driver > results.txt` stays machine-parsable. The threshold
 * comes from TAILBENCH_LOG (debug|info|warn|error; default warn).
 */

#include <cstdarg>

namespace tb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Threshold parsed from TAILBENCH_LOG once, at first use. */
LogLevel logThreshold();

/** printf-style log line with a level tag and monotonic timestamp. */
void logAt(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace tb::util

#define TB_LOG_DEBUG(...) \
    ::tb::util::logAt(::tb::util::LogLevel::kDebug, __VA_ARGS__)
#define TB_LOG_INFO(...) \
    ::tb::util::logAt(::tb::util::LogLevel::kInfo, __VA_ARGS__)
#define TB_LOG_WARN(...) \
    ::tb::util::logAt(::tb::util::LogLevel::kWarn, __VA_ARGS__)
#define TB_LOG_ERROR(...) \
    ::tb::util::logAt(::tb::util::LogLevel::kError, __VA_ARGS__)

#endif  // TAILBENCH_UTIL_LOGGING_H_
