#ifndef TAILBENCH_UTIL_MUTEX_H_
#define TAILBENCH_UTIL_MUTEX_H_

/**
 * @file
 * Annotated synchronization wrappers over the standard primitives:
 * util::Mutex / util::MutexLock / util::CondVar are std::mutex /
 * std::unique_lock / std::condition_variable with the Clang
 * thread-safety attributes (util/thread_annotations.h) attached, so
 * lock invariants on the structures built from them are checked at
 * compile time under -Wthread-safety.
 *
 * Zero runtime cost: every method is an inline forward to the
 * std:: primitive underneath.
 *
 * CondVar deliberately has no predicate-taking wait: a predicate
 * lambda reading TB_GUARDED_BY fields is analyzed as a separate
 * function that holds nothing, so it would warn spuriously. Callers
 * write the standard explicit loop instead —
 *
 *   util::MutexLock lock(mu_);
 *   while (!condLocked())
 *       cv_.wait(lock);
 *
 * — which the analysis follows exactly (the guarded reads happen in
 * the enclosing function, where the capability is visibly held).
 */

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace tb::util {

/** std::mutex as a Clang capability. */
class TB_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() TB_ACQUIRE() { mu_.lock(); }
    void unlock() TB_RELEASE() { mu_.unlock(); }
    bool try_lock() TB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class MutexLock;
    std::mutex mu_;
};

/**
 * Scoped lock of a util::Mutex (the one lock type — serving both the
 * std::lock_guard and std::unique_lock roles, since CondVar::wait
 * needs the underlying unique_lock either way).
 */
class TB_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) TB_ACQUIRE(mu) : lock_(mu.mu_) {}
    ~MutexLock() TB_RELEASE() = default;

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable waited on under a MutexLock. The capability
 * released/reacquired inside wait() is the one the MutexLock holds,
 * so from the analysis' (correct) point of view the caller holds it
 * across the call.
 */
class CondVar {
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

    template <class Rep, class Period>
    std::cv_status
    waitFor(MutexLock& lock,
            const std::chrono::duration<Rep, Period>& d)
    {
        return cv_.wait_for(lock.lock_, d);
    }

    template <class Clock, class Duration>
    std::cv_status
    waitUntil(MutexLock& lock,
              const std::chrono::time_point<Clock, Duration>& tp)
    {
        return cv_.wait_until(lock.lock_, tp);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

}  // namespace tb::util

#endif  // TAILBENCH_UTIL_MUTEX_H_
