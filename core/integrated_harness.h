#ifndef TAILBENCH_CORE_INTEGRATED_HARNESS_H_
#define TAILBENCH_CORE_INTEGRATED_HARNESS_H_

/**
 * @file
 * The integrated configuration: load generator and application in one
 * process, requests handed over through the in-process transport.
 * Lowest overhead of the real-time configurations — the paper uses it
 * for profiling and as the reference the networked/loopback setups
 * are validated against.
 *
 * This harness is nothing but the canonical composition of the three
 * API pieces:
 *
 *   LoadClient  --- InProcessTransport ---  ServiceLoop
 *   (schedule, timestamps, stats)           (recvReq -> process -> sendResp)
 *
 * The loopback and networked harnesses (net/) are the same
 * composition with a socket-backed transport substituted.
 */

#include "core/harness.h"
#include "core/sharded_port.h"

namespace tb::core {

class IntegratedHarness final : public Harness {
  public:
    /** Default PortOptions keep the single-queue baseline; a sharded
     * policy gives each worker its own request shard (shards == 0
     * resolves to the run's worker count). */
    IntegratedHarness() = default;
    explicit IntegratedHarness(const PortOptions& port) : port_(port) {}

    RunResult run(apps::App& app, const HarnessConfig& cfg) override;

    std::string configName() const override { return "integrated"; }

  private:
    PortOptions port_;
};

}  // namespace tb::core

#endif  // TAILBENCH_CORE_INTEGRATED_HARNESS_H_
