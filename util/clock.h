#ifndef TAILBENCH_UTIL_CLOCK_H_
#define TAILBENCH_UTIL_CLOCK_H_

/**
 * @file
 * Monotonic nanosecond clock and precise sleep.
 *
 * Everything in the harness timestamps with monotonicNs(): request
 * generation (arrival) time, service start, and completion. A single
 * clock source keeps sojourn = end - gen and service = end - start
 * directly comparable.
 */

#include <cstdint>
#include <ctime>

namespace tb::util {

/** Nanoseconds from CLOCK_MONOTONIC; ~20 ns per call on Linux. */
inline int64_t
monotonicNs()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000000ll + ts.tv_nsec;
}

/**
 * Sleeps until the monotonic deadline @p targetNs.
 *
 * Hybrid strategy: coarse clock_nanosleep until @p spinNs before the
 * deadline, then spin on the clock. The open-loop generator needs
 * better-than-scheduler arrival precision for short-request apps
 * (silo's interarrival gaps are tens of microseconds), but a pure
 * spin would monopolize a core on small hosts — the spin window is
 * kept short. Returns immediately if the deadline has passed (the
 * caller's timestamps still use the *scheduled* time, so a tardy
 * generator shows up as queueing, never as omitted load).
 */
inline void
sleepUntilNs(int64_t targetNs, int64_t spinNs = 20000)
{
    const int64_t coarse_target = targetNs - spinNs;
    if (monotonicNs() < coarse_target) {
        timespec ts;
        ts.tv_sec = coarse_target / 1000000000ll;
        ts.tv_nsec = coarse_target % 1000000000ll;
        clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr);
    }
    while (monotonicNs() < targetNs) {
        // spin
    }
}

}  // namespace tb::util

#endif  // TAILBENCH_UTIL_CLOCK_H_
