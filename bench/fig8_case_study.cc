/**
 * @file
 * Reproduces Fig. 8 (Sec. VII case study): why do moses and silo scale
 * poorly with thread count — synchronization or memory contention?
 *
 * Method, exactly as in the paper:
 *  1. Measure each app's single-threaded service-time distribution.
 *  2. Predict latency-vs-load with an M/G/n queueing model (n = threads):
 *     what would happen if adding threads had NO overhead.
 *  3. Simulate the app on an IDEALIZED memory system (zero-latency,
 *     infinite-bandwidth DRAM) with 1 and 4 threads.
 *  4. Compare: if ideal-memory simulation tracks M/G/4, the real
 *     degradation was memory contention (moses); if it still falls short,
 *     synchronization is the culprit (silo).
 *
 * All latencies are normalized to the app's low-load single-thread p95,
 * as in the paper's figure.
 */

#include <cstdio>

#include "bench/common.h"
#include "queueing/mgn_sim.h"
#include "sim/sim_harness.h"
#include "util/logging.h"

using namespace tb;

int
main()
{
    const bench::BenchSettings s = bench::BenchSettings::fromEnv();
    bench::printHeader(
        "Fig. 8: M/G/n model vs. ideal-memory simulation (moses, silo)");

    for (const auto& name : {std::string("moses"), std::string("silo")}) {
        auto app = bench::makeBenchApp(name, s);

        sim::MachineConfig ideal_mc;
        ideal_mc.idealMemory = true;
        sim::SimHarness ideal(ideal_mc);

        // Single-thread service distribution on the ideal-memory system
        // (the M/G/n model must use the same service times it is being
        // compared against).
        const uint64_t budget = 2 * bench::requestBudget(name, s);
        const core::RunResult base = bench::measureAt(
            ideal, *app, 0.05 * bench::calibrateSaturation(ideal, *app,
                                                           1, s),
            1, budget, s.seed, true);
        std::vector<int64_t> service;
        for (const auto& t : base.samples)
            service.push_back(t.serviceNs());
        // Both divisors below can be zero for a degenerate base run
        // (no samples, or an ideal-memory service time rounding to 0
        // for a cheap kernel) — every column would print inf/nan.
        if (service.empty() || base.latency.service.meanNs <= 0.0 ||
            base.latency.sojourn.p95Ns <= 0) {
            TB_LOG_WARN(
                "fig8: degenerate ideal-memory base run for %s "
                "(samples=%zu, mean service=%.3g ns, sojourn p95=%lld "
                "ns); skipping app",
                name.c_str(), service.size(),
                base.latency.service.meanNs,
                static_cast<long long>(base.latency.sojourn.p95Ns));
            continue;
        }
        const double sat1 =
            1e9 / base.latency.service.meanNs;
        const double norm =
            static_cast<double>(base.latency.sojourn.p95Ns);

        std::printf("\n%s (ideal-mem 1-thread sat ~ %.0f qps; "
                    "normalized to low-load p95 = %s ms)\n",
                    name.c_str(), sat1, bench::fmtMs(norm).c_str());
        std::printf("  %10s %10s %10s %14s %14s\n", "qps/thr",
                    "M/G/1", "M/G/4", "IdealMem(1T)", "IdealMem(4T)");

        for (double f : bench::sweepFractions(s)) {
            const double per_thread = f * sat1;
            double cols[4];

            // M/G/n queueing model predictions.
            for (int i = 0; i < 2; i++) {
                const unsigned n = i == 0 ? 1 : 4;
                queueing::MgnConfig qc;
                qc.lambda = per_thread * n;
                qc.servers = n;
                qc.warmup = 2000;
                qc.measured = s.fast ? 20'000 : 60'000;
                qc.seed = s.seed + n;
                const queueing::MgnResult qr =
                    queueing::simulateMgn(service, qc);
                cols[i] = static_cast<double>(qr.sojourn.p95Ns) / norm;
            }

            // Ideal-memory full simulation (sync model active).
            for (int i = 0; i < 2; i++) {
                const unsigned n = i == 0 ? 1 : 4;
                const core::RunResult r = bench::measureAt(
                    ideal, *app, per_thread * n, n, budget,
                    s.seed + 31 + n);
                cols[2 + i] =
                    static_cast<double>(r.latency.sojourn.p95Ns) / norm;
            }

            std::printf("  %10.1f %10.2f %10.2f %14.2f %14.2f\n",
                        per_thread, cols[0], cols[1], cols[2], cols[3]);
        }
        // Analytic Erlang-C cross-check of the model columns: M/M/n
        // with service rate sat1 (= 1/E[S] per server). The M/G/n
        // columns use the real service distribution, so they sit
        // above this when the app's service times are heavier-tailed
        // than exponential.
        std::printf("  Erlang-C check (M/M/n, 50%% per-thread load): "
                    "M/M/1 %.2f, M/M/4 %.2f (mean sojourn / low-load "
                    "p95)\n",
                    queueing::mmnSojournP(0.5 * sat1, sat1, 1) * 1e9 /
                        norm,
                    queueing::mmnSojournP(0.5 * sat1 * 4, sat1, 4) *
                        1e9 / norm);
        std::printf("  reading: IdealMem(4T) ~ M/G/4 => memory-bound "
                    "degradation (paper: moses); IdealMem(4T) >> M/G/4 "
                    "=> synchronization-bound (paper: silo).\n");
    }
    return 0;
}
